//! The TCP front-end: a std-only non-blocking readiness loop over the
//! [`AnalysisService`].
//!
//! # Architecture
//!
//! A small fixed pool of polling workers (no thread per connection)
//! multiplexes every socket. Each worker owns one shard of the
//! connection registry; all workers race the shared non-blocking
//! listener and register what they accept into their own shard, so
//! accepted load spreads without a coordinator. One worker iteration
//! is: accept what's pending → give every owned connection a chance to
//! make progress (flush, resolve a blocking `WAIT`, read, execute
//! complete request lines) → **remove finished connections from the
//! shard**. That removal is the structural fix for the fd leak the
//! thread-per-connection design had: a connection's only registration
//! is its shard entry, and the entry dies with the connection — N
//! connect/disconnect cycles leave the registry empty.
//!
//! Connections are non-blocking throughout: reads and writes buffer,
//! `WouldBlock` yields the worker to the next socket, and a client
//! writing a flood of pipelined requests gets its replies strictly in
//! request order (a blocking `WAIT` simply parks the line cursor).
//!
//! # Overload defenses
//!
//! The registry is bounded ([`DaemonTuning::max_conns`]); connections
//! beyond the bound are refused with a typed `ERR RESOURCE
//! retry-after=<ms>` line on a blocking write under a short deadline,
//! and counted (`shed-connections` in `STATS`). With
//! [`DaemonTuning::io_timeout`] set, a connection that owes or is owed
//! bytes but makes no progress for the deadline is reaped with a typed
//! close reason (`reaped-connections`) — the slowloris defense; idle
//! greeted keepalives and parked `WAIT`s have empty buffers and
//! survive. Per-conn buffer caps are extended by a per-client aggregate
//! ([`DaemonTuning::max_client_buffered`]) across every connection
//! sharing a fairness lane (the HELLO `client=` tag, or the peer
//! address). Job-plane admission — per-client rate limits, live-job
//! caps, queue deadlines, weighted round-robin drain — lives in
//! [`AnalysisService`]; this module only carries the client identity
//! down to it.
//!
//! # Graceful shutdown
//!
//! `SHUTDOWN` (or [`DaemonHandle::shutdown`], the SIGTERM-equivalent
//! test hook) flips the stop flag and starts the service drain: new
//! submissions get `ERR SHUTDOWN`, while queued and running jobs finish
//! and stay pollable. Each worker keeps serving until the service is
//! drained, then flushes and closes its remaining connections and
//! exits; [`DaemonHandle::join`] returns when every worker is done.

use crate::protocol::{
    error_reply, ErrorCode, Request, Response, GREETING, PROTOCOL_MINOR, PROTOCOL_VERSION,
};
use statim_core::engine::{LabelSolver, SstaConfig};
use statim_core::service::{
    AnalysisService, CancelOutcome, JobSpec, ServiceConfig, ServiceStats, SubmitOptions,
};
use statim_core::{apply_edits, EcoScript, ErrorClass, JobId, RunBudget, StatimError};
use statim_netlist::generators::iscas85::{self, Benchmark};
use statim_netlist::{bench_format, def_lite, Circuit, Placement, PlacementStyle};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread;
use std::time::{Duration, Instant};

/// Shortest idle sleep between worker polls (also the resolution of
/// server-side `WAIT` completion under load).
const IDLE_POLL_MIN: Duration = Duration::from_millis(1);

/// Longest idle sleep: each quiet iteration doubles the backoff up to
/// here, and any progress resets it to [`IDLE_POLL_MIN`] — an idle
/// daemon stops burning a core without adding latency under traffic.
const IDLE_POLL_MAX: Duration = Duration::from_millis(8);

/// Write deadline for the best-effort `ERR RESOURCE` line sent to a
/// connection refused over the registry bound.
const SHED_WRITE_DEADLINE: Duration = Duration::from_millis(100);

/// Retry hint (ms) in the over-`max_conns` refusal line.
const SHED_RETRY_MS: u64 = 1000;

/// Longest accepted request line; beyond this the connection is closed
/// with `ERR PROTOCOL` (no verb comes anywhere near it).
const MAX_LINE: usize = 64 * 1024;

/// Most bytes a connection may have buffered (pipelined requests parked
/// behind a `WAIT`) before it is closed as abusive.
const MAX_BUFFERED: usize = 1024 * 1024;

/// Default path-table row limit for `RESULT` replies without `top=`.
const DEFAULT_TOP: usize = 10;

/// Connection-pool knobs, separate from the job-level [`ServiceConfig`].
#[derive(Debug, Clone)]
pub struct DaemonTuning {
    /// Registry bound: connections beyond this are refused with a
    /// best-effort `ERR RESOURCE` line.
    pub max_conns: usize,
    /// Polling workers sharing the connection load.
    pub workers: usize,
    /// Connection progress deadline (`--io-timeout-ms`): a connection
    /// that owes or is owed bytes but makes no progress for this long is
    /// reaped with a typed close reason (the slowloris defense). `None`
    /// disables reaping.
    pub io_timeout: Option<Duration>,
    /// Aggregate buffered-byte cap across all of one client's
    /// connections (the per-conn [`MAX_BUFFERED`] extended to the lane).
    pub max_client_buffered: usize,
}

impl Default for DaemonTuning {
    fn default() -> Self {
        DaemonTuning {
            max_conns: 256,
            workers: 4,
            io_timeout: None,
            max_client_buffered: 2 * MAX_BUFFERED,
        }
    }
}

/// Daemon-level defense counters (connection plane — the job-plane
/// counters live in [`ServiceStats`]).
#[derive(Default)]
struct Counters {
    /// Connections refused over the registry bound.
    shed: AtomicU64,
    /// Connections closed by the progress deadline or the per-client
    /// aggregate buffer cap.
    reaped: AtomicU64,
}

/// The sharded connection registry. Each worker owns shard `[worker
/// index]`; cross-shard access happens only for the global bound check
/// and [`Registry::open_connections`].
struct Registry {
    shards: Vec<Mutex<HashMap<u64, Conn>>>,
    max_conns: usize,
    io_timeout: Option<Duration>,
    max_client_buffered: usize,
    counters: Counters,
    /// Aggregate buffered bytes per client lane, across shards. Updated
    /// by delta accounting from each connection's progress turn — never
    /// by cross-shard walks, which could deadlock two workers.
    lane_bytes: Mutex<HashMap<String, usize>>,
}

impl Registry {
    fn new(tuning: &DaemonTuning) -> Registry {
        Registry {
            shards: (0..tuning.workers.max(1))
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            max_conns: tuning.max_conns,
            io_timeout: tuning.io_timeout,
            max_client_buffered: tuning.max_client_buffered,
            counters: Counters::default(),
            lane_bytes: Mutex::new(HashMap::new()),
        }
    }

    fn lock_shard(&self, i: usize) -> MutexGuard<'_, HashMap<u64, Conn>> {
        self.shards[i]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn lock_lanes(&self) -> MutexGuard<'_, HashMap<String, usize>> {
        self.lane_bytes
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Connections currently registered, across all shards.
    fn open_connections(&self) -> usize {
        (0..self.shards.len())
            .map(|i| self.lock_shard(i).len())
            .sum()
    }
}

/// A running daemon: the bound address plus the handles needed to stop
/// it. Dropping the handle abandons the daemon (it keeps serving);
/// call [`DaemonHandle::shutdown`] + [`DaemonHandle::join`] to stop it.
pub struct DaemonHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    registry: Arc<Registry>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl DaemonHandle {
    /// The address the daemon actually bound (resolves `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections currently held in the registry — the observable the
    /// churn regression test pins to zero after N connect/disconnect
    /// cycles.
    pub fn open_connections(&self) -> usize {
        self.registry.open_connections()
    }

    /// Connections refused over the `max_conns` bound since start.
    pub fn shed_connections(&self) -> u64 {
        self.registry.counters.shed.load(Ordering::SeqCst)
    }

    /// Connections reaped by the progress deadline or the per-client
    /// aggregate buffer cap since start.
    pub fn reaped_connections(&self) -> u64 {
        self.registry.counters.reaped.load(Ordering::SeqCst)
    }

    /// Begins a graceful drain without a client connection — the
    /// SIGTERM-equivalent hook tests and process supervisors use.
    /// Idempotent; equivalent to a `SHUTDOWN` request.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Waits until the drain completes and every worker exits.
    pub fn join(mut self) {
        for t in self.workers.drain(..) {
            let _ = t.join();
        }
    }
}

/// Binds `addr` and starts serving in background threads with default
/// [`DaemonTuning`].
///
/// # Errors
///
/// The bind failure (address in use, permission) as a `Resource`-class
/// error, or the service-start failure (corrupt persistent store →
/// `Parse`, unreadable store directory → `Resource`).
pub fn spawn(addr: &str, config: ServiceConfig) -> Result<DaemonHandle, StatimError> {
    spawn_tuned(addr, config, DaemonTuning::default())
}

/// [`spawn`] with explicit connection-pool tuning.
///
/// # Errors
///
/// As [`spawn`].
pub fn spawn_tuned(
    addr: &str,
    config: ServiceConfig,
    tuning: DaemonTuning,
) -> Result<DaemonHandle, StatimError> {
    let bind_err = |e: io::Error| StatimError::from(e).with_file(addr.to_string());
    let listener = TcpListener::bind(addr).map_err(bind_err)?;
    listener.set_nonblocking(true).map_err(bind_err)?;
    let bound = listener.local_addr().map_err(bind_err)?;
    let stop = Arc::new(AtomicBool::new(false));
    let service = Arc::new(AnalysisService::start(config)?);
    let registry = Arc::new(Registry::new(&tuning));
    let listener = Arc::new(listener);
    let mut workers = Vec::with_capacity(registry.shards.len());
    for wid in 0..registry.shards.len() {
        let listener = Arc::clone(&listener);
        let registry = Arc::clone(&registry);
        let service = Arc::clone(&service);
        let stop = Arc::clone(&stop);
        let worker = thread::Builder::new()
            .name(format!("statim-conn-{wid}"))
            .spawn(move || worker_loop(wid, &listener, &registry, &service, &stop))
            .map_err(|e| {
                StatimError::new(
                    ErrorClass::Resource,
                    format!("spawn connection worker: {e}"),
                )
            })?;
        workers.push(worker);
    }
    Ok(DaemonHandle {
        addr: bound,
        stop,
        registry,
        workers,
    })
}

/// Binds `addr` and serves until a `SHUTDOWN` request drains the
/// daemon — the blocking entry point `statim serve` uses.
///
/// # Errors
///
/// As [`spawn`].
pub fn serve(addr: &str, config: ServiceConfig) -> Result<SocketAddr, StatimError> {
    serve_tuned(addr, config, DaemonTuning::default())
}

/// [`serve`] with explicit connection-pool tuning.
///
/// # Errors
///
/// As [`spawn`].
pub fn serve_tuned(
    addr: &str,
    config: ServiceConfig,
    tuning: DaemonTuning,
) -> Result<SocketAddr, StatimError> {
    let handle = spawn_tuned(addr, config, tuning)?;
    let bound = handle.addr();
    handle.join();
    Ok(bound)
}

/// One polling worker: accept into its own shard, progress every owned
/// connection, drop the finished ones, exit once stopped and drained.
fn worker_loop(
    wid: usize,
    listener: &TcpListener,
    registry: &Registry,
    service: &Arc<AnalysisService>,
    stop: &AtomicBool,
) {
    let mut next_token: u64 = wid as u64;
    let mut idle = IDLE_POLL_MIN;
    loop {
        let mut busy = false;

        // Accept everything pending. All workers race the listener;
        // whoever wins owns the connection in its shard.
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    busy = true;
                    if registry.open_connections() >= registry.max_conns {
                        registry.counters.shed.fetch_add(1, Ordering::SeqCst);
                        // Typed, observable refusal: a *blocking* write
                        // under a short deadline, so a normally-reading
                        // client reliably sees the line (instead of the
                        // old fire-and-forget race) while a stalled one
                        // cannot hold the worker past the deadline.
                        let mut stream = stream;
                        let _ = stream.set_nonblocking(false);
                        let _ = stream.set_write_timeout(Some(SHED_WRITE_DEADLINE));
                        let _ = stream.write_all(
                            format!(
                                "ERR RESOURCE retry-after={SHED_RETRY_MS} \
                                 connection limit reached, retry later\n"
                            )
                            .as_bytes(),
                        );
                        let _ = stream.shutdown(Shutdown::Both);
                        continue;
                    }
                    if let Ok(conn) = Conn::new(stream) {
                        let token = next_token;
                        next_token += registry.shards.len() as u64;
                        registry.lock_shard(wid).insert(token, conn);
                    }
                }
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }

        // Progress the shard; finished connections leave the registry
        // right here — the fd-leak fix is this `retain` (which also
        // settles the lane's buffer accounting).
        {
            let mut shard = registry.lock_shard(wid);
            shard.retain(|_, conn| {
                busy |= conn.progress(service, stop, registry);
                let done = conn.finished();
                if done {
                    conn.settle_accounting(registry);
                }
                !done
            });
        }

        if stop.load(Ordering::SeqCst) {
            service.shutdown();
            if service.drained() {
                // Drained: flush what's left and close everything in
                // this worker's shard, then exit.
                let mut shard = registry.lock_shard(wid);
                for (_, conn) in shard.drain() {
                    conn.close();
                }
                return;
            }
        }

        // Capped exponential idle backoff: 1 → 8 ms while quiet, reset
        // to 1 ms by any progress so latency under load is unchanged.
        if busy {
            idle = IDLE_POLL_MIN;
        } else {
            thread::sleep(idle);
            idle = (idle * 2).min(IDLE_POLL_MAX);
        }
    }
}

/// A parked `WAIT`: replies (and further request processing) hold until
/// the job turns terminal or the deadline passes.
struct PendingWait {
    id: JobId,
    deadline: Option<Instant>,
}

/// One multiplexed connection: the non-blocking socket plus its buffers
/// and protocol state.
struct Conn {
    stream: TcpStream,
    inbuf: Vec<u8>,
    outbuf: Vec<u8>,
    greeted: bool,
    /// Negotiated protocol minor (0 until a versioned `HELLO` raises it).
    minor: u32,
    /// The fairness lane this connection submits under: the HELLO
    /// `client=` tag when given, otherwise the peer address.
    lane: String,
    pending: Option<PendingWait>,
    closing: bool,
    /// The peer sent FIN (half-close): no more requests will arrive,
    /// but everything already pipelined still executes and its replies
    /// are still owed before the connection closes.
    eof: bool,
    /// When this connection last made I/O or request progress (the
    /// reaping deadline's anchor).
    last_progress: Instant,
    /// Buffered bytes currently charged to [`Registry::lane_bytes`]
    /// under `accounted_lane` (delta accounting).
    accounted: usize,
    accounted_lane: String,
}

impl Conn {
    fn new(stream: TcpStream) -> io::Result<Conn> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true).ok();
        let lane = stream
            .peer_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "unknown-peer".to_string());
        let mut outbuf = Vec::with_capacity(GREETING.len() + 1);
        outbuf.extend_from_slice(GREETING.as_bytes());
        outbuf.push(b'\n');
        Ok(Conn {
            stream,
            inbuf: Vec::new(),
            outbuf,
            greeted: false,
            minor: 0,
            accounted_lane: lane.clone(),
            lane,
            pending: None,
            closing: false,
            eof: false,
            last_progress: Instant::now(),
            accounted: 0,
        })
    }

    /// Whether the worker should drop this connection now: it is
    /// closing and everything owed to the client is flushed (or the
    /// socket is beyond writing).
    fn finished(&self) -> bool {
        self.closing && self.outbuf.is_empty()
    }

    /// Final flush + close for drain-time teardown.
    fn close(mut self) {
        let _ = self.flush();
        let _ = self.stream.shutdown(Shutdown::Both);
    }

    /// One readiness turn: flush, resolve a parked `WAIT`, read what the
    /// socket has, execute complete request lines, flush again, then
    /// apply the connection-plane defenses (progress deadline,
    /// per-client aggregate buffer cap). Returns whether any I/O or
    /// request progress happened (the worker's idle heuristic).
    fn progress(
        &mut self,
        service: &AnalysisService,
        stop: &AtomicBool,
        registry: &Registry,
    ) -> bool {
        let mut busy = self.flush();
        if let Some(reply) = self.resolve_pending(service) {
            self.queue(&reply, &[]);
            busy = true;
        }
        busy |= self.fill();
        while !self.closing && self.pending.is_none() {
            let Some(line) = self.take_line() else { break };
            busy = true;
            self.execute(&line, service, stop, &registry.counters);
        }
        // Half-close drained: every complete line the peer pipelined
        // before its FIN has executed (a trailing partial line is torn
        // by definition and forfeits). Close once the replies flush.
        if self.eof && !self.closing && self.pending.is_none() {
            self.inbuf.clear();
            self.closing = true;
        }
        // Oversized partial line, or a pipeline hoarding bytes behind a
        // WAIT: protocol violation, close after the error flushes.
        if !self.closing
            && (self.inbuf.len() > MAX_BUFFERED
                || (self.pending.is_none() && self.inbuf.len() > MAX_LINE))
        {
            self.queue(
                &Response::Error {
                    code: ErrorCode::Protocol,
                    message: format!("request line exceeds {MAX_LINE} bytes"),
                },
                &[],
            );
            self.closing = true;
        }
        busy |= self.flush();
        if busy {
            self.last_progress = Instant::now();
        } else if let Some(timeout) = registry.io_timeout {
            // Slowloris defense: a connection that owes us a line
            // (mid-request, or never greeted) or is refusing to drain
            // its replies, and has made no progress for the deadline,
            // is reaped. Parked WAITs and idle greeted keepalives have
            // empty buffers and survive.
            let stalled = !self.greeted || !self.inbuf.is_empty() || !self.outbuf.is_empty();
            if !self.closing && stalled && self.last_progress.elapsed() >= timeout {
                registry.counters.reaped.fetch_add(1, Ordering::SeqCst);
                self.reap(format!(
                    "connection reaped: no progress in {} ms (io-timeout)",
                    timeout.as_millis()
                ));
            }
        }
        if self.update_accounting(registry) && !self.closing {
            registry.counters.reaped.fetch_add(1, Ordering::SeqCst);
            self.reap(format!(
                "connection reaped: client `{}` over its {} byte aggregate buffer cap",
                self.lane, registry.max_client_buffered
            ));
            self.update_accounting(registry);
        }
        busy
    }

    /// Terminal defensive close: best-effort typed reason, then drop the
    /// socket without waiting for the (possibly stalled) peer to drain.
    fn reap(&mut self, reason: String) {
        self.queue(
            &Response::Error {
                code: ErrorCode::Resource,
                message: reason,
            },
            &[],
        );
        self.closing = true;
        let _ = self.flush();
        // Whatever did not flush is forfeit — a reaped peer is by
        // definition not draining, and `finished()` needs an empty
        // buffer to release the registry slot.
        self.outbuf.clear();
        let _ = self.stream.shutdown(Shutdown::Both);
    }

    /// Delta-updates this connection's contribution to its lane's
    /// aggregate buffered bytes; returns whether the lane is over the
    /// cap (charged against the connection that grew it).
    fn update_accounting(&mut self, registry: &Registry) -> bool {
        let cur = if self.finished() {
            0
        } else {
            self.inbuf.len() + self.outbuf.len()
        };
        if cur == self.accounted && self.lane == self.accounted_lane {
            return false;
        }
        let mut lanes = registry.lock_lanes();
        if self.lane != self.accounted_lane {
            // HELLO renamed the lane: move the charge.
            if let Some(old) = lanes.get_mut(&self.accounted_lane) {
                *old = old.saturating_sub(self.accounted);
                if *old == 0 {
                    lanes.remove(&self.accounted_lane);
                }
            }
            self.accounted = 0;
            self.accounted_lane = self.lane.clone();
        }
        let entry = lanes.entry(self.lane.clone()).or_insert(0);
        *entry = entry.saturating_sub(self.accounted) + cur;
        let total = *entry;
        if total == 0 {
            lanes.remove(&self.lane);
        }
        self.accounted = cur;
        total > registry.max_client_buffered
    }

    /// Releases this connection's lane charge as it leaves the registry.
    fn settle_accounting(&mut self, registry: &Registry) {
        if self.accounted == 0 {
            return;
        }
        let mut lanes = registry.lock_lanes();
        if let Some(entry) = lanes.get_mut(&self.accounted_lane) {
            *entry = entry.saturating_sub(self.accounted);
            if *entry == 0 {
                lanes.remove(&self.accounted_lane);
            }
        }
        self.accounted = 0;
    }

    /// Resolves a parked `WAIT` if its job turned terminal or its
    /// deadline passed.
    fn resolve_pending(&mut self, service: &AnalysisService) -> Option<Response> {
        let pending = self.pending.as_ref()?;
        let id = pending.id;
        match service.status(id) {
            Ok(s) if s.state.is_terminal() => {
                self.pending = None;
                Some(Response::Waited {
                    id,
                    state: s.state.to_string(),
                })
            }
            Ok(s) => {
                if pending.deadline.is_some_and(|d| Instant::now() >= d) {
                    self.pending = None;
                    Some(Response::Error {
                        code: ErrorCode::Pending,
                        message: format!("timed out waiting for {id} (still {})", s.state),
                    })
                } else {
                    None
                }
            }
            Err(e) => {
                self.pending = None;
                Some(error_reply(&e))
            }
        }
    }

    /// Non-blocking read into the line buffer. Returns whether bytes
    /// arrived. EOF is a half-close, not an abort: pipelined requests
    /// that arrived with (or before) the FIN still execute and their
    /// replies still flush; only a hard read error forfeits the
    /// connection outright.
    fn fill(&mut self) -> bool {
        if self.eof {
            return false;
        }
        let mut busy = false;
        let mut chunk = [0u8; 4096];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.eof = true;
                    break;
                }
                Ok(n) => {
                    busy = true;
                    self.inbuf.extend_from_slice(&chunk[..n]);
                    if self.inbuf.len() > MAX_BUFFERED {
                        break; // cap enforcement happens in progress()
                    }
                }
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.closing = true;
                    self.outbuf.clear();
                    break;
                }
            }
        }
        busy
    }

    /// Pops one complete request line (without its terminator) off the
    /// buffer.
    fn take_line(&mut self) -> Option<String> {
        let nl = self.inbuf.iter().position(|&b| b == b'\n')?;
        let mut raw: Vec<u8> = self.inbuf.drain(..=nl).collect();
        raw.pop(); // the \n
        while raw.last() == Some(&b'\r') {
            raw.pop();
        }
        Some(String::from_utf8_lossy(&raw).into_owned())
    }

    /// Parses and executes one request line, queuing the reply.
    fn execute(
        &mut self,
        line: &str,
        service: &AnalysisService,
        stop: &AtomicBool,
        counters: &Counters,
    ) {
        if line.is_empty() {
            return;
        }
        let request = match Request::parse(line) {
            Ok(r) => r,
            Err(message) => {
                self.queue(
                    &Response::Error {
                        code: ErrorCode::Protocol,
                        message,
                    },
                    &[],
                );
                return;
            }
        };
        if !self.greeted && !matches!(request, Request::Hello { .. }) {
            self.queue(
                &Response::Error {
                    code: ErrorCode::Protocol,
                    message: format!("handshake required (send HELLO {PROTOCOL_VERSION} first)"),
                },
                &[],
            );
            return;
        }
        // WAIT manipulates connection state (it parks the reply), so it
        // is handled here rather than in the stateless dispatcher.
        if let Request::Wait { id, timeout_ms } = request {
            if self.minor < 1 {
                self.queue(
                    &Response::Error {
                        code: ErrorCode::Protocol,
                        message: format!(
                            "WAIT needs protocol {PROTOCOL_VERSION}.1 (connection negotiated \
                             {PROTOCOL_VERSION}.{}); poll STATUS instead",
                            self.minor
                        ),
                    },
                    &[],
                );
                return;
            }
            match service.status(id) {
                Ok(s) if s.state.is_terminal() => {
                    self.queue(
                        &Response::Waited {
                            id,
                            state: s.state.to_string(),
                        },
                        &[],
                    );
                }
                Ok(_) => {
                    // Saturate instead of panicking on absurd timeouts;
                    // an overflowing deadline means "no deadline".
                    let deadline = timeout_ms
                        .and_then(|ms| Instant::now().checked_add(Duration::from_millis(ms)));
                    self.pending = Some(PendingWait { id, deadline });
                }
                Err(e) => self.queue(&error_reply(&e), &[]),
            }
            return;
        }
        let (reply, payload) = respond(
            request,
            &mut self.greeted,
            &mut self.minor,
            &mut self.lane,
            service,
            counters,
        );
        if matches!(reply, Response::ShuttingDown) {
            stop.store(true, Ordering::SeqCst);
        }
        self.queue(&reply, &payload);
    }

    /// Appends one rendered reply (header + counted payload) to the
    /// write buffer.
    fn queue(&mut self, reply: &Response, payload: &[String]) {
        let mut out = reply.render();
        out.push('\n');
        for l in payload {
            out.push_str(l);
            out.push('\n');
        }
        self.outbuf.extend_from_slice(out.as_bytes());
    }

    /// Non-blocking flush of the write buffer. Returns whether bytes
    /// moved.
    fn flush(&mut self) -> bool {
        let mut written = 0;
        while written < self.outbuf.len() {
            match self.stream.write(&self.outbuf[written..]) {
                Ok(0) => {
                    self.closing = true;
                    break;
                }
                Ok(n) => written += n,
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.closing = true;
                    self.outbuf.clear();
                    return written > 0;
                }
            }
        }
        self.outbuf.drain(..written);
        written > 0
    }
}

/// Executes one stateless request against the service (everything but
/// `WAIT`, whose reply can park). Returns the reply header plus any
/// counted payload lines.
fn respond(
    request: Request,
    greeted: &mut bool,
    minor: &mut u32,
    lane: &mut String,
    service: &AnalysisService,
    counters: &Counters,
) -> (Response, Vec<String>) {
    match request {
        Request::Hello {
            version,
            minor: client_minor,
            client,
        } => {
            if version != PROTOCOL_VERSION {
                return (
                    Response::Error {
                        code: ErrorCode::Protocol,
                        message: format!(
                            "unsupported protocol version {version} (daemon speaks {PROTOCOL_VERSION}.{PROTOCOL_MINOR})"
                        ),
                    },
                    Vec::new(),
                );
            }
            *greeted = true;
            *minor = client_minor.min(PROTOCOL_MINOR);
            if let Some(tag) = client {
                *lane = tag;
            }
            (
                Response::Hello {
                    version: PROTOCOL_VERSION,
                    minor: *minor,
                },
                Vec::new(),
            )
        }
        Request::Wait { .. } => unreachable!("WAIT is handled by the connection"),
        Request::Submit { source, options } => {
            match build_spec(&source, &options, service.default_backend()) {
                Ok((spec, deadline_ms)) => {
                    let options = SubmitOptions {
                        client: Some(lane.clone()),
                        deadline_ms,
                    };
                    match service.submit_with(spec, options) {
                        Ok(receipt) => (
                            Response::Submitted {
                                id: receipt.id,
                                from_store: receipt.from_store,
                            },
                            Vec::new(),
                        ),
                        Err(e) => (error_reply(&e), Vec::new()),
                    }
                }
                Err(e) => (
                    Response::Error {
                        code: ErrorCode::from(e.class),
                        message: e.to_string(),
                    },
                    Vec::new(),
                ),
            }
        }
        Request::Edit { id, script } => {
            if *minor < 1 {
                return (
                    Response::Error {
                        code: ErrorCode::Protocol,
                        message: format!(
                            "EDIT needs protocol {PROTOCOL_VERSION}.1 (connection negotiated \
                             {PROTOCOL_VERSION}.{minor})"
                        ),
                    },
                    Vec::new(),
                );
            }
            let base = match service.spec(id) {
                Ok(spec) => spec,
                Err(e) => return (error_reply(&e), Vec::new()),
            };
            match edited_spec(&base, &script) {
                Ok(spec) => {
                    match service.submit_with(spec, SubmitOptions::for_client(lane.clone())) {
                        Ok(receipt) => (
                            Response::Edited {
                                id: receipt.id,
                                from_store: receipt.from_store,
                            },
                            Vec::new(),
                        ),
                        Err(e) => (error_reply(&e), Vec::new()),
                    }
                }
                Err(e) => (
                    Response::Error {
                        code: ErrorCode::from(e.class),
                        message: e.to_string(),
                    },
                    Vec::new(),
                ),
            }
        }
        Request::Status { id } => match service.status(id) {
            Ok(s) => (
                Response::Status {
                    id,
                    state: s.state.to_string(),
                    circuit: s.circuit,
                    from_store: s.from_store,
                },
                Vec::new(),
            ),
            Err(e) => (error_reply(&e), Vec::new()),
        },
        // `result_any` serves whichever flow the netlist selected:
        // combinational jobs render the path report, register netlists
        // the setup/hold check report — same protocol, same framing.
        Request::Result { id, top } => match service.result_any(id) {
            Ok(report) => {
                let rendered = report.deterministic_text(top.unwrap_or(DEFAULT_TOP));
                let payload: Vec<String> = rendered.lines().map(str::to_string).collect();
                (
                    Response::Result {
                        id,
                        lines: payload.len(),
                    },
                    payload,
                )
            }
            Err(e) => (error_reply(&e), Vec::new()),
        },
        Request::Cancel { id } => match service.cancel(id) {
            Ok(outcome) => (
                Response::Cancelled {
                    id,
                    immediate: outcome == CancelOutcome::Immediate,
                },
                Vec::new(),
            ),
            Err(e) => (error_reply(&e), Vec::new()),
        },
        Request::Stats => {
            let payload = render_stats(&service.stats(), counters);
            (
                Response::Stats {
                    lines: payload.len(),
                },
                payload,
            )
        }
        Request::Shutdown => {
            service.shutdown();
            (Response::ShuttingDown, Vec::new())
        }
    }
}

fn render_stats(stats: &ServiceStats, counters: &Counters) -> Vec<String> {
    let c = &stats.cache;
    vec![
        format!("submitted: {}", stats.submitted),
        format!("completed: {}", stats.completed),
        format!("degraded: {}", stats.degraded),
        format!("failed: {}", stats.failed),
        format!("cancelled: {}", stats.cancelled),
        format!("store-hits: {}", stats.store_hits),
        format!("rejected: {}", stats.rejected),
        format!("throttled: {}", stats.throttled),
        format!("expired: {}", stats.expired),
        format!("clients: {}", stats.clients),
        format!("shed-connections: {}", counters.shed.load(Ordering::SeqCst)),
        format!(
            "reaped-connections: {}",
            counters.reaped.load(Ordering::SeqCst)
        ),
        format!("queued: {}", stats.queued),
        format!("running: {}", stats.running),
        format!("store-entries: {}", stats.store_entries),
        format!("store-loaded: {}", stats.store_loaded),
        format!("store-write-errors: {}", stats.store_write_errors),
        format!(
            "kernel-cache: {} hits / {} lookups, {} entries, {} evictions",
            c.hits(),
            c.lookups(),
            c.entries,
            c.evictions
        ),
    ]
}

/// Builds the job spec a `SUBMIT` line describes: resolve the netlist
/// source, the placement and the run options. Also returns the queue
/// deadline (`deadline=<ms>`), which is admission metadata — it lives
/// *outside* the spec so it never perturbs the result-store fingerprint.
fn build_spec(
    source: &str,
    options: &[(String, String)],
    default_backend: statim_core::ConvolveBackend,
) -> Result<(JobSpec, Option<u64>), StatimError> {
    let circuit = load_source(source)?;
    let mut config = SstaConfig::date05();
    // Seeded before the option scan so an explicit `backend=` wins and
    // the daemon-wide default still lands in the job fingerprint.
    config.backend = default_backend;
    let mut placement_style = PlacementStyle::Levelized;
    let mut def_path: Option<&str> = None;
    let mut deadline_ms: Option<u64> = None;
    for (key, value) in options {
        match key.as_str() {
            "confidence" => config.confidence = parse_opt(key, value)?,
            "deadline" => deadline_ms = Some(parse_opt(key, value)?),
            "quality-intra" => config.quality_intra = parse_opt(key, value)?,
            "quality-inter" => config.quality_inter = parse_opt(key, value)?,
            "max-paths" => config.max_paths = parse_opt(key, value)?,
            "threads" => config.threads = Some(parse_opt(key, value)?),
            "retries" => config.retries = parse_opt(key, value)?,
            "cache" => {
                config.cache = match value.as_str() {
                    "on" => true,
                    "off" => false,
                    other => {
                        return Err(StatimError::new(
                            ErrorClass::Config,
                            format!("cache must be on or off, got `{other}`"),
                        ))
                    }
                }
            }
            "backend" => {
                config.backend = value
                    .parse()
                    .map_err(|e: String| StatimError::new(ErrorClass::Config, e))?;
            }
            "solver" => {
                config.solver = match value.as_str() {
                    "bellman-ford" => LabelSolver::BellmanFord,
                    "topological" => LabelSolver::Topological,
                    other => {
                        return Err(StatimError::new(
                            ErrorClass::Config,
                            format!("unknown solver `{other}` (bellman-ford or topological)"),
                        ))
                    }
                }
            }
            "inter-share" => {
                config = config.with_layers(statim_core::LayerModel::with_inter_share(parse_opt(
                    key, value,
                )?));
            }
            "max-wall-secs" => config.budget.max_wall_secs = Some(parse_opt(key, value)?),
            "max-analyzed-paths" => config.budget.max_paths = Some(parse_opt(key, value)?),
            "max-mc-samples" => config.budget.max_mc_samples = Some(parse_opt(key, value)?),
            "random-place" => {
                placement_style = PlacementStyle::Random(parse_opt(key, value)?);
            }
            "def" => def_path = Some(value),
            "fault-plan" => {
                #[cfg(feature = "fault-injection")]
                {
                    config = config.with_faults(value.parse::<statim_core::FaultPlan>()?);
                }
                #[cfg(not(feature = "fault-injection"))]
                return Err(StatimError::new(
                    ErrorClass::Config,
                    "fault-plan needs a fault-injection build of the daemon",
                ));
            }
            other => {
                return Err(StatimError::new(
                    ErrorClass::Config,
                    format!("unknown submit option `{other}`"),
                ))
            }
        }
    }
    let placement = match def_path {
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| StatimError::from(e).with_file(path))?;
            def_lite::parse(&text)
                .map_err(|e| StatimError::from(e).with_file(path))?
                .placement_for(&circuit)
                .map_err(|e| StatimError::from(e).with_file(path))?
        }
        None => Placement::generate(&circuit, placement_style),
    };
    Ok((JobSpec::new(circuit, placement, config), deadline_ms))
}

/// Derives a new [`JobSpec`] from a base job's spec by applying a
/// compact ECO edit script to a clone of its circuit. Placement and run
/// options carry over unchanged, so the new job re-analyzes against the
/// daemon's warm kernel store and path-identical kernels hit the cache.
fn edited_spec(base: &JobSpec, script: &str) -> Result<JobSpec, StatimError> {
    let script = EcoScript::parse_compact(script).map_err(StatimError::from)?;
    let mut circuit = base.circuit.clone();
    apply_edits(&mut circuit, &script).map_err(StatimError::from)?;
    Ok(JobSpec::new(
        circuit,
        base.placement.clone(),
        base.config.clone(),
    ))
}

fn load_source(source: &str) -> Result<Circuit, StatimError> {
    if let Some(name) = source.strip_prefix('@') {
        if let Some(bench) = Benchmark::from_name(name) {
            return Ok(iscas85::generate(bench));
        }
        // Sequential built-ins (s27, pipe<stages>x<width>) share the
        // `@name` namespace; the executor routes them to the
        // sequential flow from the registers in the netlist.
        return statim_netlist::generators::sequential::from_name(name).ok_or_else(|| {
            StatimError::new(
                ErrorClass::Config,
                format!("unknown built-in benchmark `@{name}`"),
            )
        });
    }
    let text =
        std::fs::read_to_string(source).map_err(|e| StatimError::from(e).with_file(source))?;
    let name = std::path::Path::new(source)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("circuit");
    bench_format::parse(name, &text).map_err(|e| StatimError::from(e).with_file(source))
}

fn parse_opt<T: std::str::FromStr>(key: &str, value: &str) -> Result<T, StatimError> {
    value.parse().map_err(|_| {
        StatimError::new(
            ErrorClass::Config,
            format!("invalid value `{value}` for option `{key}`"),
        )
    })
}

/// The daemon-side [`ServiceConfig`] knobs `statim serve` exposes.
#[derive(Debug, Clone, Default)]
pub struct DaemonOptions {
    /// Queue bound (`--max-queue`); `None` keeps the service default.
    pub max_queue: Option<usize>,
    /// Kernel-store entry cap (`--cache-capacity`).
    pub cache_capacity: Option<usize>,
    /// Default per-job wall budget (`--max-wall-secs`).
    pub max_wall_secs: Option<f64>,
    /// Default convolution backend for jobs (`--backend`); `None` keeps
    /// the service default (grid).
    pub backend: Option<statim_core::ConvolveBackend>,
    /// Persistent result-store directory (`--store-dir`); `None` keeps
    /// results in memory only.
    pub store_dir: Option<PathBuf>,
    /// Connection registry bound (`--max-conns`).
    pub max_conns: Option<usize>,
    /// Polling connection workers (`--conn-threads`).
    pub conn_threads: Option<usize>,
    /// Per-client live-job cap (`--max-per-client`).
    pub max_per_client: Option<usize>,
    /// Per-client token-bucket rate limit, jobs/s (`--rate-limit`).
    pub rate_limit: Option<u32>,
    /// Connection progress deadline, ms (`--io-timeout-ms`).
    pub io_timeout_ms: Option<u64>,
    /// Fsync result-store appends and index renames (`--store-fsync`).
    pub store_fsync: bool,
}

impl DaemonOptions {
    /// Lowers the options onto a service configuration plus the
    /// connection-pool tuning.
    pub fn into_configs(self) -> (ServiceConfig, DaemonTuning) {
        let mut config = ServiceConfig::default();
        if let Some(q) = self.max_queue {
            config.max_queue = q;
        }
        config.cache_capacity = self.cache_capacity;
        config.default_budget = RunBudget {
            max_wall_secs: self.max_wall_secs,
            ..RunBudget::none()
        };
        if let Some(b) = self.backend {
            config.default_backend = b;
        }
        config.store_dir = self.store_dir;
        config.max_per_client = self.max_per_client;
        config.rate_limit = self.rate_limit;
        config.store_fsync = self.store_fsync;
        let mut tuning = DaemonTuning::default();
        if let Some(n) = self.max_conns {
            tuning.max_conns = n;
        }
        if let Some(n) = self.conn_threads {
            tuning.workers = n.max(1);
        }
        tuning.io_timeout = self.io_timeout_ms.map(Duration::from_millis);
        (config, tuning)
    }

    /// Lowers the options onto a service configuration only, discarding
    /// the pool tuning (kept for callers that tune separately).
    pub fn into_service_config(self) -> ServiceConfig {
        self.into_configs().0
    }
}
