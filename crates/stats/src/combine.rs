//! Density of a function of independent random variables by exhaustive
//! grid enumeration.
//!
//! The inter-die path delay of the paper is a *non-linear* function of the
//! five inter-die RVs, so its PDF cannot be obtained by convolution. The
//! paper computes it numerically at `O(QUALITYinter^R)` cost and advises
//! separating as many variables as possible (§2.5). These kernels perform
//! that enumeration for one, two and three variables; higher arities are
//! reached by factoring the delay expression (see `statim-core::inter`).
//!
//! Each input cell contributes its probability mass at the function value
//! of the cell centers; the mass is histogrammed onto an automatically
//! ranged output grid.

use crate::grid::Grid;
use crate::pdf::Pdf;
use crate::{Result, StatsError};

/// Builds the output grid for mapped values in `[lo, hi]` with `quality`
/// cells, padding degenerate ranges so the grid is valid.
fn output_grid(lo: f64, hi: f64, quality: usize) -> Result<Grid> {
    if !lo.is_finite() || !hi.is_finite() {
        return Err(StatsError::NonFinite {
            what: "mapped values",
        });
    }
    let (lo, hi) = if hi - lo > 0.0 {
        (lo, hi)
    } else {
        // All mass at a single value: widen symmetrically.
        let pad = lo.abs().max(1.0) * 1e-9;
        (lo - pad, hi + pad)
    };
    // Nudge the top edge outward so the maximum value falls inside.
    let span = hi - lo;
    Grid::over(lo, hi + span * 1e-12 + f64::MIN_POSITIVE, quality)
}

/// Density of `Y = f(X)` for `X ~ p`. `f` need not be monotone.
///
/// # Errors
///
/// Returns an error if `f` produces non-finite values or `quality == 0`.
///
/// # Examples
///
/// ```
/// use statim_stats::{combine::map1, gaussian::gaussian_pdf};
/// let x = gaussian_pdf(0.0, 1.0, 6.0, 400);
/// let y = map1(&x, 200, |v| v * v).unwrap(); // chi-squared with 1 dof
/// assert!((y.mean() - 1.0).abs() < 0.02);
/// ```
pub fn map1(p: &Pdf, quality: usize, mut f: impl FnMut(f64) -> f64) -> Result<Pdf> {
    let vals: Vec<f64> = p.grid().centers().map(&mut f).collect();
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in &vals {
        if !v.is_finite() {
            return Err(StatsError::NonFinite {
                what: "map1 output",
            });
        }
        lo = lo.min(v);
        hi = hi.max(v);
    }
    let grid = output_grid(lo, hi, quality)?;
    let mut density = vec![0.0f64; grid.len()];
    let step_in = p.grid().step();
    for (i, &v) in vals.iter().enumerate() {
        density[grid.clamp_cell_of(v)] += p.density()[i] * step_in;
    }
    let density = density.iter().map(|m| m / grid.step()).collect();
    Pdf::new(grid, density)
}

/// Density of `Z = f(X, Y)` for independent `X ~ a`, `Y ~ b`.
/// Complexity `O(nₐ·n_b)`.
///
/// # Errors
///
/// Returns an error if `f` produces non-finite values or `quality == 0`.
pub fn map2(a: &Pdf, b: &Pdf, quality: usize, mut f: impl FnMut(f64, f64) -> f64) -> Result<Pdf> {
    let xs: Vec<f64> = a.grid().centers().collect();
    let ys: Vec<f64> = b.grid().centers().collect();
    let mut vals = Vec::with_capacity(xs.len() * ys.len());
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &x in &xs {
        for &y in &ys {
            let v = f(x, y);
            if !v.is_finite() {
                return Err(StatsError::NonFinite {
                    what: "map2 output",
                });
            }
            lo = lo.min(v);
            hi = hi.max(v);
            vals.push(v);
        }
    }
    let grid = output_grid(lo, hi, quality)?;
    let mut density = vec![0.0f64; grid.len()];
    let ma = a.grid().step();
    let mb = b.grid().step();
    let da = a.density();
    let db = b.density();
    let mut k = 0;
    for &dx in da.iter() {
        let wx = dx * ma;
        for &dy in db.iter() {
            density[grid.clamp_cell_of(vals[k])] += wx * dy * mb;
            k += 1;
        }
    }
    let density = density.iter().map(|m| m / grid.step()).collect();
    Pdf::new(grid, density)
}

/// Density of `W = f(X, Y, Z)` for three independent inputs.
/// Complexity `O(nₐ·n_b·n_c)` — the paper's `QUALITYinter³` kernel for the
/// voltage-dependent part of the inter-die delay.
///
/// # Errors
///
/// Returns an error if `f` produces non-finite values or `quality == 0`.
pub fn map3(
    a: &Pdf,
    b: &Pdf,
    c: &Pdf,
    quality: usize,
    mut f: impl FnMut(f64, f64, f64) -> f64,
) -> Result<Pdf> {
    let xs: Vec<f64> = a.grid().centers().collect();
    let ys: Vec<f64> = b.grid().centers().collect();
    let zs: Vec<f64> = c.grid().centers().collect();
    // First pass: range.
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &x in &xs {
        for &y in &ys {
            for &z in &zs {
                let v = f(x, y, z);
                if !v.is_finite() {
                    return Err(StatsError::NonFinite {
                        what: "map3 output",
                    });
                }
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
    }
    let grid = output_grid(lo, hi, quality)?;
    let mut density = vec![0.0f64; grid.len()];
    let (ma, mb, mc) = (a.grid().step(), b.grid().step(), c.grid().step());
    for (i, &x) in xs.iter().enumerate() {
        let wx = a.density()[i] * ma;
        if wx == 0.0 {
            continue;
        }
        for (j, &y) in ys.iter().enumerate() {
            let wxy = wx * b.density()[j] * mb;
            if wxy == 0.0 {
                continue;
            }
            for (k, &z) in zs.iter().enumerate() {
                let w = wxy * c.density()[k] * mc;
                density[grid.clamp_cell_of(f(x, y, z))] += w;
            }
        }
    }
    let density = density.iter().map(|m| m / grid.step()).collect();
    Pdf::new(grid, density)
}

/// Density of the product `X·Y` of independent variables — the
/// `tox·Leff` factor of the inter-die delay.
///
/// # Errors
///
/// Propagates [`map2`] failures.
pub fn product_pdf(a: &Pdf, b: &Pdf, quality: usize) -> Result<Pdf> {
    map2(a, b, quality, |x, y| x * y)
}

/// Density of `max(X, Y)` for **independent** `X ~ a`, `Y ~ b`, via the
/// CDF product `F_max(x) = F_X(x)·F_Y(x)` on a `quality`-cell grid
/// covering both supports.
///
/// This is the kernel of block-based statistical timing in the style the
/// DATE'05 paper criticizes (its refs [3, 4]): arrival-time maxima taken
/// as if reconverging paths were independent.
///
/// # Errors
///
/// Propagates grid-construction failures.
pub fn max_pdf(a: &Pdf, b: &Pdf, quality: usize) -> Result<Pdf> {
    let lo = a.grid().lo().min(b.grid().lo());
    let hi = a.grid().hi().max(b.grid().hi());
    let grid = output_grid(lo, hi, quality)?;
    let mut density = Vec::with_capacity(quality);
    let step = grid.step();
    let mut prev = a.cdf(grid.edge(0)) * b.cdf(grid.edge(0));
    for i in 0..quality {
        let next = a.cdf(grid.edge(i + 1)) * b.cdf(grid.edge(i + 1));
        density.push(((next - prev).max(0.0)) / step);
        prev = next;
    }
    Pdf::new(grid, density)
}

/// Density of `max(X₁, X₂, …)` for independent variables.
///
/// # Errors
///
/// Returns [`StatsError::ZeroMass`] for an empty slice; otherwise
/// propagates [`max_pdf`] failures.
pub fn max_pdf_many(pdfs: &[Pdf], quality: usize) -> Result<Pdf> {
    let mut iter = pdfs.iter();
    let first = iter.next().ok_or(StatsError::ZeroMass)?;
    let mut acc = first.clone();
    for p in iter {
        acc = max_pdf(&acc, p, quality)?;
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gaussian::gaussian_pdf;
    use crate::Grid;

    #[test]
    fn map1_linear_matches_affine() {
        let p = gaussian_pdf(10.0, 2.0, 6.0, 300);
        let m = map1(&p, 300, |x| 3.0 * x + 1.0).unwrap();
        let a = p.affine(3.0, 1.0).unwrap();
        assert!((m.mean() - a.mean()).abs() < 0.05);
        assert!((m.std_dev() - a.std_dev()).abs() < 0.05);
    }

    #[test]
    fn map1_rejects_non_finite() {
        let p = gaussian_pdf(0.0, 1.0, 6.0, 50);
        assert!(map1(&p, 50, |x| 1.0 / (x - x)).is_err());
    }

    #[test]
    fn map1_constant_function() {
        let p = gaussian_pdf(0.0, 1.0, 6.0, 50);
        let m = map1(&p, 10, |_| 5.0).unwrap();
        assert!((m.mean() - 5.0).abs() < 1e-6);
        assert!(m.std_dev() < 1e-6);
    }

    #[test]
    fn map2_sum_matches_convolution() {
        let a = gaussian_pdf(5.0, 1.0, 6.0, 150);
        let b = gaussian_pdf(7.0, 2.0, 6.0, 150);
        let s = map2(&a, &b, 200, |x, y| x + y).unwrap();
        assert!((s.mean() - 12.0).abs() < 0.05);
        assert!((s.variance() - 5.0).abs() < 0.1);
    }

    #[test]
    fn product_of_positive_gaussians() {
        // E[XY] = E[X]E[Y]; Var(XY) = σx²σy² + σx²μy² + σy²μx².
        let a = gaussian_pdf(4.5, 0.15, 6.0, 120);
        let b = gaussian_pdf(130.0, 15.0, 6.0, 120);
        let p = product_pdf(&a, &b, 200).unwrap();
        assert!((p.mean() - 585.0).abs() < 1.5);
        let var = 0.15f64.powi(2) * 15.0f64.powi(2)
            + 0.15f64.powi(2) * 130.0f64.powi(2)
            + 15.0f64.powi(2) * 4.5f64.powi(2);
        assert!((p.variance() - var).abs() / var < 0.02);
    }

    #[test]
    fn map3_sum_of_three() {
        let g = |m: f64| gaussian_pdf(m, 1.0, 6.0, 40);
        let s = map3(&g(1.0), &g(2.0), &g(3.0), 120, |x, y, z| x + y + z).unwrap();
        assert!((s.mean() - 6.0).abs() < 0.05);
        assert!((s.variance() - 3.0).abs() < 0.15);
    }

    #[test]
    fn map2_mass_is_conserved() {
        let g = Grid::over(0.0, 1.0, 25).unwrap();
        let u = Pdf::new(g, vec![1.0; 25]).unwrap();
        let m = map2(&u, &u, 60, |x, y| x * y - y).unwrap();
        assert!((m.mass() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn max_of_iid_gaussians_known_mean() {
        // E[max(X,Y)] = μ + σ/√π for iid normals.
        let a = gaussian_pdf(10.0, 2.0, 6.0, 300);
        let m = max_pdf(&a, &a, 300).unwrap();
        let expect = 10.0 + 2.0 / std::f64::consts::PI.sqrt();
        assert!((m.mean() - expect).abs() < 0.02, "{} vs {expect}", m.mean());
        assert!((m.mass() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn max_with_dominated_operand_is_identity() {
        let hi = gaussian_pdf(100.0, 1.0, 6.0, 200);
        let lo = gaussian_pdf(0.0, 1.0, 6.0, 200);
        let m = max_pdf(&hi, &lo, 200).unwrap();
        assert!((m.mean() - hi.mean()).abs() < 0.05);
        assert!((m.std_dev() - hi.std_dev()).abs() < 0.05);
    }

    #[test]
    fn max_of_uniforms_is_beta_like() {
        // max of two U(0,1): F = x², mean 2/3, var 1/18.
        let g = Grid::over(0.0, 1.0, 200).unwrap();
        let u = Pdf::new(g, vec![1.0; 200]).unwrap();
        let m = max_pdf(&u, &u, 200).unwrap();
        assert!((m.mean() - 2.0 / 3.0).abs() < 0.01);
        assert!((m.variance() - 1.0 / 18.0).abs() < 0.005);
    }

    #[test]
    fn max_many_increases_mean_monotonically() {
        let a = gaussian_pdf(5.0, 1.0, 6.0, 150);
        let m2 = max_pdf_many(&[a.clone(), a.clone()], 150).unwrap();
        let m4 = max_pdf_many(&[a.clone(), a.clone(), a.clone(), a.clone()], 150).unwrap();
        assert!(m2.mean() > a.mean());
        assert!(m4.mean() > m2.mean());
        assert!(max_pdf_many(&[], 10).is_err());
        // Single operand: unchanged.
        let m1 = max_pdf_many(std::slice::from_ref(&a), 150).unwrap();
        assert!((m1.mean() - a.mean()).abs() < 1e-9);
    }
}
