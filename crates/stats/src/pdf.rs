//! Piecewise-constant probability density functions on uniform grids.

use crate::grid::{steps_compatible, Grid};
use crate::{Result, StatsError};

/// A probability density function discretized on a [`Grid`].
///
/// The density is piecewise-constant: cell `i` carries probability mass
/// `density[i] · step`. A `Pdf` produced by the constructors in this crate
/// is normalized (total mass 1) unless documented otherwise.
///
/// This is the numerical object the DATE'05 paper calls a "PDF with
/// QUALITY discretization points".
#[derive(Debug, Clone, PartialEq)]
pub struct Pdf {
    grid: Grid,
    density: Vec<f64>,
}

impl Pdf {
    /// Creates a PDF from a grid and per-cell densities, normalizing the
    /// total mass to 1.
    ///
    /// # Errors
    ///
    /// Returns an error if the lengths mismatch, any density is negative
    /// or non-finite, or the total mass is zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use statim_stats::{Grid, Pdf};
    /// let g = Grid::new(0.0, 1.0, 2).unwrap();
    /// let p = Pdf::new(g, vec![1.0, 3.0]).unwrap();
    /// assert!((p.mass() - 1.0).abs() < 1e-12);
    /// assert!((p.density()[1] - 0.75).abs() < 1e-12);
    /// ```
    pub fn new(grid: Grid, density: Vec<f64>) -> Result<Self> {
        let pdf = Pdf::unnormalized(grid, density)?;
        pdf.normalized()
    }

    /// Creates a PDF without normalizing. The caller is responsible for
    /// mass bookkeeping (used internally while accumulating histograms).
    ///
    /// # Errors
    ///
    /// Returns an error on length mismatch, negative or non-finite density.
    pub fn unnormalized(grid: Grid, density: Vec<f64>) -> Result<Self> {
        if density.len() != grid.len() {
            return Err(StatsError::LengthMismatch {
                grid: grid.len(),
                density: density.len(),
            });
        }
        for (i, &d) in density.iter().enumerate() {
            if !d.is_finite() {
                return Err(StatsError::NonFinite { what: "density" });
            }
            if d < 0.0 {
                return Err(StatsError::NegativeDensity { index: i, value: d });
            }
        }
        Ok(Pdf { grid, density })
    }

    /// Creates a PDF by evaluating `f` at each cell center, then
    /// normalizing.
    ///
    /// # Errors
    ///
    /// Returns an error if `f` produces negative or non-finite values, or
    /// is identically zero on the grid.
    pub fn from_fn(grid: Grid, mut f: impl FnMut(f64) -> f64) -> Result<Self> {
        let density: Vec<f64> = grid.centers().map(&mut f).collect();
        Pdf::new(grid, density)
    }

    /// Builds a PDF as a normalized histogram of `samples` over `grid`.
    /// Samples falling outside the grid are clamped into the boundary
    /// cells (consistent with the paper's ±6σ truncation).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::ZeroMass`] if `samples` is empty and
    /// [`StatsError::NonFinite`] if any sample is not finite.
    pub fn from_samples(grid: Grid, samples: &[f64]) -> Result<Self> {
        if samples.is_empty() {
            return Err(StatsError::ZeroMass);
        }
        let mut counts = vec![0.0f64; grid.len()];
        for &s in samples {
            if !s.is_finite() {
                return Err(StatsError::NonFinite { what: "sample" });
            }
            counts[grid.clamp_cell_of(s)] += 1.0;
        }
        Pdf::new(grid, counts)
    }

    /// The PDF concentrating all mass in the cell containing `x`
    /// (a discretized Dirac delta).
    ///
    /// # Errors
    ///
    /// Returns an error if `x` is not finite.
    pub fn delta(grid: Grid, x: f64) -> Result<Self> {
        if !x.is_finite() {
            return Err(StatsError::NonFinite {
                what: "delta location",
            });
        }
        let mut density = vec![0.0; grid.len()];
        density[grid.clamp_cell_of(x)] = 1.0;
        Pdf::new(grid, density)
    }

    /// The underlying grid.
    #[inline]
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Deliberately corrupts cell `i % len` of the density with a NaN —
    /// the fault-injection port proving that no public constructor path
    /// can produce such a PDF and that downstream consumers quarantine
    /// it. Compiled only with the `fault-injection` feature.
    #[cfg(feature = "fault-injection")]
    #[must_use]
    pub fn with_poisoned_cell(mut self, i: usize) -> Pdf {
        let n = self.density.len();
        if n > 0 {
            self.density[i % n] = f64::NAN;
        }
        self
    }

    /// Per-cell density values.
    #[inline]
    pub fn density(&self) -> &[f64] {
        &self.density
    }

    /// Number of discretization cells (the paper's `QUALITY`).
    #[inline]
    pub fn len(&self) -> usize {
        self.grid.len()
    }

    /// Always `false`; present for API symmetry with collections.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.grid.is_empty()
    }

    /// Total probability mass `Σ density·step` (1 for a normalized PDF).
    pub fn mass(&self) -> f64 {
        self.density.iter().sum::<f64>() * self.grid.step()
    }

    /// Returns a normalized copy.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::ZeroMass`] if the total mass is zero.
    pub fn normalized(&self) -> Result<Self> {
        let m = self.mass();
        if m <= 0.0 || !m.is_finite() {
            return Err(StatsError::ZeroMass);
        }
        let density = self.density.iter().map(|d| d / m).collect();
        Ok(Pdf {
            grid: self.grid,
            density,
        })
    }

    /// Mean `E[X]`, computed from cell centers.
    pub fn mean(&self) -> f64 {
        let step = self.grid.step();
        self.density
            .iter()
            .enumerate()
            .map(|(i, d)| self.grid.center(i) * d * step)
            .sum::<f64>()
            / self.mass()
    }

    /// Variance `E[(X−μ)²]`.
    pub fn variance(&self) -> f64 {
        let mu = self.mean();
        let step = self.grid.step();
        let v = self
            .density
            .iter()
            .enumerate()
            .map(|(i, d)| {
                let dx = self.grid.center(i) - mu;
                dx * dx * d * step
            })
            .sum::<f64>()
            / self.mass();
        v.max(0.0)
    }

    /// Standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Central moment `E[(X−μ)ᵏ]`.
    pub fn central_moment(&self, k: u32) -> f64 {
        let mu = self.mean();
        let step = self.grid.step();
        self.density
            .iter()
            .enumerate()
            .map(|(i, d)| (self.grid.center(i) - mu).powi(k as i32) * d * step)
            .sum::<f64>()
            / self.mass()
    }

    /// Skewness `E[(X−μ)³]/σ³` (0 for symmetric distributions).
    pub fn skewness(&self) -> f64 {
        let sigma = self.std_dev();
        if sigma == 0.0 {
            return 0.0;
        }
        self.central_moment(3) / (sigma * sigma * sigma)
    }

    /// Excess kurtosis `E[(X−μ)⁴]/σ⁴ − 3` (0 for a Gaussian, negative
    /// for lighter-tailed shapes like the uniform).
    pub fn excess_kurtosis(&self) -> f64 {
        let var = self.variance();
        if var == 0.0 {
            return 0.0;
        }
        self.central_moment(4) / (var * var) - 3.0
    }

    /// The paper's *confidence point*: `mean + k·σ`. `sigma_point(3.0)` is
    /// the 3σ point used to rank critical paths.
    pub fn sigma_point(&self, k: f64) -> f64 {
        self.mean() + k * self.std_dev()
    }

    /// Cumulative distribution `P(X ≤ x)`, linear within a cell.
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= self.grid.lo() {
            return 0.0;
        }
        if x >= self.grid.hi() {
            return 1.0;
        }
        let m = self.mass();
        let step = self.grid.step();
        let i = self.grid.clamp_cell_of(x);
        let below: f64 = self.density[..i].iter().sum::<f64>() * step;
        let within = self.density[i] * (x - self.grid.edge(i));
        ((below + within) / m).clamp(0.0, 1.0)
    }

    /// Quantile function: the smallest `x` with `cdf(x) ≥ p`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidProbability`] unless `0 ≤ p ≤ 1`.
    pub fn quantile(&self, p: f64) -> Result<f64> {
        if !(0.0..=1.0).contains(&p) || !p.is_finite() {
            return Err(StatsError::InvalidProbability { value: p });
        }
        let m = self.mass();
        let step = self.grid.step();
        let target = p * m;
        let mut acc = 0.0;
        for (i, &d) in self.density.iter().enumerate() {
            let cell_mass = d * step;
            if acc + cell_mass >= target {
                if cell_mass <= 0.0 {
                    return Ok(self.grid.edge(i));
                }
                let frac = (target - acc) / cell_mass;
                return Ok(self.grid.edge(i) + frac * step);
            }
            acc += cell_mass;
        }
        Ok(self.grid.hi())
    }

    /// Smallest interval of cells `[lo, hi]` carrying all but `eps` of the
    /// mass on each side. Useful for trimming negligible tails.
    pub fn support(&self, eps: f64) -> (f64, f64) {
        let m = self.mass();
        let step = self.grid.step();
        let mut lo_i = 0;
        let mut acc = 0.0;
        while lo_i + 1 < self.density.len() {
            acc += self.density[lo_i] * step;
            if acc > eps * m {
                break;
            }
            lo_i += 1;
        }
        let mut hi_i = self.density.len() - 1;
        let mut acc = 0.0;
        while hi_i > lo_i {
            acc += self.density[hi_i] * step;
            if acc > eps * m {
                break;
            }
            hi_i -= 1;
        }
        (self.grid.edge(lo_i), self.grid.edge(hi_i + 1))
    }

    /// Density of `Y = a·X + b`. `a` may be negative; the grid is flipped
    /// accordingly.
    ///
    /// # Errors
    ///
    /// Returns an error if `a == 0` or either coefficient is non-finite.
    pub fn affine(&self, a: f64, b: f64) -> Result<Pdf> {
        if !a.is_finite() || !b.is_finite() {
            return Err(StatsError::NonFinite {
                what: "affine coefficients",
            });
        }
        if a == 0.0 {
            return Err(StatsError::NonPositiveScale { value: a });
        }
        let n = self.grid.len();
        let step = self.grid.step() * a.abs();
        let (lo, density) = if a > 0.0 {
            (
                a * self.grid.lo() + b,
                self.density.iter().map(|d| d / a).collect(),
            )
        } else {
            (
                a * self.grid.hi() + b,
                self.density.iter().rev().map(|d| d / -a).collect(),
            )
        };
        let grid = Grid::new(lo, step, n)?;
        Ok(Pdf { grid, density })
    }

    /// Re-discretizes the PDF onto `target`, conserving probability mass.
    /// Mass in source cells is distributed over the target cells they
    /// overlap, proportionally to overlap length; mass outside `target`
    /// is accumulated into the boundary cells so the result keeps total
    /// mass (the paper's truncation convention).
    pub fn resample(&self, target: Grid) -> Pdf {
        let mut density = vec![0.0f64; target.len()];
        let src_step = self.grid.step();
        let tgt_step = target.step();
        for (i, &d) in self.density.iter().enumerate() {
            let mass = d * src_step;
            if mass == 0.0 {
                continue;
            }
            let a = self.grid.edge(i);
            let b = self.grid.edge(i + 1);
            // Clamp the source cell into the target span.
            let ca = a.max(target.lo()).min(target.hi());
            let cb = b.max(target.lo()).min(target.hi());
            // Out-of-range mass goes to the boundary cells.
            if a < target.lo() {
                let frac = ((target.lo() - a) / (b - a)).min(1.0);
                density[0] += mass * frac / tgt_step;
            }
            if b > target.hi() {
                let frac = ((b - target.hi()) / (b - a)).min(1.0);
                density[target.len() - 1] += mass * frac / tgt_step;
            }
            if cb <= ca {
                continue;
            }
            let in_mass = mass * (cb - ca) / (b - a);
            let i0 = target.clamp_cell_of(ca + 1e-12 * tgt_step);
            let i1 = target.clamp_cell_of(cb - 1e-12 * tgt_step);
            if i0 == i1 {
                density[i0] += in_mass / tgt_step;
            } else {
                for (j, cell) in density.iter_mut().enumerate().take(i1 + 1).skip(i0) {
                    let ja = target.edge(j).max(ca);
                    let jb = target.edge(j + 1).min(cb);
                    if jb > ja {
                        *cell += in_mass * (jb - ja) / (cb - ca) / tgt_step;
                    }
                }
            }
        }
        Pdf {
            grid: target,
            density,
        }
    }

    /// Returns a copy resampled to exactly `n` cells over the current span.
    ///
    /// # Errors
    ///
    /// Returns an error if `n == 0`.
    pub fn with_quality(&self, n: usize) -> Result<Pdf> {
        let target = Grid::over(self.grid.lo(), self.grid.hi(), n)?;
        Ok(self.resample(target))
    }

    /// Maximum density value (the mode's density).
    pub fn peak_density(&self) -> f64 {
        self.density.iter().cloned().fold(0.0, f64::max)
    }

    /// Location (cell center) of the maximum density.
    pub fn mode(&self) -> f64 {
        let (i, _) = self
            .density
            .iter()
            .enumerate()
            .fold(
                (0, f64::MIN),
                |best, (i, &d)| if d > best.1 { (i, d) } else { best },
            );
        self.grid.center(i)
    }

    /// Kolmogorov–Smirnov distance `sup_x |F_self(x) − F_other(x)|`,
    /// evaluated on the union of both grids' edges. The standard
    /// goodness-of-fit metric this workspace uses to compare analytic
    /// PDFs against Monte-Carlo references.
    pub fn ks_distance(&self, other: &Pdf) -> f64 {
        let mut worst = 0.0f64;
        for g in [&self.grid, &other.grid] {
            for i in 0..=g.len() {
                let x = g.edge(i);
                worst = worst.max((self.cdf(x) - other.cdf(x)).abs());
            }
        }
        worst
    }

    /// Pointwise mixture `w·self + (1−w)·other` on the union grid.
    ///
    /// # Errors
    ///
    /// Returns an error if grids have incompatible steps or `w ∉ [0,1]`.
    pub fn mix(&self, other: &Pdf, w: f64) -> Result<Pdf> {
        if !(0.0..=1.0).contains(&w) {
            return Err(StatsError::InvalidProbability { value: w });
        }
        if !steps_compatible(self.grid.step(), other.grid.step()) {
            return Err(StatsError::StepMismatch {
                left: self.grid.step(),
                right: other.grid.step(),
            });
        }
        let g = self.grid.union(&other.grid)?;
        let a = self.resample(g);
        let b = other.resample(g);
        let density = a
            .density
            .iter()
            .zip(&b.density)
            .map(|(x, y)| w * x + (1.0 - w) * y)
            .collect();
        Pdf::new(g, density)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(lo: f64, hi: f64, n: usize) -> Pdf {
        let g = Grid::over(lo, hi, n).unwrap();
        Pdf::new(g, vec![1.0; n]).unwrap()
    }

    #[test]
    fn new_normalizes() {
        let p = uniform(0.0, 2.0, 4);
        assert!((p.mass() - 1.0).abs() < 1e-12);
        assert!((p.density()[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_density() {
        let g = Grid::new(0.0, 1.0, 2).unwrap();
        assert!(matches!(
            Pdf::new(g, vec![1.0]),
            Err(StatsError::LengthMismatch { .. })
        ));
        assert!(matches!(
            Pdf::new(g, vec![1.0, -0.5]),
            Err(StatsError::NegativeDensity { index: 1, .. })
        ));
        assert!(matches!(
            Pdf::new(g, vec![0.0, 0.0]),
            Err(StatsError::ZeroMass)
        ));
        assert!(Pdf::new(g, vec![f64::NAN, 1.0]).is_err());
    }

    #[test]
    fn uniform_moments() {
        let p = uniform(0.0, 12.0, 1200);
        assert!((p.mean() - 6.0).abs() < 1e-9);
        assert!((p.variance() - 12.0).abs() < 0.01); // var of U(0,12) = 144/12
    }

    #[test]
    fn delta_mass_in_one_cell() {
        let g = Grid::new(0.0, 1.0, 10).unwrap();
        let p = Pdf::delta(g, 3.7).unwrap();
        assert_eq!(p.mode(), 3.5);
        assert!((p.mass() - 1.0).abs() < 1e-12);
        assert!((p.variance()).abs() < 1e-12);
    }

    #[test]
    fn cdf_and_quantile_roundtrip() {
        let p = uniform(2.0, 4.0, 100);
        assert!((p.cdf(3.0) - 0.5).abs() < 1e-9);
        assert!((p.quantile(0.5).unwrap() - 3.0).abs() < 1e-9);
        assert_eq!(p.cdf(1.0), 0.0);
        assert_eq!(p.cdf(5.0), 1.0);
        assert!(p.quantile(1.5).is_err());
        assert!(p.quantile(-0.1).is_err());
    }

    #[test]
    fn higher_moments() {
        // Uniform: skewness 0, excess kurtosis −6/5.
        let u = uniform(0.0, 1.0, 400);
        assert!(u.skewness().abs() < 1e-9);
        assert!((u.excess_kurtosis() + 1.2).abs() < 0.01);
        // A right-leaning triangle has positive skew.
        let g = Grid::over(0.0, 1.0, 400).unwrap();
        let tri = Pdf::from_fn(g, |x| 1.0 - x).unwrap();
        assert!(tri.skewness() > 0.4);
        // Degenerate distribution: defined as zero.
        let d = Pdf::delta(Grid::new(0.0, 1.0, 4).unwrap(), 2.0).unwrap();
        assert_eq!(d.skewness(), 0.0);
        assert_eq!(d.excess_kurtosis(), 0.0);
    }

    #[test]
    fn sigma_point_matches_moments() {
        let p = uniform(0.0, 1.0, 50);
        let expect = p.mean() + 3.0 * p.std_dev();
        assert!((p.sigma_point(3.0) - expect).abs() < 1e-12);
    }

    #[test]
    fn affine_scales_and_shifts() {
        let p = uniform(0.0, 1.0, 40);
        let q = p.affine(2.0, 5.0).unwrap();
        assert!((q.mean() - (2.0 * p.mean() + 5.0)).abs() < 1e-9);
        assert!((q.variance() - 4.0 * p.variance()).abs() < 1e-9);
        assert!((q.mass() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn affine_negative_flips() {
        let p = uniform(1.0, 2.0, 40);
        let q = p.affine(-1.0, 0.0).unwrap();
        assert!((q.mean() + p.mean()).abs() < 1e-9);
        assert!((q.grid().lo() + 2.0).abs() < 1e-9);
        assert!((q.mass() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn affine_rejects_zero_scale() {
        let p = uniform(0.0, 1.0, 4);
        assert!(p.affine(0.0, 1.0).is_err());
    }

    #[test]
    fn resample_conserves_mass_and_moments() {
        let p = uniform(0.0, 10.0, 64);
        let fine = Grid::over(-1.0, 11.0, 999).unwrap();
        let q = p.resample(fine);
        assert!((q.mass() - 1.0).abs() < 1e-9);
        assert!((q.mean() - p.mean()).abs() < 0.02);
        assert!((q.variance() - p.variance()).abs() < 0.05);
    }

    #[test]
    fn resample_clamps_outside_mass_to_boundaries() {
        let p = uniform(0.0, 10.0, 100);
        let narrow = Grid::over(2.0, 8.0, 60).unwrap();
        let q = p.resample(narrow);
        assert!((q.mass() - 1.0).abs() < 1e-9);
        // 20% of mass piles into each boundary cell.
        assert!(q.density()[0] > q.density()[30] * 10.0);
    }

    #[test]
    fn from_samples_histogram() {
        let g = Grid::over(0.0, 4.0, 4).unwrap();
        let p = Pdf::from_samples(g, &[0.5, 0.6, 1.5, 3.5]).unwrap();
        assert!((p.mass() - 1.0).abs() < 1e-12);
        assert!((p.density()[0] - 0.5).abs() < 1e-12);
        assert!(Pdf::from_samples(g, &[]).is_err());
        assert!(Pdf::from_samples(g, &[f64::NAN]).is_err());
    }

    #[test]
    fn support_trims_tails() {
        let g = Grid::over(0.0, 10.0, 10).unwrap();
        let mut d = vec![0.0; 10];
        d[4] = 1.0;
        d[5] = 1.0;
        let p = Pdf::new(g, d).unwrap();
        let (lo, hi) = p.support(1e-9);
        assert!((lo - 4.0).abs() < 1e-9);
        assert!((hi - 6.0).abs() < 1e-9);
    }

    #[test]
    fn ks_distance_properties() {
        let a = uniform(0.0, 1.0, 100);
        let b = uniform(0.5, 1.5, 100);
        // Identity: zero distance to itself.
        assert_eq!(a.ks_distance(&a), 0.0);
        // Symmetry.
        assert!((a.ks_distance(&b) - b.ks_distance(&a)).abs() < 1e-12);
        // Known value: shifted uniforms overlap half — KS = 0.5.
        assert!((a.ks_distance(&b) - 0.5).abs() < 0.02);
        // Disjoint supports: KS = 1.
        let c = uniform(10.0, 11.0, 50);
        assert!((a.ks_distance(&c) - 1.0).abs() < 1e-9);
        // Bounded in [0, 1].
        assert!(a.ks_distance(&b) <= 1.0);
    }

    #[test]
    fn mix_blends() {
        let a = uniform(0.0, 1.0, 10);
        let b = uniform(0.5, 1.5, 10);
        let m = a.mix(&b, 0.5).unwrap();
        assert!((m.mass() - 1.0).abs() < 1e-9);
        assert!((m.mean() - 0.75).abs() < 1e-6);
        assert!(a.mix(&b, 1.5).is_err());
    }
}
