//! Plain-text rendering of distributions for reports and figure binaries.
//!
//! The benchmark harness regenerates the paper's figures (delay-PDF plots,
//! rank scatter plots) as text: CSV series for external plotting plus an
//! ASCII sparkline view for terminals.

use crate::pdf::Pdf;
use std::fmt::Write as _;

/// One named series for a figure: `(label, points)`.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(x, y)` points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Builds a series from a PDF (cell centers vs. densities).
    pub fn from_pdf(label: impl Into<String>, pdf: &Pdf) -> Self {
        let points = pdf
            .grid()
            .centers()
            .zip(pdf.density().iter().copied())
            .collect();
        Series {
            label: label.into(),
            points,
        }
    }
}

/// Renders series as CSV: header `x,<label1>,<label2>,…`, one row per x of
/// the first series; other series are linearly interpolated at those x.
pub fn to_csv(series: &[Series]) -> String {
    let mut out = String::new();
    if series.is_empty() {
        return out;
    }
    out.push('x');
    for s in series {
        let _ = write!(out, ",{}", s.label.replace(',', ";"));
    }
    out.push('\n');
    for &(x, y0) in &series[0].points {
        let _ = write!(out, "{x:.6},{y0:.9}");
        for s in &series[1..] {
            let _ = write!(out, ",{:.9}", interp(&s.points, x));
        }
        out.push('\n');
    }
    out
}

fn interp(points: &[(f64, f64)], x: f64) -> f64 {
    if points.is_empty() {
        return 0.0;
    }
    if x <= points[0].0 {
        return if x == points[0].0 { points[0].1 } else { 0.0 };
    }
    if x >= points[points.len() - 1].0 {
        return if x == points[points.len() - 1].0 {
            points[points.len() - 1].1
        } else {
            0.0
        };
    }
    match points.binary_search_by(|p| p.0.partial_cmp(&x).expect("finite x")) {
        Ok(i) => points[i].1,
        Err(i) => {
            let (x0, y0) = points[i - 1];
            let (x1, y1) = points[i];
            y0 + (y1 - y0) * (x - x0) / (x1 - x0)
        }
    }
}

/// Renders a PDF as a fixed-width ASCII plot: `rows` lines of `cols`
/// characters, densities scaled to the peak.
pub fn ascii_plot(pdf: &Pdf, rows: usize, cols: usize) -> String {
    let rows = rows.max(1);
    let cols = cols.max(2);
    let g = pdf.grid();
    // Bin densities into `cols` columns.
    let mut col_val = vec![0.0f64; cols];
    for (i, &d) in pdf.density().iter().enumerate() {
        let frac = (g.center(i) - g.lo()) / (g.hi() - g.lo());
        let c = ((frac * cols as f64) as usize).min(cols - 1);
        col_val[c] = col_val[c].max(d);
    }
    let peak = col_val.iter().cloned().fold(f64::MIN_POSITIVE, f64::max);
    let mut out = String::new();
    for r in (1..=rows).rev() {
        let thresh = peak * (r as f64 - 0.5) / rows as f64;
        for &v in &col_val {
            out.push(if v >= thresh { '#' } else { ' ' });
        }
        out.push('\n');
    }
    let _ = writeln!(out, "{:-<cols$}", "");
    let _ = writeln!(
        out,
        "{:<12.3}{:>width$.3}",
        g.lo(),
        g.hi(),
        width = cols.saturating_sub(12)
    );
    out
}

/// Formats a Markdown-style table given a header and rows of cells.
/// Column widths adapt to contents.
pub fn format_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let hline = |out: &mut String| {
        for w in &widths {
            let _ = write!(out, "+{:-<width$}", "", width = w + 2);
        }
        out.push_str("+\n");
    };
    hline(&mut out);
    for (i, h) in header.iter().enumerate() {
        let _ = write!(out, "| {:width$} ", h, width = widths[i]);
    }
    out.push_str("|\n");
    hline(&mut out);
    for row in rows {
        for (i, width) in widths.iter().enumerate().take(ncols) {
            let empty = String::new();
            let cell = row.get(i).unwrap_or(&empty);
            let _ = write!(out, "| {:width$} ", cell, width = width);
        }
        out.push_str("|\n");
    }
    hline(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gaussian::gaussian_pdf;

    #[test]
    fn csv_has_header_and_rows() {
        let p = gaussian_pdf(0.0, 1.0, 3.0, 10);
        let s = vec![Series::from_pdf("a", &p), Series::from_pdf("b", &p)];
        let csv = to_csv(&s);
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("x,a,b"));
        assert_eq!(lines.count(), 10);
    }

    #[test]
    fn csv_empty_series() {
        assert_eq!(to_csv(&[]), "");
    }

    #[test]
    fn interp_midpoint() {
        let pts = vec![(0.0, 0.0), (1.0, 2.0)];
        assert!((interp(&pts, 0.5) - 1.0).abs() < 1e-12);
        assert_eq!(interp(&pts, -1.0), 0.0);
        assert_eq!(interp(&pts, 2.0), 0.0);
        assert_eq!(interp(&pts, 1.0), 2.0);
    }

    #[test]
    fn ascii_plot_shape() {
        let p = gaussian_pdf(0.0, 1.0, 4.0, 100);
        let art = ascii_plot(&p, 5, 40);
        assert_eq!(art.lines().count(), 7);
        // Peak row has fewer '#' than base row.
        let lines: Vec<&str> = art.lines().collect();
        let count = |s: &str| s.chars().filter(|&c| c == '#').count();
        assert!(count(lines[0]) <= count(lines[4]));
        assert!(count(lines[4]) > 0);
    }

    #[test]
    fn table_alignment() {
        let t = format_table(&["name", "v"], &[vec!["c432".into(), "266.771".into()]]);
        assert!(t.contains("c432"));
        assert!(t.contains("266.771"));
        assert!(t.starts_with('+'));
    }
}
