//! In-crate radix-2 FFT and the spectral convolution it powers.
//!
//! The grid convolution of [`convolve`](crate::convolve) costs
//! `O(nₐ·n_b)` — the paper's `O(QUALITY²)`. A linear convolution is a
//! pointwise product in the frequency domain, so the same density can be
//! computed in `O(n log n)`: pad both series to the next power of two at
//! least `nₐ + n_b − 1`, transform, multiply, transform back. This module
//! implements that with a dependency-free iterative radix-2
//! Cooley–Tukey FFT over `f64` pairs.
//!
//! Because both inputs and the output are real, every transform runs at
//! **half length**: each operand packs its even samples into the real
//! lane and its odd samples into the imaginary lane of an `n/2`-point
//! complex signal (the classic real-FFT split), the two half-spectra are
//! combined into the product spectrum with the conjugate-symmetry
//! unpacking rules, and one half-length inverse transform returns the
//! interleaved real convolution — three `n/2`-point FFTs in place of
//! three `n`-point ones.
//!
//! Everything here is a pure function of its input bits evaluated in a
//! fixed order, so results are run-to-run (and machine-)deterministic;
//! they differ from the direct grid accumulation only by floating-point
//! round-off, which is why the FFT backend is *tolerance-validated*
//! against the grid backend rather than required to be bit-identical.

use std::cell::RefCell;
use std::collections::HashMap;

/// Precomputed tables for one transform size `m`: stage-contiguous
/// twiddle factors, the bit-reversal permutation, and the half-step
/// roots `exp(-iπk/m)` used by the real-FFT spectrum (un)packing.
struct Tables {
    wre: Vec<f64>,
    wim: Vec<f64>,
    perm: Vec<u32>,
    hre: Vec<f64>,
    him: Vec<f64>,
}

impl Tables {
    fn build(m: usize) -> Self {
        // Twiddles, one contiguous run per stage: the roots for stage
        // `len` live at `[len/2 .. len)` as `exp(-2πi·k/len)`, k < len/2
        // — m entries total, read sequentially by the butterfly loop.
        // Each root comes from its own sin/cos call (no recurrences),
        // keeping the round-off floor flat.
        let mut wre = vec![0.0f64; m];
        let mut wim = vec![0.0f64; m];
        let mut len = 2;
        while len <= m {
            for k in 0..len / 2 {
                let angle = -2.0 * std::f64::consts::PI * k as f64 / len as f64;
                wre[len / 2 + k] = angle.cos();
                wim[len / 2 + k] = angle.sin();
            }
            len <<= 1;
        }
        // Bit-reversal permutation by the doubling recurrence:
        // rev(i) = rev(i/2)/2, plus the top bit when i is odd.
        let mut perm = vec![0u32; m];
        for i in 1..m {
            perm[i] = (perm[i >> 1] >> 1) | if i & 1 == 1 { m as u32 >> 1 } else { 0 };
        }
        // Half-step roots exp(-iπk/m) = exp(-2πik/n) for k ≤ m/2: the
        // odd-sample phase factors of the full-length spectrum.
        let mut hre = vec![0.0f64; m / 2 + 1];
        let mut him = vec![0.0f64; m / 2 + 1];
        for k in 0..=m / 2 {
            let angle = -std::f64::consts::PI * k as f64 / m as f64;
            hre[k] = angle.cos();
            him[k] = angle.sin();
        }
        Tables {
            wre,
            wim,
            perm,
            hre,
            him,
        }
    }
}

thread_local! {
    /// Transform tables keyed by size. A table is a pure function of the
    /// size, so the cache trades sin/cos calls for lookups without
    /// touching determinism; per-thread storage keeps the fast path
    /// lock-free under the engine's thread pool.
    static TWIDDLES: RefCell<HashMap<usize, Tables>> = RefCell::new(HashMap::new());
}

/// Linear convolution of two real series, `c[k] = Σ_i a[i]·b[k−i]`,
/// computed spectrally. The result has `a.len() + b.len() − 1` entries —
/// exactly the cell count of the Minkowski-sum output grid
/// [`sum_pdf`](crate::convolve::sum_pdf) produces.
///
/// Round-off can leave entries that should be zero (or tiny positives)
/// slightly negative; callers building densities should clamp. Empty
/// inputs yield an empty result.
///
/// # Examples
///
/// ```
/// use statim_stats::fft::convolve_series;
/// let c = convolve_series(&[1.0, 2.0], &[3.0, 4.0, 5.0]);
/// // (1 + 2x)(3 + 4x + 5x²) = 3 + 10x + 13x² + 10x³
/// assert_eq!(c.len(), 4);
/// assert!((c[0] - 3.0).abs() < 1e-12);
/// assert!((c[2] - 13.0).abs() < 1e-12);
/// ```
pub fn convolve_series(a: &[f64], b: &[f64]) -> Vec<f64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let out_len = a.len() + b.len() - 1;
    if out_len <= 4 {
        // Below the smallest useful transform the direct sum is both
        // exact and faster.
        let mut c = vec![0.0; out_len];
        for (i, &x) in a.iter().enumerate() {
            for (j, &y) in b.iter().enumerate() {
                c[i + j] += x * y;
            }
        }
        return c;
    }
    let amax = a.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
    let bmax = b.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
    if amax == 0.0 || bmax == 0.0 {
        return vec![0.0; out_len];
    }
    // Rescale each operand to O(1) by an exact power of two (no
    // rounding): intermediate spectra stay well inside the exponent
    // range whatever the caller's units, and the inverse scale — with
    // the inverse transform's 1/m folded in, all powers of two — is
    // applied once at spectrum-assembly time, again exactly.
    let sa = pow2_recip(amax);
    let sb = pow2_recip(bmax);
    let n = out_len.next_power_of_two(); // ≥ 8 here
    let m = n / 2;
    let scale = 1.0 / (sa * sb * m as f64);
    // Half-length even/odd packing: za[j] = a[2j] + i·a[2j+1].
    let pack = |src: &[f64], s: f64| {
        let mut re = vec![0.0f64; m];
        let mut im = vec![0.0f64; m];
        let mut pairs = src.chunks_exact(2);
        for (j, p) in pairs.by_ref().enumerate() {
            re[j] = p[0] * s;
            im[j] = p[1] * s;
        }
        if let Some(&last) = pairs.remainder().first() {
            re[src.len() / 2] = last * s;
        }
        (re, im)
    };
    let (mut ra, mut ia) = pack(a, sa);
    let (mut rb, mut ib) = pack(b, sb);
    TWIDDLES.with(|cache| {
        let mut cache = cache.borrow_mut();
        let t = cache.entry(m).or_insert_with(|| Tables::build(m));
        fft_core(&mut ra, &mut ia, t);
        fft_core(&mut rb, &mut ib, t);
        // Combine the two half-spectra into the packed product spectrum
        // Y[k] = Ce[k] + i·Co[k], where Ce/Co are the half-length
        // spectra of the even/odd output samples. With the even/odd
        // split E[k], O[k] of a real signal's spectrum X[k] = E[k] +
        // w^k·O[k] (w = exp(-iπ/m)) and t = w^k·O[k]:
        //     X[k]   = E[k] + t,      X[m−k] = conj(E[k] − t),
        // so P = A[k]·B[k] and Q = conj(C[m−k]) = (Ae−ta)·(Be−tb) give
        //     Ce[k] = (P + Q)/2,      Co[k] = conj(w^k)·(P − Q)/2.
        // Y[m−k] = conj(Ce[k]) + i·conj(Co[k]) fills the mirror half.
        // Y is written over (ra, ia); each pair (k, m−k) is read in
        // full before it is overwritten.
        let k0a = (ra[0], ia[0]);
        let k0b = (rb[0], ib[0]);
        {
            // k = 0 pairs with the (real) Nyquist bin k = m:
            // A[0] = Ae+Ao, A[m] = Ae−Ao, both real.
            let c0 = (k0a.0 + k0a.1) * (k0b.0 + k0b.1);
            let cm = (k0a.0 - k0a.1) * (k0b.0 - k0b.1);
            ra[0] = 0.5 * (c0 + cm) * scale;
            ia[0] = 0.5 * (c0 - cm) * scale;
        }
        for k in 1..=m / 2 {
            let k2 = m - k;
            let (zar, zai, za2r, za2i) = (ra[k], ia[k], ra[k2], ia[k2]);
            let (zbr, zbi, zb2r, zb2i) = (rb[k], ib[k], rb[k2], ib[k2]);
            let (wr, wi) = (t.hre[k], t.him[k]);
            // A: even/odd spectra and the twiddled odd term.
            let aer = 0.5 * (zar + za2r);
            let aei = 0.5 * (zai - za2i);
            let aor = 0.5 * (zai + za2i);
            let aoi = 0.5 * (za2r - zar);
            let tar = aor * wr - aoi * wi;
            let tai = aor * wi + aoi * wr;
            // B likewise.
            let ber = 0.5 * (zbr + zb2r);
            let bei = 0.5 * (zbi - zb2i);
            let bor = 0.5 * (zbi + zb2i);
            let boi = 0.5 * (zb2r - zbr);
            let tbr = bor * wr - boi * wi;
            let tbi = bor * wi + boi * wr;
            // P = (Ae+ta)(Be+tb), Q = (Ae−ta)(Be−tb).
            let (par, pai) = (aer + tar, aei + tai);
            let (pbr, pbi) = (ber + tbr, bei + tbi);
            let (pr, pi) = (par * pbr - pai * pbi, par * pbi + pai * pbr);
            let (qar, qai) = (aer - tar, aei - tai);
            let (qbr, qbi) = (ber - tbr, bei - tbi);
            let (qr, qi) = (qar * qbr - qai * qbi, qar * qbi + qai * qbr);
            let cer = 0.5 * (pr + qr) * scale;
            let cei = 0.5 * (pi + qi) * scale;
            let (dr, di) = (0.5 * (pr - qr) * scale, 0.5 * (pi - qi) * scale);
            // Co = conj(w^k)·D.
            let cor = dr * wr + di * wi;
            let coi = di * wr - dr * wi;
            ra[k] = cer - coi;
            ia[k] = cei + cor;
            ra[k2] = cer + coi;
            ia[k2] = cor - cei;
        }
        // Inverse transform via the swap identity: the unscaled inverse
        // DFT is the forward DFT with real and imaginary parts exchanged
        // on both input and output. Passing the slices swapped costs
        // nothing and keeps a single forward-only butterfly kernel.
        fft_core(&mut ia, &mut ra, t);
    });
    // Unpack the interleaved even/odd output samples.
    let mut c = vec![0.0f64; out_len];
    let mut pairs = c.chunks_exact_mut(2);
    for (j, p) in pairs.by_ref().enumerate() {
        p[0] = ra[j];
        p[1] = ia[j];
    }
    if let Some(last) = pairs.into_remainder().first_mut() {
        *last = ra[out_len / 2];
    }
    c
}

/// `2^-floor(log2(m))` for finite `m > 0`: the exact power-of-two factor
/// that brings `m` into `[1, 2)`. Powers of two multiply exactly in
/// binary floating point, so scaling by it loses no precision.
fn pow2_recip(m: f64) -> f64 {
    debug_assert!(m > 0.0 && m.is_finite());
    let e = m.log2().floor() as i32;
    // Clamp so 2^-e stays normal even for subnormal or huge inputs.
    2.0f64.powi(-e.clamp(-1000, 1000))
}

/// Iterative radix-2 Cooley–Tukey **forward** transform over split
/// real/imaginary slices (equal power-of-two lengths, matching the
/// tables' size). The inverse is obtained by calling this with the
/// slices swapped (`fft_core(im, re, t)`), which computes the unscaled
/// inverse DFT; the caller folds the 1/m into its own spectrum pass
/// (exactly, since m is a power of two).
fn fft_core(re: &mut [f64], im: &mut [f64], t: &Tables) {
    let n = re.len();
    debug_assert_eq!(n, im.len());
    debug_assert_eq!(n, t.perm.len());
    debug_assert!(n.is_power_of_two());
    if n <= 1 {
        return;
    }
    for (i, &j) in t.perm.iter().enumerate().skip(1) {
        let j = j as usize;
        if i < j {
            re.swap(i, j);
            im.swap(i, j);
        }
    }
    // Stage len = 2 has the lone twiddle w = 1: plain add/sub pairs.
    for (rc, ic) in re.chunks_exact_mut(2).zip(im.chunks_exact_mut(2)) {
        let (tr, ti) = (rc[1], ic[1]);
        rc[1] = rc[0] - tr;
        ic[1] = ic[0] - ti;
        rc[0] += tr;
        ic[0] += ti;
    }
    // Stage len = 4 has twiddles 1 and −i: multiplication-free
    // butterflies (−i·z is just a component swap with one negation).
    if n >= 4 {
        for (rc, ic) in re.chunks_exact_mut(4).zip(im.chunks_exact_mut(4)) {
            let (tr, ti) = (rc[2], ic[2]);
            rc[2] = rc[0] - tr;
            ic[2] = ic[0] - ti;
            rc[0] += tr;
            ic[0] += ti;
            let (tr, ti) = (ic[3], -rc[3]);
            rc[3] = rc[1] - tr;
            ic[3] = ic[1] - ti;
            rc[1] += tr;
            ic[1] += ti;
        }
    }
    let mut len = 8;
    while len <= n {
        let half = len / 2;
        let (twr, twi) = (&t.wre[half..len], &t.wim[half..len]);
        for (rc, ic) in re.chunks_exact_mut(len).zip(im.chunks_exact_mut(len)) {
            let (r0, r1) = rc.split_at_mut(half);
            let (i0, i1) = ic.split_at_mut(half);
            // Lockstep iterators (all six streams have length `half`)
            // so the butterfly compiles without bounds checks.
            let tw = twr.iter().zip(twi);
            let lo = r0.iter_mut().zip(i0.iter_mut());
            let hi = r1.iter_mut().zip(i1.iter_mut());
            for (((r0, i0), (r1, i1)), (&wr, &wi)) in lo.zip(hi).zip(tw) {
                let tr = *r1 * wr - *i1 * wi;
                let ti = *r1 * wi + *i1 * wr;
                *r1 = *r0 - tr;
                *i1 = *i0 - ti;
                *r0 += tr;
                *i0 += ti;
            }
        }
        len <<= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Direct O(n²) reference convolution.
    fn direct(a: &[f64], b: &[f64]) -> Vec<f64> {
        let mut c = vec![0.0; a.len() + b.len() - 1];
        for (i, &x) in a.iter().enumerate() {
            for (j, &y) in b.iter().enumerate() {
                c[i + j] += x * y;
            }
        }
        c
    }

    #[test]
    fn matches_direct_convolution() {
        let a: Vec<f64> = (0..37).map(|i| (i as f64 * 0.37).sin() + 1.5).collect();
        let b: Vec<f64> = (0..23).map(|i| (i as f64 * 0.11).cos() + 2.0).collect();
        let fast = convolve_series(&a, &b);
        let slow = direct(&a, &b);
        assert_eq!(fast.len(), slow.len());
        let peak = slow.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        for (x, y) in fast.iter().zip(&slow) {
            assert!((x - y).abs() < 1e-12 * peak, "{x} vs {y}");
        }
    }

    #[test]
    fn impulse_is_identity() {
        let a = [2.0, 3.0, 5.0, 7.0, 11.0];
        let c = convolve_series(&a, &[1.0]);
        assert_eq!(c.len(), a.len());
        for (x, y) in c.iter().zip(&a) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn single_cell_inputs() {
        let c = convolve_series(&[3.0], &[4.0]);
        assert_eq!(c.len(), 1);
        assert!((c[0] - 12.0).abs() < 1e-12);
    }

    #[test]
    fn empty_input_yields_empty() {
        assert!(convolve_series(&[], &[1.0]).is_empty());
        assert!(convolve_series(&[1.0], &[]).is_empty());
    }

    #[test]
    fn non_power_of_two_padding_round_trips() {
        // Output lengths that are not powers of two (here 5 + 3 − 1 = 7,
        // padded to 8) come back exact after the forward/inverse pair.
        let a = [1.0, 0.0, 2.0, 0.0, 3.0];
        let b = [1.0, 1.0, 1.0];
        let fast = convolve_series(&a, &b);
        let slow = direct(&a, &b);
        for (x, y) in fast.iter().zip(&slow) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn odd_lengths_exercise_every_packing_lane() {
        // Odd/even length mixes place the last sample in either the
        // even or the odd lane of the half-length packing; all four
        // combinations must agree with the direct sum.
        for (na, nb) in [(9usize, 6usize), (8, 7), (13, 13), (12, 10)] {
            let a: Vec<f64> = (0..na).map(|i| 1.0 + (i as f64 * 0.7).sin()).collect();
            let b: Vec<f64> = (0..nb).map(|i| 2.0 + (i as f64 * 0.3).cos()).collect();
            let fast = convolve_series(&a, &b);
            let slow = direct(&a, &b);
            let peak = slow.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
            for (x, y) in fast.iter().zip(&slow) {
                assert!((x - y).abs() < 1e-12 * peak, "({na},{nb}): {x} vs {y}");
            }
        }
    }

    #[test]
    fn conserves_total_sum() {
        // Σc = Σa · Σb exactly in real arithmetic; spectrally to 1e-12.
        let a: Vec<f64> = (0..100).map(|i| 1.0 + (i % 7) as f64).collect();
        let b: Vec<f64> = (0..60).map(|i| 0.5 + (i % 3) as f64).collect();
        let c = convolve_series(&a, &b);
        let sa: f64 = a.iter().sum();
        let sb: f64 = b.iter().sum();
        let sc: f64 = c.iter().sum();
        assert!((sc - sa * sb).abs() < 1e-9 * sa * sb);
    }

    #[test]
    fn deterministic_across_runs() {
        let a: Vec<f64> = (0..77).map(|i| (i as f64).sqrt()).collect();
        let b: Vec<f64> = (0..41).map(|i| (i as f64 * 0.3).exp() % 5.0).collect();
        let c1 = convolve_series(&a, &b);
        let c2 = convolve_series(&a, &b);
        for (x, y) in c1.iter().zip(&c2) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}
