//! Uniform sample grids.
//!
//! All densities in this crate live on a [`Grid`]: `n` equal-width cells
//! covering `[lo, lo + n·step]`. Cell `i` is the interval
//! `[lo + i·step, lo + (i+1)·step)` and is represented by its center.
//! This mirrors the paper's fixed `QUALITY`-point discretizations.

use crate::{Result, StatsError};

/// A uniform grid of `n` cells of width `step`, starting at `lo`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Grid {
    lo: f64,
    step: f64,
    n: usize,
}

impl Grid {
    /// Creates a grid of `n` cells of width `step` starting at `lo`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyGrid`] if `n == 0` or `step <= 0`, and
    /// [`StatsError::NonFinite`] if `lo` or `step` is not finite.
    ///
    /// # Examples
    ///
    /// ```
    /// use statim_stats::Grid;
    /// let g = Grid::new(0.0, 0.5, 4).unwrap();
    /// assert_eq!(g.hi(), 2.0);
    /// assert_eq!(g.center(0), 0.25);
    /// ```
    pub fn new(lo: f64, step: f64, n: usize) -> Result<Self> {
        if !lo.is_finite() || !step.is_finite() {
            return Err(StatsError::NonFinite {
                what: "grid bounds",
            });
        }
        if n == 0 || step <= 0.0 {
            return Err(StatsError::EmptyGrid { cells: n, step });
        }
        Ok(Grid { lo, step, n })
    }

    /// Creates the grid spanning `[lo, hi]` with exactly `n` cells.
    ///
    /// # Errors
    ///
    /// Returns an error if the interval is empty, reversed or non-finite,
    /// or if `n == 0`.
    ///
    /// # Examples
    ///
    /// ```
    /// use statim_stats::Grid;
    /// let g = Grid::over(0.0, 10.0, 100).unwrap();
    /// assert_eq!(g.len(), 100);
    /// assert!((g.step() - 0.1).abs() < 1e-12);
    /// ```
    pub fn over(lo: f64, hi: f64, n: usize) -> Result<Self> {
        if !lo.is_finite() || !hi.is_finite() {
            return Err(StatsError::NonFinite {
                what: "grid bounds",
            });
        }
        if n == 0 || hi <= lo {
            return Err(StatsError::EmptyGrid {
                cells: n,
                step: (hi - lo) / n.max(1) as f64,
            });
        }
        Grid::new(lo, (hi - lo) / n as f64, n)
    }

    /// Lower bound of the grid.
    #[inline]
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound of the grid (`lo + n·step`).
    #[inline]
    pub fn hi(&self) -> f64 {
        self.lo + self.step * self.n as f64
    }

    /// Cell width.
    #[inline]
    pub fn step(&self) -> f64 {
        self.step
    }

    /// Number of cells.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` if the grid has no cells. Construction forbids this,
    /// so the method always returns `false`; it exists for API completeness.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Center of cell `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn center(&self, i: usize) -> f64 {
        assert!(i < self.n, "cell index {i} out of range ({} cells)", self.n);
        self.lo + (i as f64 + 0.5) * self.step
    }

    /// Left edge of cell `i` (allows `i == len()`, the right edge of the
    /// final cell).
    #[inline]
    pub fn edge(&self, i: usize) -> f64 {
        assert!(
            i <= self.n,
            "edge index {i} out of range ({} cells)",
            self.n
        );
        self.lo + i as f64 * self.step
    }

    /// Index of the cell containing `x`, or `None` if `x` lies outside the
    /// grid. The right boundary is assigned to the final cell.
    ///
    /// # Examples
    ///
    /// ```
    /// use statim_stats::Grid;
    /// let g = Grid::new(0.0, 1.0, 4).unwrap();
    /// assert_eq!(g.cell_of(2.5), Some(2));
    /// assert_eq!(g.cell_of(4.0), Some(3));
    /// assert_eq!(g.cell_of(-0.1), None);
    /// ```
    pub fn cell_of(&self, x: f64) -> Option<usize> {
        if !x.is_finite() || x < self.lo || x > self.hi() {
            return None;
        }
        let i = ((x - self.lo) / self.step) as usize;
        Some(i.min(self.n - 1))
    }

    /// Index of the cell containing `x`, clamping out-of-range values to
    /// the first or last cell. `x` must be finite.
    pub fn clamp_cell_of(&self, x: f64) -> usize {
        debug_assert!(x.is_finite());
        if x <= self.lo {
            0
        } else if x >= self.hi() {
            self.n - 1
        } else {
            (((x - self.lo) / self.step) as usize).min(self.n - 1)
        }
    }

    /// Iterator over cell centers.
    pub fn centers(&self) -> impl Iterator<Item = f64> + '_ {
        (0..self.n).map(move |i| self.center(i))
    }

    /// Returns the smallest grid with the same step that covers both
    /// `self` and `other`. The result is aligned to `self`'s cell edges.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::StepMismatch`] if the steps differ by more
    /// than one part in 10⁹.
    pub fn union(&self, other: &Grid) -> Result<Grid> {
        if !steps_compatible(self.step, other.step) {
            return Err(StatsError::StepMismatch {
                left: self.step,
                right: other.step,
            });
        }
        let lo = self.lo.min(other.lo);
        let hi = self.hi().max(other.hi());
        // Align to self's edges.
        let k = ((self.lo - lo) / self.step).round();
        let lo = self.lo - k * self.step;
        let n = ((hi - lo) / self.step).ceil() as usize;
        Grid::new(lo, self.step, n.max(1))
    }
}

/// Returns `true` if two grid steps are equal to within one part in 10⁹.
pub fn steps_compatible(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * a.abs().max(b.abs())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_degenerate() {
        assert!(Grid::new(0.0, 0.0, 4).is_err());
        assert!(Grid::new(0.0, -1.0, 4).is_err());
        assert!(Grid::new(0.0, 1.0, 0).is_err());
        assert!(Grid::new(f64::NAN, 1.0, 4).is_err());
        assert!(Grid::new(0.0, f64::INFINITY, 4).is_err());
    }

    #[test]
    fn over_spans_interval() {
        let g = Grid::over(-2.0, 3.0, 10).unwrap();
        assert_eq!(g.lo(), -2.0);
        assert!((g.hi() - 3.0).abs() < 1e-12);
        assert_eq!(g.len(), 10);
    }

    #[test]
    fn over_rejects_reversed() {
        assert!(Grid::over(1.0, 1.0, 10).is_err());
        assert!(Grid::over(2.0, 1.0, 10).is_err());
    }

    #[test]
    fn centers_and_edges() {
        let g = Grid::new(1.0, 0.5, 3).unwrap();
        assert_eq!(g.center(0), 1.25);
        assert_eq!(g.center(2), 2.25);
        assert_eq!(g.edge(0), 1.0);
        assert_eq!(g.edge(3), 2.5);
        let cs: Vec<f64> = g.centers().collect();
        assert_eq!(cs, vec![1.25, 1.75, 2.25]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn center_out_of_range_panics() {
        let g = Grid::new(0.0, 1.0, 2).unwrap();
        let _ = g.center(2);
    }

    #[test]
    fn cell_of_boundaries() {
        let g = Grid::new(0.0, 1.0, 4).unwrap();
        assert_eq!(g.cell_of(0.0), Some(0));
        assert_eq!(g.cell_of(0.999), Some(0));
        assert_eq!(g.cell_of(1.0), Some(1));
        assert_eq!(g.cell_of(4.0), Some(3));
        assert_eq!(g.cell_of(4.0001), None);
        assert_eq!(g.cell_of(f64::NAN), None);
    }

    #[test]
    fn clamp_cell_of_clamps() {
        let g = Grid::new(0.0, 1.0, 4).unwrap();
        assert_eq!(g.clamp_cell_of(-5.0), 0);
        assert_eq!(g.clamp_cell_of(9.0), 3);
        assert_eq!(g.clamp_cell_of(2.5), 2);
    }

    #[test]
    fn union_covers_both() {
        let a = Grid::new(0.0, 0.5, 4).unwrap(); // [0,2]
        let b = Grid::new(1.5, 0.5, 4).unwrap(); // [1.5,3.5]
        let u = a.union(&b).unwrap();
        assert!(u.lo() <= 0.0 && u.hi() >= 3.5);
        assert_eq!(u.step(), 0.5);
    }

    #[test]
    fn union_rejects_step_mismatch() {
        let a = Grid::new(0.0, 0.5, 4).unwrap();
        let b = Grid::new(0.0, 0.25, 4).unwrap();
        assert!(a.union(&b).is_err());
    }
}
