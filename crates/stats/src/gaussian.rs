//! Normal-distribution utilities.
//!
//! The paper models every process/environment parameter as a Gaussian
//! truncated at its ±6σ points. This module provides the error function,
//! the standard normal PDF/CDF/quantile, and constructors for (truncated)
//! Gaussian [`Pdf`]s on uniform grids.

use crate::grid::Grid;
use crate::pdf::Pdf;
use crate::{Result, StatsError};

/// 1/√(2π).
pub const FRAC_1_SQRT_2PI: f64 = 0.398_942_280_401_432_7;

/// Error function `erf(x)`, accurate to near machine precision: Maclaurin
/// series for `|x| < 3`, complementary continued fraction beyond.
pub fn erf(x: f64) -> f64 {
    if x < 0.0 {
        return -erf(-x);
    }
    if x == 0.0 {
        return 0.0;
    }
    if x < 3.0 {
        erf_series(x)
    } else {
        1.0 - erfc_cf(x)
    }
}

/// Complementary error function `1 − erf(x)`, accurate in both tails.
pub fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        return 2.0 - erfc(-x);
    }
    if x < 3.0 {
        1.0 - erf_series(x)
    } else {
        erfc_cf(x)
    }
}

/// Maclaurin series `erf(x) = 2/√π · Σ (−1)ⁿ x^{2n+1} / (n!(2n+1))`,
/// adequate for `0 ≤ x < 3` in double precision.
fn erf_series(x: f64) -> f64 {
    use std::f64::consts::FRAC_2_SQRT_PI;
    let x2 = x * x;
    let mut term = x;
    let mut sum = x;
    let mut n = 1u32;
    loop {
        term *= -x2 / n as f64;
        let add = term / (2 * n + 1) as f64;
        sum += add;
        if add.abs() < 1e-18 * sum.abs().max(1e-300) || n > 200 {
            break;
        }
        n += 1;
    }
    FRAC_2_SQRT_PI * sum
}

/// Continued fraction `√π·e^{x²}·erfc(x) = 1/(x + (1/2)/(x + 1/(x + (3/2)/(x + …))))`
/// evaluated backward (stable) with 60 levels; for `x ≥ 3` this is accurate
/// to machine precision.
fn erfc_cf(x: f64) -> f64 {
    const SQRT_PI: f64 = 1.772_453_850_905_516;
    let mut tail = 0.0;
    for n in (1..=60).rev() {
        tail = (n as f64 / 2.0) / (x + tail);
    }
    (-x * x).exp() / SQRT_PI / (x + tail)
}

/// Standard normal density φ(z).
pub fn phi(z: f64) -> f64 {
    FRAC_1_SQRT_2PI * (-0.5 * z * z).exp()
}

/// Standard normal CDF Φ(z).
pub fn big_phi(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

/// Inverse standard normal CDF (Acklam's algorithm, relative error
/// < 1.15·10⁻⁹), refined with one Halley step.
///
/// # Errors
///
/// Returns [`StatsError::InvalidProbability`] unless `0 < p < 1`.
pub fn inv_phi(p: f64) -> Result<f64> {
    if !(p > 0.0 && p < 1.0) {
        return Err(StatsError::InvalidProbability { value: p });
    }
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;
    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };
    // One Halley refinement against the accurate CDF.
    let e = big_phi(x) - p;
    let u = e / phi(x).max(f64::MIN_POSITIVE);
    Ok(x - u / (1.0 + x * u / 2.0))
}

/// A Gaussian random variable `N(mean, sigma²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gaussian {
    /// Mean μ.
    pub mean: f64,
    /// Standard deviation σ (> 0).
    pub sigma: f64,
}

impl Gaussian {
    /// Creates a Gaussian.
    ///
    /// # Errors
    ///
    /// Returns an error if `sigma <= 0` or either parameter is non-finite.
    pub fn new(mean: f64, sigma: f64) -> Result<Self> {
        if !mean.is_finite() || !sigma.is_finite() {
            return Err(StatsError::NonFinite {
                what: "gaussian parameters",
            });
        }
        if sigma <= 0.0 {
            return Err(StatsError::NonPositiveScale { value: sigma });
        }
        Ok(Gaussian { mean, sigma })
    }

    /// Density at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        phi((x - self.mean) / self.sigma) / self.sigma
    }

    /// CDF at `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        big_phi((x - self.mean) / self.sigma)
    }

    /// Quantile at probability `p`.
    ///
    /// # Errors
    ///
    /// Propagates [`StatsError::InvalidProbability`] from [`inv_phi`].
    pub fn quantile(&self, p: f64) -> Result<f64> {
        Ok(self.mean + self.sigma * inv_phi(p)?)
    }
}

/// Discretizes `N(mean, sigma²)` truncated at `mean ± trunc_k·sigma` onto a
/// grid of `quality` cells, normalized. The paper uses `trunc_k = 6`.
///
/// Cell densities use exact CDF differences so the grid mass is correct to
/// machine precision regardless of `quality`.
///
/// # Panics
///
/// Panics if `sigma <= 0`, `trunc_k <= 0` or `quality == 0` — these are
/// programmer errors in experiment configuration. Use
/// [`try_gaussian_pdf`] for fallible construction.
pub fn gaussian_pdf(mean: f64, sigma: f64, trunc_k: f64, quality: usize) -> Pdf {
    try_gaussian_pdf(mean, sigma, trunc_k, quality)
        .expect("invalid Gaussian discretization parameters")
}

/// Fallible version of [`gaussian_pdf`].
///
/// # Errors
///
/// Returns an error if `sigma <= 0`, `trunc_k <= 0` or `quality == 0`.
pub fn try_gaussian_pdf(mean: f64, sigma: f64, trunc_k: f64, quality: usize) -> Result<Pdf> {
    let g = Gaussian::new(mean, sigma)?;
    if trunc_k <= 0.0 || !trunc_k.is_finite() {
        return Err(StatsError::NonPositiveScale { value: trunc_k });
    }
    let grid = Grid::over(mean - trunc_k * sigma, mean + trunc_k * sigma, quality)?;
    let mut density = Vec::with_capacity(quality);
    let step = grid.step();
    for i in 0..quality {
        let m = g.cdf(grid.edge(i + 1)) - g.cdf(grid.edge(i));
        density.push((m / step).max(0.0));
    }
    Pdf::new(grid, density)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_reference_values() {
        // Reference values from tables.
        assert!((erf(0.0)).abs() < 1e-12);
        assert!((erf(1.0) - 0.842_700_79).abs() < 2e-7);
        assert!((erf(2.0) - 0.995_322_27).abs() < 2e-7);
        assert!((erf(-1.0) + erf(1.0)).abs() < 1e-12);
        assert!((erf(6.0) - 1.0).abs() < 1e-9);
        assert!((erfc(1.0) - 0.157_299_21).abs() < 2e-7);
    }

    #[test]
    fn big_phi_symmetry_and_values() {
        assert!((big_phi(0.0) - 0.5).abs() < 1e-12);
        assert!((big_phi(1.0) - 0.841_344_75).abs() < 2e-7);
        assert!((big_phi(-1.96) - 0.024_997_9).abs() < 2e-6);
        assert!((big_phi(3.0) - 0.998_650_1).abs() < 2e-6);
    }

    #[test]
    fn inv_phi_round_trips() {
        for &p in &[0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999] {
            let z = inv_phi(p).unwrap();
            assert!((big_phi(z) - p).abs() < 1e-9, "p={p}");
        }
        assert!(inv_phi(0.0).is_err());
        assert!(inv_phi(1.0).is_err());
        assert!(inv_phi(-0.5).is_err());
    }

    #[test]
    fn gaussian_struct_rejects_bad() {
        assert!(Gaussian::new(0.0, 0.0).is_err());
        assert!(Gaussian::new(0.0, -1.0).is_err());
        assert!(Gaussian::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn gaussian_pdf_moments() {
        let p = gaussian_pdf(100.0, 7.0, 6.0, 400);
        assert!((p.mass() - 1.0).abs() < 1e-9);
        assert!((p.mean() - 100.0).abs() < 1e-6);
        assert!((p.std_dev() - 7.0).abs() < 0.01);
    }

    #[test]
    fn gaussian_pdf_paper_quality() {
        // At the paper's QUALITYintra = 100 the 3σ point is still accurate.
        let p = gaussian_pdf(0.0, 1.0, 6.0, 100);
        assert!((p.sigma_point(3.0) - 3.0).abs() < 0.02);
        assert!((p.cdf(0.0) - 0.5).abs() < 0.01);
    }

    #[test]
    fn truncation_limits_support() {
        let p = gaussian_pdf(0.0, 1.0, 3.0, 100);
        assert_eq!(p.grid().lo(), -3.0);
        assert_eq!(p.grid().hi(), 3.0);
        // Truncation at 3σ shrinks the variance below 1.
        assert!(p.variance() < 1.0);
        assert!(p.variance() > 0.9);
    }

    #[test]
    fn try_gaussian_pdf_rejects_bad() {
        assert!(try_gaussian_pdf(0.0, -1.0, 6.0, 10).is_err());
        assert!(try_gaussian_pdf(0.0, 1.0, 0.0, 10).is_err());
        assert!(try_gaussian_pdf(0.0, 1.0, 6.0, 0).is_err());
    }

    #[test]
    fn gaussian_quantile_matches_cdf() {
        let g = Gaussian::new(5.0, 2.0).unwrap();
        let x = g.quantile(0.9).unwrap();
        assert!((g.cdf(x) - 0.9).abs() < 1e-9);
    }
}
