//! Discretized probability-density engine for statistical timing analysis.
//!
//! The DATE'05 methodology of Mangassarian & Anis computes every delay
//! distribution *numerically*: probability density functions (PDFs) are
//! sampled on uniform grids (`QUALITYintra` = 100 and `QUALITYinter` = 50
//! points in the paper), summed by grid convolution in `O(QUALITY²)`, and
//! compared through confidence points such as the 3σ point.
//!
//! This crate provides that machinery, independent of any timing semantics:
//!
//! * [`Grid`] — a uniform sample grid over a closed interval;
//! * [`Pdf`] — a piecewise-constant density on a [`Grid`], with moments,
//!   CDF, quantiles and sigma points;
//! * [`gaussian`] — error-function, normal and truncated-normal utilities
//!   (the paper truncates every input PDF at ±6σ);
//! * [`marginal`] — input distribution families (Gaussian, uniform,
//!   triangular) with matched mean and σ;
//! * [`convolve`] — the density of a **sum** of independent variables,
//!   with a selectable backend ([`ConvolveBackend`]): direct grid
//!   accumulation or the spectral kernel;
//! * [`fft`] — the in-crate radix-2 FFT powering
//!   [`ConvolveBackend::Fft`];
//! * [`combine`] — the density of an arbitrary function of one, two or
//!   three independent variables by exhaustive grid enumeration (used for
//!   the non-linear inter-die delay), plus the independent-**max** kernel;
//! * [`sample`] — inverse-CDF sampling for Monte-Carlo validation;
//! * [`tabulate`] — plain-text rendering of distributions for reports.
//!
//! # Example
//!
//! Convolving two Gaussians adds their means and variances:
//!
//! ```
//! use statim_stats::{gaussian::gaussian_pdf, convolve::sum_pdf_resampled};
//!
//! let a = gaussian_pdf(10.0, 2.0, 6.0, 100);
//! let b = gaussian_pdf(20.0, 1.5, 6.0, 100);
//! let s = sum_pdf_resampled(&a, &b, 200).unwrap();
//! assert!((s.mean() - 30.0).abs() < 0.05);
//! assert!((s.variance() - (4.0 + 2.25)).abs() < 0.05);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod combine;
pub mod convolve;
pub mod error;
pub mod fft;
pub mod gaussian;
pub mod grid;
pub mod marginal;
pub mod pdf;
pub mod sample;
pub mod tabulate;

pub use convolve::ConvolveBackend;
pub use error::StatsError;
pub use grid::Grid;
pub use marginal::Marginal;
pub use pdf::Pdf;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, StatsError>;
