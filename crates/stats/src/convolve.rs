//! Density of the sum of independent random variables.
//!
//! The paper evaluates the total path delay as the **convolution** of the
//! intra-die and inter-die delay PDFs, at a cost of `O(QUALITY²)` for
//! QUALITY-point discretizations (their §3.2). This module implements that
//! kernel for piecewise-constant densities on uniform grids, with a
//! selectable [`ConvolveBackend`]: the direct grid accumulation (the
//! bit-identical reference) or the `O(Q log Q)` spectral kernel of
//! [`fft`](crate::fft), which lands on the same output grid and is
//! validated against the grid backend to tolerance.

use crate::grid::{steps_compatible, Grid};
use crate::pdf::Pdf;
use crate::{Result, StatsError};

/// Which numerical kernel computes a convolution.
///
/// Both backends share the same contract — identical output grid,
/// identical normalization — and differ only in arithmetic route:
/// `Grid` accumulates cell products directly and is the bitwise-stable
/// reference; `Fft` multiplies spectra in `O(n log n)` and agrees with
/// `Grid` up to floating-point round-off (it is deterministic
/// run-to-run, but not bit-identical to `Grid`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ConvolveBackend {
    /// Direct `O(nₐ·n_b)` grid accumulation (the default).
    #[default]
    Grid,
    /// Radix-2 real-FFT spectral convolution, `O(n log n)`.
    Fft,
}

impl ConvolveBackend {
    /// Stable numeric tag, folded into kernel-cache fingerprints so
    /// grid- and FFT-computed kernels can never collide in a shared
    /// store.
    pub fn tag(self) -> u64 {
        match self {
            ConvolveBackend::Grid => 0,
            ConvolveBackend::Fft => 1,
        }
    }

    /// The lowercase name used by CLI flags and protocol options.
    pub fn name(self) -> &'static str {
        match self {
            ConvolveBackend::Grid => "grid",
            ConvolveBackend::Fft => "fft",
        }
    }
}

impl std::fmt::Display for ConvolveBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for ConvolveBackend {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, String> {
        match s {
            "grid" => Ok(ConvolveBackend::Grid),
            "fft" => Ok(ConvolveBackend::Fft),
            other => Err(format!("unknown backend `{other}` (grid or fft)")),
        }
    }
}

/// Density of `X + Y` for independent `X ~ a`, `Y ~ b`.
///
/// Both inputs must share the same grid step (re-sample one of them with
/// [`Pdf::resample`] if they do not). The result lives on the grid whose
/// span is the Minkowski sum of the input spans, with `nₐ + n_b − 1` cells,
/// and is normalized.
///
/// Complexity is `O(nₐ · n_b)`, the paper's `O(QUALITY²)`. Equivalent to
/// [`sum_pdf_with`] on [`ConvolveBackend::Grid`].
///
/// # Errors
///
/// Returns [`StatsError::StepMismatch`] when the grid steps differ.
///
/// # Examples
///
/// ```
/// use statim_stats::{Grid, Pdf, convolve::sum_pdf};
/// let g = Grid::over(0.0, 1.0, 50).unwrap();
/// let u = Pdf::new(g, vec![1.0; 50]).unwrap();
/// let tri = sum_pdf(&u, &u).unwrap(); // triangle on [0, 2]
/// assert!((tri.mean() - 1.0).abs() < 1e-9);
/// assert!((tri.mode() - 1.0).abs() < 0.03);
/// ```
pub fn sum_pdf(a: &Pdf, b: &Pdf) -> Result<Pdf> {
    sum_pdf_with(ConvolveBackend::Grid, a, b)
}

/// [`sum_pdf`] with an explicit [`ConvolveBackend`].
///
/// Both backends produce a density on the *same* output grid
/// (`lo = loₐ + lo_b + step/2`, `nₐ + n_b − 1` cells) and normalize it;
/// midpoint assignment keeps mean and variance exact either way. The
/// FFT route clamps the (round-off-level) negative excursions spectral
/// evaluation can produce back to zero before normalizing.
///
/// # Errors
///
/// Returns [`StatsError::StepMismatch`] when the grid steps differ —
/// for every backend, checked before any kernel work.
pub fn sum_pdf_with(backend: ConvolveBackend, a: &Pdf, b: &Pdf) -> Result<Pdf> {
    let (ga, gb) = (a.grid(), b.grid());
    if !steps_compatible(ga.step(), gb.step()) {
        return Err(StatsError::StepMismatch {
            left: ga.step(),
            right: gb.step(),
        });
    }
    let step = ga.step();
    let n = ga.len() + gb.len() - 1;
    // Mass of cell pair (i, j) lands at the sum of the two cell centers,
    // lo_a + lo_b + (i + j + 1)·step — which must be the *center* of output
    // cell i + j, hence the half-step offset of the output grid. Midpoint
    // assignment keeps mean and variance exact, matching what a
    // QUALITY-point numerical convolution does.
    let grid = Grid::new(ga.lo() + gb.lo() + 0.5 * step, step, n)?;
    let da = a.density();
    let db = b.density();
    let density = match backend {
        ConvolveBackend::Grid => {
            let mut density = vec![0.0f64; n];
            for (i, &x) in da.iter().enumerate() {
                if x == 0.0 {
                    continue;
                }
                let xm = x * step;
                for (j, &y) in db.iter().enumerate() {
                    density[i + j] += xm * y;
                }
            }
            density
        }
        ConvolveBackend::Fft => {
            let scaled: Vec<f64> = da.iter().map(|&x| x * step).collect();
            let mut density = crate::fft::convolve_series(&scaled, db);
            // Spectral round-off can push exact zeros a few ulps below
            // zero; a density must be non-negative.
            for d in &mut density {
                if *d < 0.0 {
                    *d = 0.0;
                }
            }
            density
        }
    };
    Pdf::new(grid, density)
}

/// Density of `X₁ + X₂ + …` for independent summands.
///
/// Operands are folded smallest-first (stable by input order among equal
/// sizes): the accumulator grows by `nᵢ − 1` cells per convolution no
/// matter the order, but step `i` costs `|acc|·nᵢ`, which ascending
/// sizes minimize. Summation is commutative and associative, so the
/// result is the same distribution regardless of order.
///
/// # Errors
///
/// Returns [`StatsError::ZeroMass`] for an empty slice and propagates step
/// mismatches from [`sum_pdf`].
pub fn sum_pdf_many(pdfs: &[Pdf]) -> Result<Pdf> {
    sum_pdf_many_with(ConvolveBackend::Grid, pdfs)
}

/// [`sum_pdf_many`] with an explicit [`ConvolveBackend`].
///
/// # Errors
///
/// As [`sum_pdf_many`].
pub fn sum_pdf_many_with(backend: ConvolveBackend, pdfs: &[Pdf]) -> Result<Pdf> {
    if pdfs.is_empty() {
        return Err(StatsError::ZeroMass);
    }
    let mut order: Vec<&Pdf> = pdfs.iter().collect();
    order.sort_by_key(|p| p.len());
    let mut it = order.into_iter();
    let first = it.next().expect("slice is non-empty");
    let mut acc = match it.next() {
        // A single summand is already its own sum.
        None => return Ok(first.clone()),
        Some(second) => sum_pdf_with(backend, first, second)?,
    };
    for p in it {
        acc = sum_pdf_with(backend, &acc, p)?;
    }
    Ok(acc)
}

/// Convolves two PDFs with arbitrary (unequal) grids, then trims the
/// result back to `quality` cells. This is the convenience entry the
/// engine uses when intra and inter PDFs were built with different
/// QUALITY settings (the paper uses 100 and 50).
///
/// The coarser PDF is normally resampled onto the finer step (best
/// resolution); but when the steps are so disparate that this would
/// explode the cell count — e.g. a delta-like intra PDF against a wide
/// inter PDF — the roles flip, since a near-degenerate operand carries
/// no resolution worth preserving.
///
/// # Errors
///
/// Propagates grid-construction failures.
pub fn sum_pdf_resampled(a: &Pdf, b: &Pdf, quality: usize) -> Result<Pdf> {
    sum_pdf_resampled_with(ConvolveBackend::Grid, a, b, quality)
}

/// [`sum_pdf_resampled`] with an explicit [`ConvolveBackend`]. The
/// resampling policy (which operand moves onto which step, and the final
/// trim to `quality` cells) is backend-independent; only the inner
/// convolution kernel changes.
///
/// # Errors
///
/// Propagates grid-construction failures.
pub fn sum_pdf_resampled_with(
    backend: ConvolveBackend,
    a: &Pdf,
    b: &Pdf,
    quality: usize,
) -> Result<Pdf> {
    let (fine, coarse) = if a.grid().step() <= b.grid().step() {
        (a, b)
    } else {
        (b, a)
    };
    let coarse_span = coarse.grid().hi() - coarse.grid().lo();
    let cells_on_fine = coarse_span / fine.grid().step();
    let (base, other) = if cells_on_fine <= (quality.max(64) * 64) as f64 {
        (fine, coarse)
    } else {
        (coarse, fine)
    };
    let span = other.grid().hi() - other.grid().lo();
    let cells = ((span / base.grid().step()).ceil() as usize).max(1);
    let go = Grid::new(other.grid().lo(), base.grid().step(), cells)?;
    let o2 = other.resample(go);
    let full = sum_pdf_with(backend, base, &o2)?;
    full.with_quality(quality)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gaussian::gaussian_pdf;

    #[test]
    fn gaussian_sum_adds_moments() {
        // σ·QUALITY matched: span 12σ over 200·σ cells gives both grids
        // the step 0.06, so they convolve directly — no resampling. On
        // matched steps the half-step output alignment makes the result
        // exactly the distribution of the sum of the two discrete cell
        // RVs, so both moments are additive to round-off.
        let a = gaussian_pdf(3.0, 1.0, 6.0, 200);
        let b = gaussian_pdf(5.0, 2.0, 6.0, 400);
        assert_eq!(a.grid().step().to_bits(), b.grid().step().to_bits());
        let s = sum_pdf(&a, &b).unwrap();
        assert!((s.mean() - (a.mean() + b.mean())).abs() < 1e-9);
        assert!((s.variance() - (a.variance() + b.variance())).abs() < 1e-9);
    }

    #[test]
    fn sum_is_commutative() {
        let g = Grid::over(0.0, 1.0, 30).unwrap();
        let a = Pdf::new(g, (0..30).map(|i| 1.0 + i as f64).collect()).unwrap();
        let b = Pdf::new(g, (0..30).map(|i| 30.0 - i as f64).collect()).unwrap();
        let ab = sum_pdf(&a, &b).unwrap();
        let ba = sum_pdf(&b, &a).unwrap();
        assert!((ab.mean() - ba.mean()).abs() < 1e-12);
        assert!((ab.variance() - ba.variance()).abs() < 1e-12);
    }

    #[test]
    fn step_mismatch_rejected() {
        let a = Pdf::new(Grid::new(0.0, 0.1, 10).unwrap(), vec![1.0; 10]).unwrap();
        let b = Pdf::new(Grid::new(0.0, 0.2, 10).unwrap(), vec![1.0; 10]).unwrap();
        assert!(matches!(
            sum_pdf(&a, &b),
            Err(StatsError::StepMismatch { .. })
        ));
    }

    #[test]
    fn step_mismatch_rejected_by_every_backend() {
        // The compatibility gate runs before any kernel work, so both
        // backends fail the same way with the same typed error.
        let a = Pdf::new(Grid::new(0.0, 0.1, 10).unwrap(), vec![1.0; 10]).unwrap();
        let b = Pdf::new(Grid::new(0.0, 0.2, 10).unwrap(), vec![1.0; 10]).unwrap();
        for backend in [ConvolveBackend::Grid, ConvolveBackend::Fft] {
            match sum_pdf_with(backend, &a, &b) {
                Err(StatsError::StepMismatch { left, right }) => {
                    assert_eq!(left, 0.1);
                    assert_eq!(right, 0.2);
                }
                other => panic!("{backend}: expected StepMismatch, got {other:?}"),
            }
        }
    }

    #[test]
    fn fft_backend_matches_grid_backend() {
        let a = gaussian_pdf(0.0, 10.0, 6.0, 173); // non-power-of-two sizes
        let b = gaussian_pdf(250.0, 25.0, 6.0, 100).resample(*a.grid());
        let g = sum_pdf_with(ConvolveBackend::Grid, &a, &b).unwrap();
        let f = sum_pdf_with(ConvolveBackend::Fft, &a, &b).unwrap();
        assert_eq!(g.grid(), f.grid());
        let peak = g.density().iter().fold(0.0f64, |m, &v| m.max(v));
        for (x, y) in g.density().iter().zip(f.density()) {
            assert!((x - y).abs() < 1e-12 * peak, "{x} vs {y}");
        }
        assert!((g.mean() - f.mean()).abs() < 1e-9 * g.mean().abs().max(1.0));
        assert!((g.variance() - f.variance()).abs() < 1e-9 * g.variance());
    }

    #[test]
    fn fft_resampled_matches_grid_resampled() {
        let intra = gaussian_pdf(0.0, 10.0, 6.0, 100);
        let inter = gaussian_pdf(250.0, 25.0, 6.0, 50);
        let g = sum_pdf_resampled_with(ConvolveBackend::Grid, &intra, &inter, 200).unwrap();
        let f = sum_pdf_resampled_with(ConvolveBackend::Fft, &intra, &inter, 200).unwrap();
        assert_eq!(g.grid(), f.grid());
        assert!((g.mean() - f.mean()).abs() < 1e-9 * g.mean());
        assert!((g.std_dev() - f.std_dev()).abs() < 1e-9 * g.std_dev());
    }

    #[test]
    fn many_sums_match_pairwise() {
        let g = Grid::over(0.0, 1.0, 20).unwrap();
        let u = Pdf::new(g, vec![1.0; 20]).unwrap();
        let s3 = sum_pdf_many(&[u.clone(), u.clone(), u.clone()]).unwrap();
        assert!((s3.mean() - 1.5).abs() < 1e-9);
        // Var(U) = 1/12 each.
        assert!((s3.variance() - 3.0 / 12.0).abs() < 1e-3);
        assert!(sum_pdf_many(&[]).is_err());
    }

    #[test]
    fn sixteen_way_sum_matches_pairwise_fold() {
        // Mixed sizes, so the size-ascending accumulation really
        // reorders relative to the naive input-order fold — the moments
        // must agree to round-off regardless.
        let step = 0.05;
        let pdfs: Vec<Pdf> = (0..16)
            .map(|i| {
                let n = 8 + 3 * (i % 5);
                let g = Grid::new(-0.1 * i as f64, step, n).unwrap();
                let d = (0..n).map(|j| 1.0 + ((i + j) % 4) as f64).collect();
                Pdf::new(g, d).unwrap()
            })
            .collect();
        let many = sum_pdf_many(&pdfs).unwrap();
        let mut fold = pdfs[0].clone();
        for p in &pdfs[1..] {
            fold = sum_pdf(&fold, p).unwrap();
        }
        let rel = |a: f64, b: f64| (a - b).abs() / b.abs().max(1e-300);
        assert!(rel(many.mean(), fold.mean()) < 1e-12);
        assert!(rel(many.variance(), fold.variance()) < 1e-12);
        assert_eq!(many.len(), fold.len());
    }

    #[test]
    fn single_summand_is_returned_unchanged() {
        let g = Grid::over(0.0, 1.0, 12).unwrap();
        let u = Pdf::new(g, vec![1.0; 12]).unwrap();
        let s = sum_pdf_many(std::slice::from_ref(&u)).unwrap();
        assert_eq!(s, u);
    }

    #[test]
    fn resampled_convolution_handles_mixed_quality() {
        // Paper setting: intra at QUALITY 100, inter at QUALITY 50.
        let intra = gaussian_pdf(0.0, 10.0, 6.0, 100);
        let inter = gaussian_pdf(250.0, 25.0, 6.0, 50);
        let total = sum_pdf_resampled(&intra, &inter, 200).unwrap();
        assert!((total.mean() - 250.0).abs() < 0.5);
        let sigma = (10.0f64 * 10.0 + 25.0 * 25.0).sqrt();
        assert!((total.std_dev() - sigma).abs() < 0.5);
        assert_eq!(total.len(), 200);
    }

    #[test]
    fn backend_parsing_round_trips() {
        assert_eq!("grid".parse::<ConvolveBackend>(), Ok(ConvolveBackend::Grid));
        assert_eq!("fft".parse::<ConvolveBackend>(), Ok(ConvolveBackend::Fft));
        assert_eq!(ConvolveBackend::Grid.to_string(), "grid");
        assert_eq!(ConvolveBackend::Fft.to_string(), "fft");
        assert_ne!(ConvolveBackend::Grid.tag(), ConvolveBackend::Fft.tag());
        assert!("spectral".parse::<ConvolveBackend>().is_err());
        assert_eq!(ConvolveBackend::default(), ConvolveBackend::Grid);
    }
}
