//! Density of the sum of independent random variables.
//!
//! The paper evaluates the total path delay as the **convolution** of the
//! intra-die and inter-die delay PDFs, at a cost of `O(QUALITY²)` for
//! QUALITY-point discretizations (their §3.2). This module implements that
//! kernel for piecewise-constant densities on uniform grids.

use crate::grid::{steps_compatible, Grid};
use crate::pdf::Pdf;
use crate::{Result, StatsError};

/// Density of `X + Y` for independent `X ~ a`, `Y ~ b`.
///
/// Both inputs must share the same grid step (re-sample one of them with
/// [`Pdf::resample`] if they do not). The result lives on the grid whose
/// span is the Minkowski sum of the input spans, with `nₐ + n_b − 1` cells,
/// and is normalized.
///
/// Complexity is `O(nₐ · n_b)`, the paper's `O(QUALITY²)`.
///
/// # Errors
///
/// Returns [`StatsError::StepMismatch`] when the grid steps differ.
///
/// # Examples
///
/// ```
/// use statim_stats::{Grid, Pdf, convolve::sum_pdf};
/// let g = Grid::over(0.0, 1.0, 50).unwrap();
/// let u = Pdf::new(g, vec![1.0; 50]).unwrap();
/// let tri = sum_pdf(&u, &u).unwrap(); // triangle on [0, 2]
/// assert!((tri.mean() - 1.0).abs() < 1e-9);
/// assert!((tri.mode() - 1.0).abs() < 0.03);
/// ```
pub fn sum_pdf(a: &Pdf, b: &Pdf) -> Result<Pdf> {
    let (ga, gb) = (a.grid(), b.grid());
    if !steps_compatible(ga.step(), gb.step()) {
        return Err(StatsError::StepMismatch {
            left: ga.step(),
            right: gb.step(),
        });
    }
    let step = ga.step();
    let n = ga.len() + gb.len() - 1;
    // Mass of cell pair (i, j) lands at the sum of the two cell centers,
    // lo_a + lo_b + (i + j + 1)·step — which must be the *center* of output
    // cell i + j, hence the half-step offset of the output grid. Midpoint
    // assignment keeps mean and variance exact, matching what a
    // QUALITY-point numerical convolution does.
    let grid = Grid::new(ga.lo() + gb.lo() + 0.5 * step, step, n)?;
    let mut density = vec![0.0f64; n];
    let da = a.density();
    let db = b.density();
    for (i, &x) in da.iter().enumerate() {
        if x == 0.0 {
            continue;
        }
        let xm = x * step;
        for (j, &y) in db.iter().enumerate() {
            density[i + j] += xm * y;
        }
    }
    Pdf::new(grid, density)
}

/// Density of `X₁ + X₂ + …` for independent summands.
///
/// # Errors
///
/// Returns [`StatsError::ZeroMass`] for an empty slice and propagates step
/// mismatches from [`sum_pdf`].
pub fn sum_pdf_many(pdfs: &[Pdf]) -> Result<Pdf> {
    let mut iter = pdfs.iter();
    let first = iter.next().ok_or(StatsError::ZeroMass)?;
    let mut acc = first.clone();
    for p in iter {
        acc = sum_pdf(&acc, p)?;
    }
    Ok(acc)
}

/// Convolves two PDFs with arbitrary (unequal) grids, then trims the
/// result back to `quality` cells. This is the convenience entry the
/// engine uses when intra and inter PDFs were built with different
/// QUALITY settings (the paper uses 100 and 50).
///
/// The coarser PDF is normally resampled onto the finer step (best
/// resolution); but when the steps are so disparate that this would
/// explode the cell count — e.g. a delta-like intra PDF against a wide
/// inter PDF — the roles flip, since a near-degenerate operand carries
/// no resolution worth preserving.
///
/// # Errors
///
/// Propagates grid-construction failures.
pub fn sum_pdf_resampled(a: &Pdf, b: &Pdf, quality: usize) -> Result<Pdf> {
    let (fine, coarse) = if a.grid().step() <= b.grid().step() {
        (a, b)
    } else {
        (b, a)
    };
    let coarse_span = coarse.grid().hi() - coarse.grid().lo();
    let cells_on_fine = coarse_span / fine.grid().step();
    let (base, other) = if cells_on_fine <= (quality.max(64) * 64) as f64 {
        (fine, coarse)
    } else {
        (coarse, fine)
    };
    let span = other.grid().hi() - other.grid().lo();
    let cells = ((span / base.grid().step()).ceil() as usize).max(1);
    let go = Grid::new(other.grid().lo(), base.grid().step(), cells)?;
    let o2 = other.resample(go);
    let full = sum_pdf(base, &o2)?;
    full.with_quality(quality)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gaussian::gaussian_pdf;

    #[test]
    fn gaussian_sum_adds_moments() {
        let a = gaussian_pdf(3.0, 1.0, 6.0, 200);
        let b = gaussian_pdf(5.0, 2.0, 6.0, 400);
        // Equal steps by construction? No — make them equal.
        let b = b.resample(*a.grid()).normalized().unwrap();
        let s = sum_pdf(&a, &b).unwrap();
        assert!((s.mean() - (3.0 + b.mean())).abs() < 1e-6);
    }

    #[test]
    fn sum_is_commutative() {
        let g = Grid::over(0.0, 1.0, 30).unwrap();
        let a = Pdf::new(g, (0..30).map(|i| 1.0 + i as f64).collect()).unwrap();
        let b = Pdf::new(g, (0..30).map(|i| 30.0 - i as f64).collect()).unwrap();
        let ab = sum_pdf(&a, &b).unwrap();
        let ba = sum_pdf(&b, &a).unwrap();
        assert!((ab.mean() - ba.mean()).abs() < 1e-12);
        assert!((ab.variance() - ba.variance()).abs() < 1e-12);
    }

    #[test]
    fn step_mismatch_rejected() {
        let a = Pdf::new(Grid::new(0.0, 0.1, 10).unwrap(), vec![1.0; 10]).unwrap();
        let b = Pdf::new(Grid::new(0.0, 0.2, 10).unwrap(), vec![1.0; 10]).unwrap();
        assert!(matches!(
            sum_pdf(&a, &b),
            Err(StatsError::StepMismatch { .. })
        ));
    }

    #[test]
    fn many_sums_match_pairwise() {
        let g = Grid::over(0.0, 1.0, 20).unwrap();
        let u = Pdf::new(g, vec![1.0; 20]).unwrap();
        let s3 = sum_pdf_many(&[u.clone(), u.clone(), u.clone()]).unwrap();
        assert!((s3.mean() - 1.5).abs() < 1e-9);
        // Var(U) = 1/12 each.
        assert!((s3.variance() - 3.0 / 12.0).abs() < 1e-3);
        assert!(sum_pdf_many(&[]).is_err());
    }

    #[test]
    fn resampled_convolution_handles_mixed_quality() {
        // Paper setting: intra at QUALITY 100, inter at QUALITY 50.
        let intra = gaussian_pdf(0.0, 10.0, 6.0, 100);
        let inter = gaussian_pdf(250.0, 25.0, 6.0, 50);
        let total = sum_pdf_resampled(&intra, &inter, 200).unwrap();
        assert!((total.mean() - 250.0).abs() < 0.5);
        let sigma = (10.0f64 * 10.0 + 25.0 * 25.0).sqrt();
        assert!((total.std_dev() - sigma).abs() < 0.5);
        assert_eq!(total.len(), 200);
    }
}
