//! Input marginal distribution shapes.
//!
//! A recurring criticism in the paper (§1) is that statistical timing
//! methods are often "restricted to a certain kind of input PDF (usually
//! Gaussian)". Because this engine is fully numerical, any marginal with
//! a mean and standard deviation drops in; this module provides the
//! common shapes used in variation modeling.

use crate::gaussian::try_gaussian_pdf;
use crate::grid::Grid;
use crate::pdf::Pdf;
use crate::sample::truncated_normal;
use crate::{Result, StatsError};
use rand::Rng;

/// A marginal distribution family, parameterized by mean and standard
/// deviation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Marginal {
    /// Normal, truncated at ±`trunc_k`·σ (the paper's model).
    #[default]
    Gaussian,
    /// Uniform on `mean ± σ√3` (matching the requested σ).
    Uniform,
    /// Symmetric triangular on `mean ± σ√6`.
    Triangular,
}

impl Marginal {
    /// Discretizes the marginal with the given mean and σ onto `quality`
    /// cells. `trunc_k` only affects the Gaussian (the others have
    /// compact support by construction).
    ///
    /// # Errors
    ///
    /// Returns an error if `sigma <= 0` or `quality == 0`.
    pub fn pdf(&self, mean: f64, sigma: f64, trunc_k: f64, quality: usize) -> Result<Pdf> {
        if sigma <= 0.0 || !sigma.is_finite() {
            return Err(StatsError::NonPositiveScale { value: sigma });
        }
        match self {
            Marginal::Gaussian => try_gaussian_pdf(mean, sigma, trunc_k, quality),
            Marginal::Uniform => {
                let h = sigma * 3f64.sqrt();
                let grid = Grid::over(mean - h, mean + h, quality)?;
                Pdf::new(grid, vec![1.0; quality])
            }
            Marginal::Triangular => {
                let h = sigma * 6f64.sqrt();
                let grid = Grid::over(mean - h, mean + h, quality)?;
                Pdf::from_fn(grid, |x| (h - (x - mean).abs()).max(0.0))
            }
        }
    }

    /// Draws one sample with the given mean and σ (`trunc_k` applies to
    /// the Gaussian only).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, mean: f64, sigma: f64, trunc_k: f64) -> f64 {
        match self {
            Marginal::Gaussian => truncated_normal(rng, mean, sigma, trunc_k),
            Marginal::Uniform => {
                let h = sigma * 3f64.sqrt();
                mean - h + 2.0 * h * rng.gen::<f64>()
            }
            Marginal::Triangular => {
                // Sum of two uniforms on ±h/2 is triangular on ±h.
                let h = sigma * 6f64.sqrt();
                let u1: f64 = rng.gen::<f64>() - 0.5;
                let u2: f64 = rng.gen::<f64>() - 0.5;
                mean + h * (u1 + u2)
            }
        }
    }

    /// Excess kurtosis of the family (0 for Gaussian, −6/5 for uniform,
    /// −3/5 for triangular) — used by tests to tell the shapes apart.
    pub fn excess_kurtosis(&self) -> f64 {
        match self {
            Marginal::Gaussian => 0.0,
            Marginal::Uniform => -1.2,
            Marginal::Triangular => -0.6,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn all_marginals_match_requested_moments() {
        for m in [Marginal::Gaussian, Marginal::Uniform, Marginal::Triangular] {
            let pdf = m.pdf(10.0, 2.0, 6.0, 400).unwrap();
            assert!(
                (pdf.mean() - 10.0).abs() < 1e-6,
                "{m:?} mean {}",
                pdf.mean()
            );
            assert!(
                (pdf.std_dev() - 2.0).abs() < 0.02,
                "{m:?} σ {}",
                pdf.std_dev()
            );
            assert!((pdf.mass() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn uniform_support_is_sqrt3_sigma() {
        let pdf = Marginal::Uniform.pdf(0.0, 1.0, 6.0, 100).unwrap();
        assert!((pdf.grid().lo() + 3f64.sqrt()).abs() < 1e-12);
        assert!((pdf.grid().hi() - 3f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn triangular_peaks_at_mean() {
        let pdf = Marginal::Triangular.pdf(5.0, 1.0, 6.0, 101).unwrap();
        assert!((pdf.mode() - 5.0).abs() < 0.1);
    }

    #[test]
    fn rejects_bad_sigma() {
        for m in [Marginal::Gaussian, Marginal::Uniform, Marginal::Triangular] {
            assert!(m.pdf(0.0, 0.0, 6.0, 10).is_err());
            assert!(m.pdf(0.0, -1.0, 6.0, 10).is_err());
        }
    }

    #[test]
    fn samples_match_pdf_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        for m in [Marginal::Gaussian, Marginal::Uniform, Marginal::Triangular] {
            let xs: Vec<f64> = (0..40_000)
                .map(|_| m.sample(&mut rng, 3.0, 0.5, 6.0))
                .collect();
            let mean = xs.iter().sum::<f64>() / xs.len() as f64;
            let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
            assert!((mean - 3.0).abs() < 0.01, "{m:?}");
            assert!((var.sqrt() - 0.5).abs() < 0.01, "{m:?}");
        }
    }

    #[test]
    fn kurtosis_distinguishes_shapes() {
        for m in [Marginal::Uniform, Marginal::Triangular] {
            let pdf = m.pdf(0.0, 1.0, 6.0, 800).unwrap();
            // Empirical kurtosis from the grid.
            let mu = pdf.mean();
            let step = pdf.grid().step();
            let m2: f64 = pdf
                .grid()
                .centers()
                .zip(pdf.density())
                .map(|(x, d)| (x - mu).powi(2) * d * step)
                .sum();
            let m4: f64 = pdf
                .grid()
                .centers()
                .zip(pdf.density())
                .map(|(x, d)| (x - mu).powi(4) * d * step)
                .sum();
            let excess = m4 / (m2 * m2) - 3.0;
            assert!(
                (excess - m.excess_kurtosis()).abs() < 0.05,
                "{m:?}: excess {excess}"
            );
        }
    }
}
