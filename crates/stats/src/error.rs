//! Error type for the statistics engine.

use std::fmt;

/// Errors produced by grid and PDF operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum StatsError {
    /// A grid was requested with zero cells or a non-positive step.
    EmptyGrid {
        /// Number of cells requested.
        cells: usize,
        /// Step requested.
        step: f64,
    },
    /// A grid bound or sample value was NaN or infinite.
    NonFinite {
        /// Human-readable description of the offending quantity.
        what: &'static str,
    },
    /// A density vector did not match its grid length.
    LengthMismatch {
        /// Cells in the grid.
        grid: usize,
        /// Entries in the density vector.
        density: usize,
    },
    /// A PDF carried zero (or negative) total probability mass where a
    /// proper distribution was required.
    ZeroMass,
    /// A density entry was negative.
    NegativeDensity {
        /// Index of the offending cell.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// Two PDFs were combined with incompatible grid steps.
    StepMismatch {
        /// Step of the left operand.
        left: f64,
        /// Step of the right operand.
        right: f64,
    },
    /// A standard deviation (or other scale parameter) was not positive.
    NonPositiveScale {
        /// The offending value.
        value: f64,
    },
    /// A probability argument fell outside `[0, 1]`.
    InvalidProbability {
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::EmptyGrid { cells, step } => {
                write!(f, "invalid grid: {cells} cells with step {step}")
            }
            StatsError::NonFinite { what } => write!(f, "non-finite value in {what}"),
            StatsError::LengthMismatch { grid, density } => {
                write!(
                    f,
                    "density length {density} does not match grid of {grid} cells"
                )
            }
            StatsError::ZeroMass => write!(f, "distribution has no probability mass"),
            StatsError::NegativeDensity { index, value } => {
                write!(f, "negative density {value} at cell {index}")
            }
            StatsError::StepMismatch { left, right } => {
                write!(f, "grid steps differ: {left} vs {right}")
            }
            StatsError::NonPositiveScale { value } => {
                write!(f, "scale parameter must be positive, got {value}")
            }
            StatsError::InvalidProbability { value } => {
                write!(f, "probability must lie in [0, 1], got {value}")
            }
        }
    }
}

impl std::error::Error for StatsError {}
