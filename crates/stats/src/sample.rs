//! Random sampling from discretized distributions.
//!
//! Used by the Monte-Carlo validator (`statim-core::monte_carlo`), which
//! checks the analytic SSTA machinery against the exact non-linear delay
//! model, and by randomized tests.

use crate::pdf::Pdf;
use crate::Result;
use rand::Rng;

/// A sampler drawing values from a [`Pdf`] by inverse-CDF lookup.
///
/// Construction precomputes the cumulative masses; each draw is a binary
/// search plus linear interpolation inside the chosen cell.
#[derive(Debug, Clone)]
pub struct PdfSampler {
    edges: Vec<f64>,
    cum: Vec<f64>,
}

impl PdfSampler {
    /// Builds a sampler for `pdf`.
    ///
    /// # Errors
    ///
    /// Returns [`crate::StatsError::ZeroMass`] if the PDF has no mass.
    pub fn new(pdf: &Pdf) -> Result<Self> {
        let pdf = pdf.normalized()?;
        let g = pdf.grid();
        let step = g.step();
        let mut cum = Vec::with_capacity(g.len() + 1);
        cum.push(0.0);
        let mut acc = 0.0;
        for &d in pdf.density() {
            acc += d * step;
            cum.push(acc);
        }
        // Force exact 1.0 at the end to make draws in [0,1) always land.
        let total = *cum.last().expect("non-empty");
        for c in &mut cum {
            *c /= total;
        }
        let edges = (0..=g.len()).map(|i| g.edge(i)).collect();
        Ok(PdfSampler { edges, cum })
    }

    /// Draws one value.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen();
        self.inverse(u)
    }

    /// Deterministic inverse-CDF lookup for `u ∈ [0, 1)`.
    pub fn inverse(&self, u: f64) -> f64 {
        let u = u.clamp(0.0, 1.0);
        // Find the first cumulative value >= u.
        let mut lo = 0usize;
        let mut hi = self.cum.len() - 1;
        while lo + 1 < hi {
            let mid = (lo + hi) / 2;
            if self.cum[mid] < u {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let c0 = self.cum[lo];
        let c1 = self.cum[hi];
        let frac = if c1 > c0 { (u - c0) / (c1 - c0) } else { 0.5 };
        self.edges[lo] + frac * (self.edges[hi] - self.edges[lo])
    }

    /// Draws `n` values.
    pub fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// Draws one standard normal variate via Box–Muller. Kept local so the
/// crate does not depend on `rand_distr`.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        let u2: f64 = rng.gen();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

/// Draws a normal variate with the given mean and σ, re-drawing until it
/// falls within `mean ± trunc_k·sigma` — the paper's ±6σ truncation.
pub fn truncated_normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, sigma: f64, trunc_k: f64) -> f64 {
    loop {
        let z = standard_normal(rng);
        if z.abs() <= trunc_k {
            return mean + sigma * z;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gaussian::gaussian_pdf;
    use crate::{Grid, Pdf};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sampler_reproduces_moments() {
        let pdf = gaussian_pdf(50.0, 4.0, 6.0, 200);
        let s = PdfSampler::new(&pdf).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let xs = s.sample_n(&mut rng, 40_000);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((mean - 50.0).abs() < 0.1);
        assert!((var.sqrt() - 4.0).abs() < 0.1);
    }

    #[test]
    fn inverse_is_monotone() {
        let pdf = gaussian_pdf(0.0, 1.0, 6.0, 100);
        let s = PdfSampler::new(&pdf).unwrap();
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=100 {
            let x = s.inverse(i as f64 / 100.0);
            assert!(x >= prev);
            prev = x;
        }
    }

    #[test]
    fn inverse_median_of_uniform() {
        let g = Grid::over(0.0, 2.0, 10).unwrap();
        let u = Pdf::new(g, vec![1.0; 10]).unwrap();
        let s = PdfSampler::new(&u).unwrap();
        assert!((s.inverse(0.5) - 1.0).abs() < 1e-9);
        assert!((s.inverse(0.0) - 0.0).abs() < 1e-9);
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let xs: Vec<f64> = (0..40_000).map(|_| standard_normal(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.02);
        assert!((var - 1.0).abs() < 0.03);
    }

    #[test]
    fn truncated_normal_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = truncated_normal(&mut rng, 10.0, 2.0, 3.0);
            assert!((4.0..=16.0).contains(&x));
        }
    }
}
