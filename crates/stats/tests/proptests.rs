//! Property-based tests for the PDF engine's core invariants.

use proptest::prelude::*;
use statim_stats::combine::{map1, map2};
use statim_stats::convolve::{sum_pdf, sum_pdf_resampled};
use statim_stats::gaussian::{big_phi, erf, gaussian_pdf, inv_phi, Gaussian};
use statim_stats::sample::PdfSampler;
use statim_stats::{Grid, Pdf};

/// Strategy: a valid normalized PDF on a random grid with random
/// (non-degenerate) densities.
fn arb_pdf() -> impl Strategy<Value = Pdf> {
    (
        -1e3..1e3f64,  // lo
        0.01..10.0f64, // step
        4usize..60,    // cells
        proptest::collection::vec(0.0..1e3f64, 60),
    )
        .prop_filter_map("needs positive mass", |(lo, step, n, raw)| {
            let grid = Grid::new(lo, step, n).ok()?;
            let density: Vec<f64> = raw[..n].to_vec();
            Pdf::new(grid, density).ok()
        })
}

fn arb_gaussian() -> impl Strategy<Value = Pdf> {
    (-1e3..1e3f64, 0.01..100.0f64, 20usize..150)
        .prop_map(|(mean, sigma, q)| gaussian_pdf(mean, sigma, 6.0, q))
}

proptest! {
    #[test]
    fn pdf_mass_is_one(pdf in arb_pdf()) {
        prop_assert!((pdf.mass() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mean_within_support(pdf in arb_pdf()) {
        let m = pdf.mean();
        prop_assert!(m >= pdf.grid().lo() - 1e-9);
        prop_assert!(m <= pdf.grid().hi() + 1e-9);
    }

    #[test]
    fn variance_nonnegative_and_bounded(pdf in arb_pdf()) {
        let v = pdf.variance();
        prop_assert!(v >= 0.0);
        // Popoviciu: var ≤ (range/2)².
        let half = (pdf.grid().hi() - pdf.grid().lo()) / 2.0;
        prop_assert!(v <= half * half * (1.0 + 1e-9));
    }

    #[test]
    fn cdf_monotone(pdf in arb_pdf(), a in 0.0..1.0f64, b in 0.0..1.0f64) {
        let span = pdf.grid().hi() - pdf.grid().lo();
        let xa = pdf.grid().lo() + a * span;
        let xb = pdf.grid().lo() + b * span;
        let (lo, hi) = if xa <= xb { (xa, xb) } else { (xb, xa) };
        prop_assert!(pdf.cdf(lo) <= pdf.cdf(hi) + 1e-12);
        prop_assert!(pdf.cdf(pdf.grid().lo()) == 0.0);
        prop_assert!(pdf.cdf(pdf.grid().hi()) == 1.0);
    }

    #[test]
    fn quantile_inverts_cdf(pdf in arb_pdf(), p in 0.01..0.99f64) {
        let x = pdf.quantile(p).unwrap();
        // cdf(quantile(p)) ≈ p up to one cell of slack.
        let c = pdf.cdf(x);
        prop_assert!((c - p).abs() < 0.05 + 1e-9, "p={p} c={c}");
    }

    #[test]
    fn affine_transforms_moments(pdf in arb_pdf(), a in prop::sample::select(vec![-3.0, -1.0, 0.5, 2.0]), b in -100.0..100.0f64) {
        let t = pdf.affine(a, b).unwrap();
        prop_assert!((t.mass() - 1.0).abs() < 1e-9);
        prop_assert!((t.mean() - (a * pdf.mean() + b)).abs() < 1e-6 * (1.0 + pdf.mean().abs() * a.abs() + b.abs()));
        prop_assert!((t.variance() - a * a * pdf.variance()).abs() < 1e-6 * (1.0 + a * a * pdf.variance()));
    }

    #[test]
    fn resample_conserves_mass(pdf in arb_pdf(), n in 8usize..200) {
        let target = Grid::over(pdf.grid().lo() - 1.0, pdf.grid().hi() + 1.0, n).unwrap();
        let r = pdf.resample(target);
        prop_assert!((r.mass() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn convolution_adds_moments(a in arb_pdf(), b in arb_pdf()) {
        // Re-grid b onto a's step first.
        let cells = ((b.grid().hi() - b.grid().lo()) / a.grid().step()).ceil() as usize;
        let gb = Grid::new(b.grid().lo(), a.grid().step(), cells.max(1)).unwrap();
        let b2 = b.resample(gb).normalized().unwrap();
        let s = sum_pdf(&a, &b2).unwrap();
        prop_assert!((s.mean() - (a.mean() + b2.mean())).abs() < 1e-6 * (1.0 + s.mean().abs()));
        let var_sum = a.variance() + b2.variance();
        prop_assert!((s.variance() - var_sum).abs() < 1e-6 * (1.0 + var_sum));
    }

    #[test]
    fn resampled_convolution_matches_gaussian_theory(
        m1 in -50.0..50.0f64, s1 in 0.5..20.0f64,
        m2 in -50.0..50.0f64, s2 in 0.5..20.0f64,
    ) {
        let a = gaussian_pdf(m1, s1, 6.0, 120);
        let b = gaussian_pdf(m2, s2, 6.0, 80);
        let s = sum_pdf_resampled(&a, &b, 150).unwrap();
        prop_assert!((s.mean() - (m1 + m2)).abs() < 0.02 * (s1 + s2));
        let sigma = (s1 * s1 + s2 * s2).sqrt();
        prop_assert!((s.std_dev() - sigma).abs() < 0.03 * sigma);
    }

    #[test]
    fn map1_linear_matches_affine(pdf in arb_gaussian(), a in prop::sample::select(vec![-2.0, 0.5, 1.5]), b in -10.0..10.0f64) {
        let m = map1(&pdf, pdf.len(), |x| a * x + b).unwrap();
        let t = pdf.affine(a, b).unwrap();
        let scale = t.std_dev().max(1e-9);
        prop_assert!((m.mean() - t.mean()).abs() < 0.1 * scale);
        prop_assert!((m.std_dev() - t.std_dev()).abs() < 0.1 * scale);
    }

    #[test]
    fn map2_mass_conserved(a in arb_gaussian(), b in arb_gaussian()) {
        let m = map2(&a, &b, 60, |x, y| x - 0.3 * y).unwrap();
        prop_assert!((m.mass() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sampler_stays_in_support(pdf in arb_pdf(), u in 0.0..1.0f64) {
        let s = PdfSampler::new(&pdf).unwrap();
        let x = s.inverse(u);
        prop_assert!(x >= pdf.grid().lo() - 1e-9);
        prop_assert!(x <= pdf.grid().hi() + 1e-9);
    }

    #[test]
    fn sampler_inverse_monotone(pdf in arb_pdf(), u1 in 0.0..1.0f64, u2 in 0.0..1.0f64) {
        let s = PdfSampler::new(&pdf).unwrap();
        let (lo, hi) = if u1 <= u2 { (u1, u2) } else { (u2, u1) };
        prop_assert!(s.inverse(lo) <= s.inverse(hi) + 1e-12);
    }

    #[test]
    fn erf_is_odd_and_bounded(x in -10.0..10.0f64) {
        prop_assert!((erf(x) + erf(-x)).abs() < 1e-12);
        prop_assert!(erf(x).abs() <= 1.0);
    }

    #[test]
    fn phi_round_trip(p in 0.001..0.999f64) {
        let z = inv_phi(p).unwrap();
        prop_assert!((big_phi(z) - p).abs() < 1e-8);
    }

    #[test]
    fn gaussian_cdf_quantile_roundtrip(mean in -100.0..100.0f64, sigma in 0.01..50.0f64, p in 0.01..0.99f64) {
        let g = Gaussian::new(mean, sigma).unwrap();
        let x = g.quantile(p).unwrap();
        prop_assert!((g.cdf(x) - p).abs() < 1e-8);
    }

    #[test]
    fn truncated_gaussian_sigma_never_exceeds_nominal(mean in -10.0..10.0f64, sigma in 0.1..10.0f64, k in 2.0..8.0f64) {
        let pdf = gaussian_pdf(mean, sigma, k, 150);
        // Truncation shrinks σ; midpoint discretization adds back at most
        // ~step²/12 of variance.
        let step = pdf.grid().step();
        let quantization = (sigma * sigma + step * step / 12.0).sqrt();
        prop_assert!(pdf.std_dev() <= quantization * (1.0 + 1e-9));
        prop_assert!((pdf.mean() - mean).abs() < 1e-6 * sigma.max(1.0));
    }

    #[test]
    fn mixture_mass_and_mean(a in arb_gaussian(), w in 0.0..1.0f64) {
        let b = a.affine(1.0, 5.0).unwrap();
        let m = a.mix(&b, w).unwrap();
        prop_assert!((m.mass() - 1.0).abs() < 1e-9);
        let expect = w * a.mean() + (1.0 - w) * b.mean();
        prop_assert!((m.mean() - expect).abs() < 0.05 * (1.0 + a.std_dev()));
    }
}
