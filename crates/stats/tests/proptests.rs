//! Property-based tests for the PDF engine's core invariants.

use proptest::prelude::*;
use statim_stats::combine::{map1, map2};
use statim_stats::convolve::{sum_pdf, sum_pdf_resampled, sum_pdf_with, ConvolveBackend};
use statim_stats::gaussian::{big_phi, erf, gaussian_pdf, inv_phi, try_gaussian_pdf, Gaussian};
use statim_stats::sample::PdfSampler;
use statim_stats::{Grid, Pdf};

/// Strategy: a valid normalized PDF on a random grid with random
/// (non-degenerate) densities.
fn arb_pdf() -> impl Strategy<Value = Pdf> {
    (
        -1e3..1e3f64,  // lo
        0.01..10.0f64, // step
        4usize..60,    // cells
        proptest::collection::vec(0.0..1e3f64, 60),
    )
        .prop_filter_map("needs positive mass", |(lo, step, n, raw)| {
            let grid = Grid::new(lo, step, n).ok()?;
            let density: Vec<f64> = raw[..n].to_vec();
            Pdf::new(grid, density).ok()
        })
}

fn arb_gaussian() -> impl Strategy<Value = Pdf> {
    (-1e3..1e3f64, 0.01..100.0f64, 20usize..150)
        .prop_map(|(mean, sigma, q)| gaussian_pdf(mean, sigma, 6.0, q))
}

proptest! {
    #[test]
    fn pdf_mass_is_one(pdf in arb_pdf()) {
        prop_assert!((pdf.mass() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mean_within_support(pdf in arb_pdf()) {
        let m = pdf.mean();
        prop_assert!(m >= pdf.grid().lo() - 1e-9);
        prop_assert!(m <= pdf.grid().hi() + 1e-9);
    }

    #[test]
    fn variance_nonnegative_and_bounded(pdf in arb_pdf()) {
        let v = pdf.variance();
        prop_assert!(v >= 0.0);
        // Popoviciu: var ≤ (range/2)².
        let half = (pdf.grid().hi() - pdf.grid().lo()) / 2.0;
        prop_assert!(v <= half * half * (1.0 + 1e-9));
    }

    #[test]
    fn cdf_monotone(pdf in arb_pdf(), a in 0.0..1.0f64, b in 0.0..1.0f64) {
        let span = pdf.grid().hi() - pdf.grid().lo();
        let xa = pdf.grid().lo() + a * span;
        let xb = pdf.grid().lo() + b * span;
        let (lo, hi) = if xa <= xb { (xa, xb) } else { (xb, xa) };
        prop_assert!(pdf.cdf(lo) <= pdf.cdf(hi) + 1e-12);
        prop_assert!(pdf.cdf(pdf.grid().lo()) == 0.0);
        prop_assert!(pdf.cdf(pdf.grid().hi()) == 1.0);
    }

    #[test]
    fn quantile_inverts_cdf(pdf in arb_pdf(), p in 0.01..0.99f64) {
        let x = pdf.quantile(p).unwrap();
        // cdf(quantile(p)) ≈ p up to one cell of slack.
        let c = pdf.cdf(x);
        prop_assert!((c - p).abs() < 0.05 + 1e-9, "p={p} c={c}");
    }

    #[test]
    fn affine_transforms_moments(pdf in arb_pdf(), a in prop::sample::select(vec![-3.0, -1.0, 0.5, 2.0]), b in -100.0..100.0f64) {
        let t = pdf.affine(a, b).unwrap();
        prop_assert!((t.mass() - 1.0).abs() < 1e-9);
        prop_assert!((t.mean() - (a * pdf.mean() + b)).abs() < 1e-6 * (1.0 + pdf.mean().abs() * a.abs() + b.abs()));
        prop_assert!((t.variance() - a * a * pdf.variance()).abs() < 1e-6 * (1.0 + a * a * pdf.variance()));
    }

    #[test]
    fn resample_conserves_mass(pdf in arb_pdf(), n in 8usize..200) {
        let target = Grid::over(pdf.grid().lo() - 1.0, pdf.grid().hi() + 1.0, n).unwrap();
        let r = pdf.resample(target);
        prop_assert!((r.mass() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn convolution_adds_moments(a in arb_pdf(), b in arb_pdf()) {
        // Re-grid b onto a's step first.
        let cells = ((b.grid().hi() - b.grid().lo()) / a.grid().step()).ceil() as usize;
        let gb = Grid::new(b.grid().lo(), a.grid().step(), cells.max(1)).unwrap();
        let b2 = b.resample(gb).normalized().unwrap();
        let s = sum_pdf(&a, &b2).unwrap();
        prop_assert!((s.mean() - (a.mean() + b2.mean())).abs() < 1e-6 * (1.0 + s.mean().abs()));
        let var_sum = a.variance() + b2.variance();
        prop_assert!((s.variance() - var_sum).abs() < 1e-6 * (1.0 + var_sum));
    }

    #[test]
    fn resampled_convolution_matches_gaussian_theory(
        m1 in -50.0..50.0f64, s1 in 0.5..20.0f64,
        m2 in -50.0..50.0f64, s2 in 0.5..20.0f64,
    ) {
        let a = gaussian_pdf(m1, s1, 6.0, 120);
        let b = gaussian_pdf(m2, s2, 6.0, 80);
        let s = sum_pdf_resampled(&a, &b, 150).unwrap();
        prop_assert!((s.mean() - (m1 + m2)).abs() < 0.02 * (s1 + s2));
        let sigma = (s1 * s1 + s2 * s2).sqrt();
        prop_assert!((s.std_dev() - sigma).abs() < 0.03 * sigma);
    }

    #[test]
    fn map1_linear_matches_affine(pdf in arb_gaussian(), a in prop::sample::select(vec![-2.0, 0.5, 1.5]), b in -10.0..10.0f64) {
        let m = map1(&pdf, pdf.len(), |x| a * x + b).unwrap();
        let t = pdf.affine(a, b).unwrap();
        let scale = t.std_dev().max(1e-9);
        prop_assert!((m.mean() - t.mean()).abs() < 0.1 * scale);
        prop_assert!((m.std_dev() - t.std_dev()).abs() < 0.1 * scale);
    }

    #[test]
    fn map2_mass_conserved(a in arb_gaussian(), b in arb_gaussian()) {
        let m = map2(&a, &b, 60, |x, y| x - 0.3 * y).unwrap();
        prop_assert!((m.mass() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sampler_stays_in_support(pdf in arb_pdf(), u in 0.0..1.0f64) {
        let s = PdfSampler::new(&pdf).unwrap();
        let x = s.inverse(u);
        prop_assert!(x >= pdf.grid().lo() - 1e-9);
        prop_assert!(x <= pdf.grid().hi() + 1e-9);
    }

    #[test]
    fn sampler_inverse_monotone(pdf in arb_pdf(), u1 in 0.0..1.0f64, u2 in 0.0..1.0f64) {
        let s = PdfSampler::new(&pdf).unwrap();
        let (lo, hi) = if u1 <= u2 { (u1, u2) } else { (u2, u1) };
        prop_assert!(s.inverse(lo) <= s.inverse(hi) + 1e-12);
    }

    #[test]
    fn erf_is_odd_and_bounded(x in -10.0..10.0f64) {
        prop_assert!((erf(x) + erf(-x)).abs() < 1e-12);
        prop_assert!(erf(x).abs() <= 1.0);
    }

    #[test]
    fn phi_round_trip(p in 0.001..0.999f64) {
        let z = inv_phi(p).unwrap();
        prop_assert!((big_phi(z) - p).abs() < 1e-8);
    }

    #[test]
    fn gaussian_cdf_quantile_roundtrip(mean in -100.0..100.0f64, sigma in 0.01..50.0f64, p in 0.01..0.99f64) {
        let g = Gaussian::new(mean, sigma).unwrap();
        let x = g.quantile(p).unwrap();
        prop_assert!((g.cdf(x) - p).abs() < 1e-8);
    }

    #[test]
    fn truncated_gaussian_sigma_never_exceeds_nominal(mean in -10.0..10.0f64, sigma in 0.1..10.0f64, k in 2.0..8.0f64) {
        let pdf = gaussian_pdf(mean, sigma, k, 150);
        // Truncation shrinks σ; midpoint discretization adds back at most
        // ~step²/12 of variance.
        let step = pdf.grid().step();
        let quantization = (sigma * sigma + step * step / 12.0).sqrt();
        prop_assert!(pdf.std_dev() <= quantization * (1.0 + 1e-9));
        prop_assert!((pdf.mean() - mean).abs() < 1e-6 * sigma.max(1.0));
    }

    #[test]
    fn mixture_mass_and_mean(a in arb_gaussian(), w in 0.0..1.0f64) {
        let b = a.affine(1.0, 5.0).unwrap();
        let m = a.mix(&b, w).unwrap();
        prop_assert!((m.mass() - 1.0).abs() < 1e-9);
        let expect = w * a.mean() + (1.0 - w) * b.mean();
        prop_assert!((m.mean() - expect).abs() < 0.05 * (1.0 + a.std_dev()));
    }

    // ---- Degenerate regimes: the robustness layer's contract is that
    // ---- no NaN escapes the public statim-stats API — degenerate
    // ---- inputs either produce a finite PDF or a typed error.

    #[test]
    fn zero_and_negative_sigma_are_typed_errors(mean in -100.0..100.0f64, sigma in 0.0..10.0f64) {
        prop_assert!(try_gaussian_pdf(mean, 0.0, 6.0, 100).is_err());
        prop_assert!(try_gaussian_pdf(mean, -sigma.max(1e-300), 6.0, 100).is_err());
        prop_assert!(try_gaussian_pdf(mean, f64::NAN, 6.0, 100).is_err());
        prop_assert!(Gaussian::new(mean, 0.0).is_err());
    }

    #[test]
    fn single_cell_grid_stays_finite(lo in -1e3..1e3f64, step in 0.01..10.0f64, d in 0.1..1e3f64) {
        let grid = Grid::new(lo, step, 1).unwrap();
        let pdf = Pdf::new(grid, vec![d]).unwrap();
        prop_assert!((pdf.mass() - 1.0).abs() < 1e-9);
        prop_assert!(pdf.mean().is_finite());
        prop_assert!(pdf.variance().is_finite());
        prop_assert!(pdf.variance() >= 0.0);
        prop_assert!(pdf.std_dev().is_finite());
        prop_assert!(pdf.cdf(pdf.grid().lo()) == 0.0);
        prop_assert!(pdf.cdf(pdf.grid().hi()) == 1.0);
    }

    #[test]
    fn truncation_boundaries_pin_the_cdf(mean in -50.0..50.0f64, sigma in 0.1..20.0f64, k in 2.0..6.0f64) {
        // The paper truncates at ±kσ: all mass lives strictly inside
        // [mean − kσ, mean + kσ] and the CDF saturates exactly at the
        // grid edges — no leakage, no NaN at the boundary.
        let pdf = gaussian_pdf(mean, sigma, k, 120);
        prop_assert!(pdf.grid().lo() >= mean - k * sigma - 1e-6 * sigma);
        prop_assert!(pdf.grid().hi() <= mean + k * sigma + 1e-6 * sigma);
        prop_assert!(pdf.cdf(pdf.grid().lo()) == 0.0);
        prop_assert!(pdf.cdf(pdf.grid().hi()) == 1.0);
        prop_assert!(pdf.cdf(mean - (k + 1.0) * sigma) == 0.0);
        prop_assert!(pdf.cdf(mean + (k + 1.0) * sigma) == 1.0);
        prop_assert!(pdf.density().iter().all(|d| d.is_finite()));
    }

    #[test]
    fn delta_like_convolution_stays_finite(x in -50.0..50.0f64, m in -50.0..50.0f64, s in 0.5..10.0f64) {
        // A Dirac-like spike (σ = 0 component, e.g. a zero-variance
        // intra kernel) convolved with a smooth PDF must shift, not
        // corrupt, the distribution.
        let g = gaussian_pdf(m, s, 6.0, 100);
        let spike = Pdf::delta(Grid::new(x - 1.0, 0.02, 100).unwrap(), x).unwrap();
        let total = sum_pdf_resampled(&spike, &g, 120).unwrap();
        prop_assert!((total.mass() - 1.0).abs() < 1e-9);
        prop_assert!(total.density().iter().all(|d| d.is_finite()));
        prop_assert!((total.mean() - (spike.mean() + m)).abs() < 0.05 * s + 0.05);
        prop_assert!((total.std_dev() - s).abs() < 0.1 * s);
    }

    #[test]
    fn no_nan_escapes_derived_quantities(pdf in arb_pdf(), p in 0.01..0.99f64, t in 0.0..1.0f64) {
        prop_assert!(pdf.density().iter().all(|d| d.is_finite()));
        prop_assert!(pdf.mean().is_finite());
        prop_assert!(pdf.variance().is_finite());
        prop_assert!(pdf.std_dev().is_finite());
        let x = pdf.grid().lo() + t * (pdf.grid().hi() - pdf.grid().lo());
        prop_assert!(pdf.cdf(x).is_finite());
        prop_assert!(pdf.quantile(p).unwrap().is_finite());
    }

    #[test]
    fn fft_backend_matches_grid_pointwise(a in arb_pdf(), b in arb_pdf()) {
        // The spectral path must reproduce the direct cell-pair sum to
        // round-off on *arbitrary* operands, not just smooth ones.
        let cells = ((b.grid().hi() - b.grid().lo()) / a.grid().step()).ceil() as usize;
        let gb = Grid::new(b.grid().lo(), a.grid().step(), cells.max(1)).unwrap();
        let b = b.resample(gb).normalized().unwrap();
        let grid = sum_pdf_with(ConvolveBackend::Grid, &a, &b).unwrap();
        let fft = sum_pdf_with(ConvolveBackend::Fft, &a, &b).unwrap();
        prop_assert_eq!(grid.grid(), fft.grid());
        let peak = grid.density().iter().cloned().fold(0.0f64, f64::max);
        for (x, y) in grid.density().iter().zip(fft.density()) {
            prop_assert!((x - y).abs() <= 1e-10 * peak, "{x} vs {y} (peak {peak})");
        }
    }

    #[test]
    fn fft_impulse_is_an_identity_shift(pdf in arb_pdf(), offset in -50.0..50.0f64) {
        // Convolving with a single-cell operand must reproduce the other
        // operand's shape exactly, shifted by the impulse position.
        let impulse = Pdf::new(
            Grid::new(offset, pdf.grid().step(), 1).unwrap(),
            vec![1.0],
        ).unwrap();
        let out = sum_pdf_with(ConvolveBackend::Fft, &pdf, &impulse).unwrap();
        prop_assert_eq!(out.grid().len(), pdf.grid().len());
        let peak = pdf.density().iter().cloned().fold(0.0f64, f64::max);
        for (x, y) in pdf.density().iter().zip(out.density()) {
            prop_assert!((x - y).abs() <= 1e-10 * peak);
        }
        let shift = impulse.mean();
        prop_assert!((out.mean() - (pdf.mean() + shift)).abs() < 1e-9 * (1.0 + pdf.mean().abs() + shift.abs()));
    }

    #[test]
    fn fft_backend_preserves_mass_and_adds_moments(a in arb_pdf(), b in arb_pdf()) {
        let cells = ((b.grid().hi() - b.grid().lo()) / a.grid().step()).ceil() as usize;
        let gb = Grid::new(b.grid().lo(), a.grid().step(), cells.max(1)).unwrap();
        let b = b.resample(gb).normalized().unwrap();
        let c = sum_pdf_with(ConvolveBackend::Fft, &a, &b).unwrap();
        prop_assert!((c.mass() - 1.0).abs() < 1e-9);
        let mean_scale = 1.0 + a.mean().abs() + b.mean().abs();
        prop_assert!((c.mean() - (a.mean() + b.mean())).abs() < 1e-9 * mean_scale);
        let var_scale = 1.0 + a.variance() + b.variance();
        prop_assert!((c.variance() - (a.variance() + b.variance())).abs() < 1e-8 * var_scale);
    }

    #[test]
    fn fft_padding_round_trips_at_any_length(pdf in arb_pdf()) {
        // Output lengths here are n (impulse case) — rarely a power of
        // two — so the internal pad-to-2^k and truncate must be lossless.
        let impulse = Pdf::new(
            Grid::new(0.0, pdf.grid().step(), 1).unwrap(),
            vec![1.0],
        ).unwrap();
        let out = sum_pdf_with(ConvolveBackend::Fft, &impulse, &pdf).unwrap();
        prop_assert_eq!(out.grid().len(), pdf.grid().len());
        for (x, y) in pdf.density().iter().zip(out.density()) {
            prop_assert!((x - y).abs() <= 1e-12 * (1.0 + x.abs()));
        }
    }
}
