//! Gate placement.
//!
//! The spatial-correlation model needs an (x, y) coordinate per gate —
//! the paper extracts them from DEF files. This module synthesizes
//! placements directly:
//!
//! * [`PlacementStyle::Levelized`] — gates are placed in columns by logic
//!   level and spread vertically within each column. Connected gates land
//!   in neighbouring columns, giving the spatial locality a real placer
//!   produces (and which makes the intra-die correlation layers matter).
//! * [`PlacementStyle::Random`] — seeded uniform scatter, the no-locality
//!   ablation.

use crate::circuit::{Circuit, GateId};
use crate::error::NetlistError;
use crate::Result;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Placement strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementStyle {
    /// Column-per-logic-level placement with vertical spreading.
    Levelized,
    /// Uniform random placement with the given seed.
    Random(u64),
}

/// A full placement: one (x, y) in microns per gate, on a
/// `die_side × die_side` square die.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    positions: Vec<(f64, f64)>,
    die_side: f64,
}

/// Default cell pitch (microns) used to size the die: the side is
/// `pitch · ceil(sqrt(gate_count))`.
pub const DEFAULT_PITCH_UM: f64 = 10.0;

impl Placement {
    /// Places `circuit` with the given style and the default die size.
    pub fn generate(circuit: &Circuit, style: PlacementStyle) -> Placement {
        let side = DEFAULT_PITCH_UM * (circuit.gate_count().max(1) as f64).sqrt().ceil();
        Placement::generate_on_die(circuit, style, side).expect("default die side is positive")
    }

    /// Places `circuit` on a square die of side `die_side` microns.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InvalidConfig`] if `die_side` is not a
    /// positive finite number.
    pub fn generate_on_die(
        circuit: &Circuit,
        style: PlacementStyle,
        die_side: f64,
    ) -> Result<Placement> {
        if die_side <= 0.0 || !die_side.is_finite() {
            return Err(NetlistError::InvalidConfig {
                message: format!("die side must be positive, got {die_side}"),
            });
        }
        let n = circuit.gate_count();
        let positions = match style {
            PlacementStyle::Levelized => {
                let levels = circuit.levels();
                let max_level = levels.iter().copied().max().unwrap_or(1);
                // Count gates per level and assign row slots.
                let mut per_level = vec![0usize; max_level + 1];
                for &l in &levels {
                    per_level[l] += 1;
                }
                let mut next_row = vec![0usize; max_level + 1];
                let mut pos = Vec::with_capacity(n);
                for &l in &levels {
                    let rows = per_level[l].max(1);
                    let row = next_row[l];
                    next_row[l] += 1;
                    let x = (l as f64 - 0.5) / max_level as f64 * die_side;
                    let y = (row as f64 + 0.5) / rows as f64 * die_side;
                    pos.push((x, y));
                }
                pos
            }
            PlacementStyle::Random(seed) => {
                let mut rng = StdRng::seed_from_u64(seed);
                (0..n)
                    .map(|_| (rng.gen::<f64>() * die_side, rng.gen::<f64>() * die_side))
                    .collect()
            }
        };
        Ok(Placement {
            positions,
            die_side,
        })
    }

    /// Builds a placement from explicit per-gate coordinates (e.g. parsed
    /// from DEF).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::PlacementMismatch`] if the coordinate count
    /// differs from the circuit's gate count, and
    /// [`NetlistError::InvalidConfig`] for non-finite coordinates or a
    /// non-positive die.
    pub fn from_positions(
        circuit: &Circuit,
        positions: Vec<(f64, f64)>,
        die_side: f64,
    ) -> Result<Placement> {
        if positions.len() != circuit.gate_count() {
            return Err(NetlistError::PlacementMismatch {
                gates: circuit.gate_count(),
                placed: positions.len(),
            });
        }
        if die_side <= 0.0 || !die_side.is_finite() {
            return Err(NetlistError::InvalidConfig {
                message: format!("die side must be positive, got {die_side}"),
            });
        }
        for &(x, y) in &positions {
            if !x.is_finite() || !y.is_finite() {
                return Err(NetlistError::InvalidConfig {
                    message: "non-finite coordinate".into(),
                });
            }
        }
        Ok(Placement {
            positions,
            die_side,
        })
    }

    /// Coordinate of a gate in microns.
    pub fn position(&self, gate: GateId) -> (f64, f64) {
        self.positions[gate.index()]
    }

    /// Coordinate of a gate normalized to `[0, 1)²` (used by the
    /// correlation-layer partition lookup).
    pub fn normalized(&self, gate: GateId) -> (f64, f64) {
        let (x, y) = self.positions[gate.index()];
        let clamp = |v: f64| (v / self.die_side).clamp(0.0, 1.0 - 1e-12);
        (clamp(x), clamp(y))
    }

    /// Die side, microns.
    pub fn die_side(&self) -> f64 {
        self.die_side
    }

    /// Number of placed gates.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// True if no gates are placed.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// All positions, gate order.
    pub fn positions(&self) -> &[(f64, f64)] {
        &self.positions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use statim_process::GateKind;

    fn chain(n: usize) -> Circuit {
        let mut c = Circuit::new("chain");
        let mut s = c.add_input("a").unwrap();
        for i in 0..n {
            s = c.add_gate(format!("g{i}"), GateKind::Inv, &[s]).unwrap();
        }
        c.mark_output("o", s).unwrap();
        c
    }

    #[test]
    fn levelized_orders_by_level() {
        let c = chain(10);
        let p = Placement::generate(&c, PlacementStyle::Levelized);
        // Each successive gate of the chain moves right.
        for i in 1..10 {
            let (x0, _) = p.position(GateId((i - 1) as u32));
            let (x1, _) = p.position(GateId(i as u32));
            assert!(x1 > x0, "gate {i} should be right of gate {}", i - 1);
        }
    }

    #[test]
    fn all_positions_inside_die() {
        let c = chain(50);
        for style in [PlacementStyle::Levelized, PlacementStyle::Random(3)] {
            let p = Placement::generate(&c, style);
            for g in c.gate_ids() {
                let (x, y) = p.position(g);
                assert!(x >= 0.0 && x <= p.die_side());
                assert!(y >= 0.0 && y <= p.die_side());
                let (nx, ny) = p.normalized(g);
                assert!((0.0..1.0).contains(&nx));
                assert!((0.0..1.0).contains(&ny));
            }
        }
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let c = chain(20);
        let a = Placement::generate(&c, PlacementStyle::Random(7));
        let b = Placement::generate(&c, PlacementStyle::Random(7));
        let d = Placement::generate(&c, PlacementStyle::Random(8));
        assert_eq!(a, b);
        assert_ne!(a, d);
    }

    #[test]
    fn from_positions_validates() {
        let c = chain(3);
        assert!(matches!(
            Placement::from_positions(&c, vec![(0.0, 0.0)], 10.0),
            Err(NetlistError::PlacementMismatch {
                gates: 3,
                placed: 1
            })
        ));
        let ok = Placement::from_positions(&c, vec![(1.0, 1.0); 3], 10.0).unwrap();
        assert_eq!(ok.len(), 3);
        assert!(Placement::from_positions(&c, vec![(f64::NAN, 0.0); 3], 10.0).is_err());
        assert!(Placement::from_positions(&c, vec![(0.0, 0.0); 3], 0.0).is_err());
    }

    #[test]
    fn generate_on_die_rejects_bad_side() {
        let c = chain(3);
        assert!(Placement::generate_on_die(&c, PlacementStyle::Levelized, -5.0).is_err());
        assert!(Placement::generate_on_die(&c, PlacementStyle::Levelized, f64::NAN).is_err());
    }

    #[test]
    fn die_scales_with_gate_count() {
        let small = Placement::generate(&chain(4), PlacementStyle::Levelized);
        let large = Placement::generate(&chain(400), PlacementStyle::Levelized);
        assert!(large.die_side() > small.die_side());
    }
}
