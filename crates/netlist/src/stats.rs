//! Structural circuit statistics.
//!
//! The paper attributes its rank-migration findings to circuit *topology*:
//! "bushy" graphs (c1355) have many near-equal paths and large
//! deterministic→probabilistic rank changes, while circuits with
//! well-separated path delays (c7552) barely reorder. These metrics
//! quantify that character for reports and tests.

use crate::circuit::{Circuit, Signal};

/// Summary statistics of a circuit's structure.
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitStats {
    /// Gate count.
    pub gates: usize,
    /// Primary input count.
    pub inputs: usize,
    /// Primary output count.
    pub outputs: usize,
    /// Logic depth (gates on the longest topological path).
    pub depth: usize,
    /// Total distinct PI→PO paths (saturating).
    pub paths: u128,
    /// Mean gate fan-in.
    pub avg_fan_in: f64,
    /// Mean fan-out pins per gate.
    pub avg_fan_out: f64,
    /// Maximum fan-out pins of any gate.
    pub max_fan_out: usize,
    /// Gates per level of depth — a direct "bushiness" measure.
    pub gates_per_level: f64,
}

/// Computes [`CircuitStats`] for `circuit`.
pub fn analyze(circuit: &Circuit) -> CircuitStats {
    let gates = circuit.gate_count();
    let depth = circuit.depth();
    let pins = circuit.fanout_pins();
    let total_fan_in: usize = circuit.gates().iter().map(|g| g.inputs.len()).sum();
    CircuitStats {
        gates,
        inputs: circuit.input_count(),
        outputs: circuit.output_count(),
        depth,
        paths: circuit.path_count(),
        avg_fan_in: total_fan_in as f64 / gates.max(1) as f64,
        avg_fan_out: pins.iter().sum::<usize>() as f64 / gates.max(1) as f64,
        max_fan_out: pins.iter().copied().max().unwrap_or(0),
        gates_per_level: gates as f64 / depth.max(1) as f64,
    }
}

/// Number of distinct PI→PO paths that achieve the circuit's full logic
/// depth (saturating at `u128::MAX`).
///
/// This is the structural proxy for the paper's "bushiness": circuits
/// whose near-critical paths are tightly bunched (c1355's expanded XOR
/// trees) have *many* maximum-depth paths, while circuits dominated by a
/// single long carry chain (c7552) have few — which is exactly why the
/// former reorders heavily under statistical analysis and the latter does
/// not (their Figs. 5 and 6).
pub fn max_depth_path_count(circuit: &Circuit) -> u128 {
    let n = circuit.gate_count();
    let mut depth = vec![0usize; n];
    let mut count = vec![0u128; n];
    for (i, g) in circuit.gates().iter().enumerate() {
        let mut best = 0usize;
        for s in &g.inputs {
            if let Signal::Gate(src) = s {
                best = best.max(depth[src.index()]);
            }
        }
        let mut c: u128 = 0;
        for s in &g.inputs {
            match s {
                Signal::Input(_) => {
                    if best == 0 {
                        c = c.saturating_add(1);
                    }
                }
                Signal::Gate(src) => {
                    if depth[src.index()] == best {
                        c = c.saturating_add(count[src.index()]);
                    }
                }
            }
        }
        depth[i] = best + 1;
        count[i] = c;
    }
    let full = circuit.depth();
    let mut total: u128 = 0;
    for &(_, s) in circuit.outputs() {
        if let Signal::Gate(g) = s {
            if depth[g.index()] == full {
                total = total.saturating_add(count[g.index()]);
            }
        }
    }
    total
}

/// Fraction of gate input pins driven by primary inputs — high values
/// indicate shallow, wide circuits.
pub fn pi_pin_fraction(circuit: &Circuit) -> f64 {
    let mut pi_pins = 0usize;
    let mut total = 0usize;
    for g in circuit.gates() {
        for s in &g.inputs {
            total += 1;
            if matches!(s, Signal::Input(_)) {
                pi_pins += 1;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        pi_pins as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use statim_process::GateKind;

    #[test]
    fn stats_of_small_circuit() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a").unwrap();
        let b = c.add_input("b").unwrap();
        let g1 = c.add_gate("g1", GateKind::Nand(2), &[a, b]).unwrap();
        let g2 = c.add_gate("g2", GateKind::Inv, &[g1]).unwrap();
        let g3 = c.add_gate("g3", GateKind::Nor(2), &[g1, g2]).unwrap();
        c.mark_output("o", g3).unwrap();
        let s = analyze(&c);
        assert_eq!(s.gates, 3);
        assert_eq!(s.inputs, 2);
        assert_eq!(s.outputs, 1);
        assert_eq!(s.depth, 3);
        assert_eq!(s.paths, 2 + 2); // a,b through g1->g3 and g1->g2->g3
        assert!((s.avg_fan_in - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.max_fan_out, 2); // g1 feeds g2 and g3
        assert!((pi_pin_fraction(&c) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn empty_circuit_is_safe() {
        let c = Circuit::new("e");
        let s = analyze(&c);
        assert_eq!(s.gates, 0);
        assert_eq!(s.depth, 0);
        assert_eq!(pi_pin_fraction(&c), 0.0);
    }
}
