//! ISCAS-85 `.bench` format reader and writer.
//!
//! The classic benchmark distribution format:
//!
//! ```text
//! # c17 example
//! INPUT(1)
//! INPUT(2)
//! OUTPUT(22)
//! 10 = NAND(1, 3)
//! 22 = NAND(10, 16)
//! ```
//!
//! The reader is two-pass (declarations may appear in any order) and maps
//! each function name through [`GateKind::from_bench`], so any circuit in
//! the supported gate library round-trips. Gates are emitted in
//! topological order by the writer.
//!
//! ECO overlays (per-gate drive strength and retiming pads) ride in
//! `# statim drive <net> <factor>` / `# statim pad <net> <seconds>`
//! directive comments: classic tools skip them as comments, while this
//! reader applies them, so an edited circuit round-trips through `.bench`
//! bit-exactly. The writer only emits directives for non-default values,
//! keeping unedited circuits byte-identical to their classic form.
//!
//! Sequential netlists (ISCAS89-style) use `Q = DFF(D)` cells — parsed
//! into [`Circuit`] registers, with Q as a pseudo primary input — plus
//! clock/constraint directives in the same comment channel:
//! `# statim clock period <seconds>`, `# statim clock depth <levels>`,
//! `# statim constraint setup <seconds>`,
//! `# statim constraint hold <seconds>`.

use crate::circuit::{Circuit, Signal};
use crate::error::NetlistError;
use crate::Result;
use statim_process::GateKind;
use std::collections::HashMap;

/// Parses `.bench` text into a [`Circuit`].
///
/// # Errors
///
/// Returns a [`NetlistError::Parse`] (with line number) for malformed
/// lines, [`NetlistError::UnsupportedGate`] for functions outside the
/// delay model's library, and [`NetlistError::UndefinedName`] if a net is
/// referenced but never defined.
pub fn parse(name: &str, text: &str) -> Result<Circuit> {
    // First pass: collect definitions.
    struct Def<'a> {
        line: usize,
        out: &'a str,
        func: &'a str,
        args: Vec<&'a str>,
    }
    let mut inputs: Vec<(usize, &str)> = Vec::new();
    let mut outputs: Vec<(usize, &str)> = Vec::new();
    let mut defs: Vec<Def> = Vec::new();
    // `Q = DFF(D)` cells: (line, q net, d net).
    let mut dffs: Vec<(usize, &str, &str)> = Vec::new();
    let mut directives: Vec<Directive<'_>> = Vec::new();

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        // Statim directives live inside comments (so classic readers
        // skip them); intercept before the comment strip.
        if let Some(directive) = raw.trim().strip_prefix("# statim ") {
            directives.push(parse_directive(raw, line_no, directive)?);
            continue;
        }
        let line = match raw.find('#') {
            Some(p) => &raw[..p],
            None => raw,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = strip_decl(line, "INPUT") {
            inputs.push((line_no, rest));
        } else if let Some(rest) = strip_decl(line, "OUTPUT") {
            outputs.push((line_no, rest));
        } else if let Some(eq) = line.find('=') {
            let out = line[..eq].trim();
            let rhs = line[eq + 1..].trim();
            let open = rhs.find('(').ok_or_else(|| NetlistError::Parse {
                line: line_no,
                col: crate::col_in(raw, rhs),
                message: format!("expected FUNC(args) after `=`, got `{rhs}`"),
            })?;
            if !rhs.ends_with(')') {
                return Err(NetlistError::Parse {
                    line: line_no,
                    col: crate::col_in(raw, rhs) + rhs.len(),
                    message: "missing closing parenthesis".into(),
                });
            }
            let func = rhs[..open].trim();
            let args: Vec<&str> = rhs[open + 1..rhs.len() - 1]
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .collect();
            if out.is_empty() || func.is_empty() || args.is_empty() {
                return Err(NetlistError::Parse {
                    line: line_no,
                    col: crate::col_in(raw, line),
                    message: "empty net name, function or argument list".into(),
                });
            }
            if func == "DFF" {
                if args.len() != 1 {
                    return Err(NetlistError::Parse {
                        line: line_no,
                        col: crate::col_in(raw, rhs),
                        message: format!("DFF takes exactly one D argument, got {}", args.len()),
                    });
                }
                dffs.push((line_no, out, args[0]));
            } else {
                defs.push(Def {
                    line: line_no,
                    out,
                    func,
                    args,
                });
            }
        } else {
            return Err(NetlistError::Parse {
                line: line_no,
                col: crate::col_in(raw, line),
                message: format!("unrecognized line `{line}`"),
            });
        }
    }
    if inputs.is_empty() && defs.is_empty() && dffs.is_empty() {
        return Err(NetlistError::Parse {
            line: 1,
            col: 1,
            message: "empty netlist: no INPUT or gate definitions".into(),
        });
    }

    // Build: PIs first, then register Qs (pseudo-inputs), then gates in
    // dependency order (iterate until all resolve; the format allows
    // forward references). Register D pins connect last — `.bench`
    // sequential feedback means a D driver may be defined anywhere.
    let mut circuit = Circuit::new(name);
    for (_, pi) in &inputs {
        circuit.add_input(*pi)?;
    }
    for (line, q, _) in &dffs {
        circuit.add_register(*q, *line)?;
    }
    let mut pending: Vec<&Def> = defs.iter().collect();
    let mut resolved: HashMap<&str, Signal> = HashMap::new();
    while !pending.is_empty() {
        let before = pending.len();
        let mut still = Vec::new();
        for d in pending {
            let sigs: Option<Vec<Signal>> = d
                .args
                .iter()
                .map(|a| circuit.find(a).or_else(|| resolved.get(*a).copied()))
                .collect();
            match sigs {
                Some(sigs) => {
                    let kind = GateKind::from_bench(d.func, sigs.len()).ok_or(
                        NetlistError::UnsupportedGate {
                            function: d.func.to_string(),
                            arity: sigs.len(),
                            line: d.line,
                        },
                    )?;
                    let s = circuit.add_gate(d.out, kind, &sigs)?;
                    resolved.insert(d.out, s);
                }
                None => still.push(d),
            }
        }
        if still.len() == before {
            // No progress: an argument is genuinely undefined (or a cycle).
            let missing = still
                .iter()
                .flat_map(|d| d.args.iter())
                .find(|a| circuit.find(a).is_none())
                .copied()
                .unwrap_or("<cyclic definition>");
            return Err(NetlistError::UndefinedName {
                name: missing.to_string(),
            });
        }
        pending = still;
    }
    for (index, (line, _, d)) in dffs.iter().enumerate() {
        let s = circuit.find(d).ok_or_else(|| NetlistError::UndefinedName {
            name: d.to_string(),
        })?;
        circuit
            .connect_register_d(index, s)
            .map_err(|e| NetlistError::Parse {
                line: *line,
                col: 1,
                message: e.to_string(),
            })?;
    }
    for (_, po) in &outputs {
        let s = circuit
            .find(po)
            .ok_or_else(|| NetlistError::UndefinedName {
                name: po.to_string(),
            })?;
        circuit.mark_output(*po, s)?;
    }
    for d in directives {
        apply_directive(&mut circuit, d)?;
    }
    Ok(circuit)
}

/// A parsed `# statim ...` directive.
enum Directive<'a> {
    Drive {
        line: usize,
        net: &'a str,
        value: f64,
    },
    Pad {
        line: usize,
        net: &'a str,
        value: f64,
    },
    ClockPeriod {
        line: usize,
        value: f64,
    },
    ClockDepth {
        line: usize,
        value: usize,
    },
    ConstraintSetup {
        line: usize,
        value: f64,
    },
    ConstraintHold {
        line: usize,
        value: f64,
    },
}

fn apply_directive(circuit: &mut Circuit, d: Directive<'_>) -> Result<()> {
    let as_parse = |line: usize| {
        move |e: NetlistError| NetlistError::Parse {
            line,
            col: 1,
            message: e.to_string(),
        }
    };
    let overlay_gate = |circuit: &Circuit, line: usize, net: &str| match circuit.find(net) {
        Some(Signal::Gate(id)) => Ok(id),
        Some(Signal::Input(_)) => Err(NetlistError::Parse {
            line,
            col: 1,
            message: format!("statim directive targets primary input `{net}`, not a gate"),
        }),
        None => Err(NetlistError::UndefinedName {
            name: net.to_string(),
        }),
    };
    match d {
        Directive::Drive { line, net, value } => {
            let id = overlay_gate(circuit, line, net)?;
            circuit.set_drive(id, value).map_err(as_parse(line))
        }
        Directive::Pad { line, net, value } => {
            let id = overlay_gate(circuit, line, net)?;
            circuit.set_pad(id, value).map_err(as_parse(line))
        }
        Directive::ClockPeriod { line, value } => {
            circuit.set_clock_period(value).map_err(as_parse(line))
        }
        Directive::ClockDepth { line, value } => {
            circuit.set_tree_depth(value).map_err(as_parse(line))
        }
        Directive::ConstraintSetup { line, value } => {
            circuit.set_setup_margin(value).map_err(as_parse(line))
        }
        Directive::ConstraintHold { line, value } => {
            circuit.set_hold_margin(value).map_err(as_parse(line))
        }
    }
}

/// Parses the tail of a `# statim ...` directive comment.
fn parse_directive<'a>(raw: &str, line: usize, directive: &'a str) -> Result<Directive<'a>> {
    let mut fields = directive.split_whitespace();
    let bad = |message: String| NetlistError::Parse {
        line,
        col: crate::col_in(raw, directive),
        message,
    };
    let verb = fields.next().unwrap_or("");
    let parsed = match verb {
        "drive" | "pad" => {
            let net = fields
                .next()
                .ok_or_else(|| bad(format!("statim {verb} needs a net name and a value")))?;
            let value = fields
                .next()
                .ok_or_else(|| bad(format!("statim {verb} {net} needs a value")))?;
            let value: f64 = value
                .parse()
                .map_err(|_| bad(format!("invalid {verb} value `{value}`")))?;
            if verb == "drive" {
                Directive::Drive { line, net, value }
            } else {
                Directive::Pad { line, net, value }
            }
        }
        "clock" => {
            let field = fields.next().ok_or_else(|| {
                bad("statim clock needs a field (period or depth) and a value".into())
            })?;
            let value = fields
                .next()
                .ok_or_else(|| bad(format!("statim clock {field} needs a value")))?;
            match field {
                "period" => Directive::ClockPeriod {
                    line,
                    value: value
                        .parse()
                        .map_err(|_| bad(format!("invalid clock period `{value}`")))?,
                },
                "depth" => Directive::ClockDepth {
                    line,
                    value: value
                        .parse()
                        .map_err(|_| bad(format!("invalid clock depth `{value}`")))?,
                },
                other => {
                    return Err(bad(format!(
                        "unknown clock field `{other}` (expected period or depth)"
                    )))
                }
            }
        }
        "constraint" => {
            let field = fields.next().ok_or_else(|| {
                bad("statim constraint needs a field (setup or hold) and a value".into())
            })?;
            let value = fields
                .next()
                .ok_or_else(|| bad(format!("statim constraint {field} needs a value")))?;
            let value: f64 = value
                .parse()
                .map_err(|_| bad(format!("invalid constraint {field} value `{value}`")))?;
            match field {
                "setup" => Directive::ConstraintSetup { line, value },
                "hold" => Directive::ConstraintHold { line, value },
                other => {
                    return Err(bad(format!(
                        "unknown constraint field `{other}` (expected setup or hold)"
                    )))
                }
            }
        }
        other => {
            return Err(bad(format!(
                "unknown statim directive `{other}` (expected drive, pad, clock or constraint)"
            )))
        }
    };
    if let Some(extra) = fields.next() {
        return Err(bad(format!("trailing field `{extra}` after statim {verb}")));
    }
    Ok(parsed)
}

fn strip_decl<'a>(line: &'a str, keyword: &str) -> Option<&'a str> {
    let rest = line.strip_prefix(keyword)?.trim();
    let rest = rest.strip_prefix('(')?;
    let rest = rest.strip_suffix(')')?;
    Some(rest.trim())
}

/// Serializes a circuit to `.bench` text.
pub fn write(circuit: &Circuit) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "# {}", circuit.name());
    if circuit.is_sequential() {
        let _ = writeln!(
            out,
            "# {} inputs, {} outputs, {} gates, {} registers",
            circuit.true_input_count(),
            circuit.output_count(),
            circuit.gate_count(),
            circuit.registers().len()
        );
    } else {
        let _ = writeln!(
            out,
            "# {} inputs, {} outputs, {} gates",
            circuit.input_count(),
            circuit.output_count(),
            circuit.gate_count()
        );
    }
    // Register Qs are pseudo-inputs: they come back from the DFF lines,
    // not INPUT declarations.
    for pi in circuit.true_input_names() {
        let _ = writeln!(out, "INPUT({pi})");
    }
    // .bench outputs are *net* names: emit the driving net of each PO
    // (output aliases such as "cor0" do not exist as nets).
    for &(_, sig) in circuit.outputs() {
        let _ = writeln!(out, "OUTPUT({})", circuit.signal_name(sig));
    }
    for r in circuit.registers() {
        let d =
            r.d.map(|s| circuit.signal_name(s))
                .unwrap_or("<unconnected>");
        let _ = writeln!(out, "{} = DFF({d})", r.name);
    }
    for g in circuit.gates() {
        let args: Vec<&str> = g.inputs.iter().map(|&s| circuit.signal_name(s)).collect();
        let _ = writeln!(
            out,
            "{} = {}({})",
            g.name,
            g.kind.bench_name(),
            args.join(", ")
        );
    }
    // ECO overlays, only where they differ from the defaults — unedited
    // circuits keep their classic byte-exact form. `{}` on f64 prints
    // the shortest round-trip-exact decimal, so parse(write(c)) == c.
    for g in circuit.gates() {
        if g.drive != 1.0 {
            let _ = writeln!(out, "# statim drive {} {}", g.name, g.drive);
        }
        if g.pad != 0.0 {
            let _ = writeln!(out, "# statim pad {} {}", g.name, g.pad);
        }
    }
    // Clock / constraint directives, non-default values only.
    let seq = circuit.seq_spec();
    if let Some(period) = seq.period {
        let _ = writeln!(out, "# statim clock period {period}");
    }
    if let Some(depth) = seq.tree_depth {
        let _ = writeln!(out, "# statim clock depth {depth}");
    }
    if seq.setup_margin != 0.0 {
        let _ = writeln!(out, "# statim constraint setup {}", seq.setup_margin);
    }
    if seq.hold_margin != 0.0 {
        let _ = writeln!(out, "# statim constraint hold {}", seq.hold_margin);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const C17: &str = "\
# c17 (reduced)
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)

OUTPUT(22)
OUTPUT(23)

10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
";

    #[test]
    fn parses_c17() {
        let c = parse("c17", C17).unwrap();
        assert_eq!(c.input_count(), 5);
        assert_eq!(c.output_count(), 2);
        assert_eq!(c.gate_count(), 6);
        assert_eq!(c.depth(), 3);
        assert_eq!(c.path_count(), 11);
    }

    #[test]
    fn round_trips() {
        let c = parse("c17", C17).unwrap();
        let text = write(&c);
        let c2 = parse("c17", &text).unwrap();
        assert_eq!(c.gate_count(), c2.gate_count());
        assert_eq!(c.depth(), c2.depth());
        assert_eq!(c.path_count(), c2.path_count());
        // Same gate names and kinds.
        for (a, b) in c.gates().iter().zip(c2.gates()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.kind, b.kind);
        }
    }

    #[test]
    fn forward_references_resolve() {
        let text = "\
INPUT(a)
OUTPUT(z)
z = NOT(y)
y = NOT(a)
";
        let c = parse("fwd", text).unwrap();
        assert_eq!(c.gate_count(), 2);
        assert_eq!(c.depth(), 2);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# hi\n\nINPUT(a)  # inline\nOUTPUT(b)\nb = NOT(a)\n";
        let c = parse("t", text).unwrap();
        assert_eq!(c.gate_count(), 1);
    }

    #[test]
    fn error_on_unknown_function() {
        let text = "INPUT(a)\nOUTPUT(b)\nb = MAJ(a, a, a)\n";
        match parse("t", text) {
            Err(NetlistError::UnsupportedGate {
                function,
                arity,
                line,
            }) => {
                assert_eq!(function, "MAJ");
                assert_eq!(arity, 3);
                assert_eq!(line, 3);
            }
            other => panic!("expected UnsupportedGate, got {other:?}"),
        }
    }

    #[test]
    fn error_on_undefined_net() {
        let text = "INPUT(a)\nOUTPUT(b)\nb = NOT(ghost)\n";
        assert!(matches!(
            parse("t", text),
            Err(NetlistError::UndefinedName { .. })
        ));
    }

    #[test]
    fn error_on_malformed_line() {
        assert!(matches!(
            parse("t", "INPUT(a)\nwat\n"),
            Err(NetlistError::Parse { line: 2, .. })
        ));
        assert!(matches!(
            parse("t", "x = NAND(a, b"),
            Err(NetlistError::Parse { line: 1, .. })
        ));
        assert!(parse("t", "x = (a)").is_err());
    }

    #[test]
    fn parse_errors_carry_line_and_column() {
        match parse("t", "") {
            Err(NetlistError::Parse {
                line: 1, col: 1, ..
            }) => {}
            other => panic!("expected empty-netlist error, got {other:?}"),
        }
        match parse("t", "INPUT(a)\nx = NAND(a, b") {
            Err(NetlistError::Parse { line: 2, col, .. }) => assert!(col > 1, "col {col}"),
            other => panic!("expected Parse, got {other:?}"),
        }
        match parse("t", "INPUT(a)\n   wat") {
            Err(NetlistError::Parse {
                line: 2, col: 4, ..
            }) => {}
            other => panic!("expected Parse at col 4, got {other:?}"),
        }
    }

    #[test]
    fn eco_overlays_round_trip() {
        let mut c = parse("c17", C17).unwrap();
        let Some(Signal::Gate(g10)) = c.find("10") else {
            panic!("gate 10 exists")
        };
        let Some(Signal::Gate(g22)) = c.find("22") else {
            panic!("gate 22 exists")
        };
        c.set_drive(g10, 1.75).unwrap();
        c.set_pad(g22, 3.25e-12).unwrap();
        let text = write(&c);
        assert!(text.contains("# statim drive 10 1.75"));
        assert!(text.contains("# statim pad 22 0.00000000000325"));
        let c2 = parse("c17", &text).unwrap();
        assert_eq!(c2.gate(g10).drive, 1.75);
        assert_eq!(c2.gate(g22).pad, 3.25e-12);
        // Full byte-exact round trip, overlays included.
        assert_eq!(write(&c2), text);
        // Unedited circuits never grow directives.
        assert!(!write(&parse("c17", C17).unwrap()).contains("statim"));
    }

    #[test]
    fn malformed_directives_fail_typed() {
        let base = "INPUT(a)\nOUTPUT(b)\nb = NOT(a)\n";
        for (extra, want_line) in [
            ("# statim boost b 2.0\n", 4),
            ("# statim drive b\n", 4),
            ("# statim drive b two\n", 4),
            ("# statim drive b 2.0 junk\n", 4),
            ("# statim drive b -1.0\n", 4),
            ("# statim pad b -1e-12\n", 4),
            ("# statim drive a 2.0\n", 4),
        ] {
            let text = format!("{base}{extra}");
            match parse("t", &text) {
                Err(NetlistError::Parse { line, .. }) => assert_eq!(line, want_line, "{extra}"),
                other => panic!("`{extra}` should fail as Parse, got {other:?}"),
            }
        }
        assert!(matches!(
            parse("t", &format!("{base}# statim drive ghost 2.0\n")),
            Err(NetlistError::UndefinedName { .. })
        ));
    }

    const S_TINY: &str = "\
# tiny sequential loop
INPUT(a)
OUTPUT(z)
r0 = DFF(n1)
n1 = NAND(a, r0)
z = NOT(r0)
# statim clock period 1e-09
# statim constraint setup 2e-11
";

    #[test]
    fn parses_sequential_bench() {
        let c = parse("stiny", S_TINY).unwrap();
        assert!(c.is_sequential());
        assert_eq!(c.registers().len(), 1);
        assert_eq!(c.true_input_count(), 1);
        assert_eq!(c.input_count(), 2);
        assert_eq!(c.gate_count(), 2);
        let r = &c.registers()[0];
        assert_eq!(r.name, "r0");
        assert_eq!(r.line, 4);
        assert_eq!(r.d, c.find("n1"));
        assert_eq!(c.seq_spec().period, Some(1e-9));
        assert_eq!(c.seq_spec().setup_margin, 2e-11);
        assert_eq!(c.seq_spec().hold_margin, 0.0);
    }

    #[test]
    fn sequential_round_trips_structurally() {
        let c = parse("stiny", S_TINY).unwrap();
        let text = write(&c);
        assert!(text.contains("r0 = DFF(n1)"));
        assert!(text.contains("# statim clock period 0.000000001"));
        assert!(text.contains("# statim constraint setup 0.00000000002"));
        assert!(!text.contains("INPUT(r0)"));
        let c2 = parse("stiny", &text).unwrap();
        assert_eq!(c, c2);
        // And the second serialization is byte-stable.
        assert_eq!(write(&c2), text);
    }

    #[test]
    fn dff_feedback_through_gates_resolves() {
        // D driver defined after the DFF, reading the DFF's own Q: the
        // loop is cut at the register, so this must parse.
        let text = "\
INPUT(x)
OUTPUT(q)
q = DFF(d)
d = XOR(x, q)
";
        let c = parse("fb", text).unwrap();
        assert_eq!(c.registers().len(), 1);
        assert_eq!(c.registers()[0].d, c.find("d"));
    }

    #[test]
    fn dff_errors_are_typed() {
        // Wrong arity.
        match parse("t", "INPUT(a)\nq = DFF(a, a)\n") {
            Err(NetlistError::Parse { line: 2, .. }) => {}
            other => panic!("expected Parse for 2-input DFF, got {other:?}"),
        }
        // Undefined D net.
        assert!(matches!(
            parse("t", "INPUT(a)\nOUTPUT(q)\nq = DFF(ghost)\n"),
            Err(NetlistError::UndefinedName { .. })
        ));
        // Duplicate Q name.
        assert!(matches!(
            parse("t", "INPUT(a)\na = DFF(a)\n"),
            Err(NetlistError::DuplicateName { .. })
        ));
    }

    #[test]
    fn malformed_clock_directives_fail_typed() {
        let base = "INPUT(a)\nOUTPUT(q)\nq = DFF(n)\nn = NOT(a)\n";
        for extra in [
            "# statim clock\n",
            "# statim clock period\n",
            "# statim clock period fast\n",
            "# statim clock period 1e-9 junk\n",
            "# statim clock period -1e-9\n",
            "# statim clock period 0\n",
            "# statim clock jitter 1e-12\n",
            "# statim clock depth 0\n",
            "# statim clock depth 99\n",
            "# statim constraint\n",
            "# statim constraint setup\n",
            "# statim constraint setup tight\n",
            "# statim constraint slew 1e-12\n",
            "# statim constraint hold -1e-12\n",
        ] {
            let text = format!("{base}{extra}");
            match parse("t", &text) {
                Err(NetlistError::Parse { line: 5, .. }) => {}
                other => panic!("`{extra}` should fail as Parse at line 5, got {other:?}"),
            }
        }
    }

    #[test]
    fn supports_all_library_gates() {
        let text = "\
INPUT(a)
INPUT(b)
OUTPUT(z)
c = AND(a, b)
d = OR(a, c)
e = XOR(c, d)
f = XNOR(d, e)
g = NOR(e, f)
h = BUFF(g)
z = NOT(h)
";
        let c = parse("all", text).unwrap();
        assert_eq!(c.gate_count(), 7);
        let text2 = write(&c);
        assert!(text2.contains("XNOR"));
        assert!(text2.contains("BUFF"));
        assert_eq!(parse("all2", &text2).unwrap().gate_count(), 7);
    }
}
