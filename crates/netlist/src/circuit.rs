//! Circuit netlists: combinational gates plus optional D flip-flops.
//!
//! A [`Circuit`] is a directed acyclic graph of gates over named primary
//! inputs and outputs — the object the methodology maps to a timing graph.
//! Construction is incremental through [`Circuit::add_input`] /
//! [`Circuit::add_gate`] / [`Circuit::mark_output`]; structural validity
//! (arity, dangling references, acyclicity by construction) is enforced as
//! the circuit is built.
//!
//! Sequential circuits add [`Register`]s (edge-triggered DFFs): each
//! register's Q output is modeled as a pseudo primary input appended after
//! the true inputs, so the combinational core stays a DAG — feedback loops
//! are cut at the registers. The [`SequentialSpec`] carries the clock
//! period, clock-tree depth, and setup/hold margins parsed from
//! `# statim clock` / `# statim constraint` directives.

use crate::error::NetlistError;
use crate::Result;
use statim_process::GateKind;
use std::collections::HashMap;

/// Identifier of a gate within its circuit (dense index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GateId(pub u32);

impl GateId {
    /// The dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The driver of a signal: a primary input or a gate output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Signal {
    /// Primary input by index.
    Input(u32),
    /// Output of a gate.
    Gate(GateId),
}

/// A gate instance.
#[derive(Debug, Clone, PartialEq)]
pub struct Gate {
    /// Instance name (unique within the circuit).
    pub name: String,
    /// Gate type with fan-in.
    pub kind: GateKind,
    /// Input connections, length = `kind.fan_in()`.
    pub inputs: Vec<Signal>,
    /// Drive-strength multiplier from an ECO resize (1.0 = nominal).
    /// Both current-factor coefficients of the delay model scale by
    /// `1/drive`, so a 2x-sized gate is twice as fast at equal load.
    pub drive: f64,
    /// Delay pad in seconds from an ECO retime (0.0 = none), added to
    /// the gate's nominal propagation delay.
    pub pad: f64,
}

/// An edge-triggered D flip-flop.
///
/// The register's Q output is a pseudo primary input (index `q_input`
/// into the circuit's input list); its D pin samples `d` on each clock
/// edge. Registers are ideal (zero clock-to-Q delay) — the launch clock
/// arrival *is* the data departure time.
#[derive(Debug, Clone)]
pub struct Register {
    /// Instance name — also the name of the Q net.
    pub name: String,
    /// Driver of the D pin. `None` until connected (parsers connect D
    /// after all gates resolve, since `.bench` allows forward references).
    pub d: Option<Signal>,
    /// Index of the Q pseudo-input in the circuit's input list.
    pub q_input: u32,
    /// Source line of the defining `DFF(...)` cell (diagnostics only;
    /// two circuits that differ only in register source lines compare
    /// equal, so `parse(write(c)) == c` holds).
    pub line: usize,
}

impl PartialEq for Register {
    fn eq(&self, other: &Self) -> bool {
        // `line` is a diagnostic annotation, not structure.
        self.name == other.name && self.d == other.d && self.q_input == other.q_input
    }
}

/// Clock and timing-check constraints for a sequential circuit, carried
/// by `# statim clock` / `# statim constraint` directives in `.bench`.
#[derive(Debug, Clone, PartialEq)]
pub struct SequentialSpec {
    /// Clock period in seconds (`# statim clock period`). `None` means
    /// the analysis must be given a period (or solve for one).
    pub period: Option<f64>,
    /// Clock-tree depth override (`# statim clock depth`). `None` lets
    /// the analysis size a balanced tree to the register count.
    pub tree_depth: Option<usize>,
    /// Setup margin in seconds (`# statim constraint setup`).
    pub setup_margin: f64,
    /// Hold margin in seconds (`# statim constraint hold`).
    pub hold_margin: f64,
}

impl Default for SequentialSpec {
    fn default() -> Self {
        SequentialSpec {
            period: None,
            tree_depth: None,
            setup_margin: 0.0,
            hold_margin: 0.0,
        }
    }
}

/// A netlist: combinational gates plus optional registers.
///
/// Gates are stored in insertion order, which is guaranteed topological:
/// a gate may only reference inputs and previously added gates, so the
/// graph is acyclic by construction. Register Q outputs are pseudo
/// primary inputs appended *after* all true inputs (enforced by
/// [`Circuit::add_input`]), which keeps the input order canonical so
/// serialization round-trips structurally.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Circuit {
    name: String,
    input_names: Vec<String>,
    gates: Vec<Gate>,
    outputs: Vec<(String, Signal)>,
    names: HashMap<String, Signal>,
    registers: Vec<Register>,
    seq: SequentialSpec,
}

impl Circuit {
    /// Creates an empty circuit.
    pub fn new(name: impl Into<String>) -> Self {
        Circuit {
            name: name.into(),
            ..Circuit::default()
        }
    }

    /// Circuit name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a primary input; returns its signal.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateName`] if the name is taken and
    /// [`NetlistError::InvalidConfig`] once any register exists — Q
    /// pseudo-inputs must stay contiguous at the tail of the input list
    /// so the input order is canonical.
    pub fn add_input(&mut self, name: impl Into<String>) -> Result<Signal> {
        let name = name.into();
        if !self.registers.is_empty() {
            return Err(NetlistError::InvalidConfig {
                message: format!(
                    "cannot add primary input `{name}` after registers: \
                     true inputs must precede all register Q pseudo-inputs"
                ),
            });
        }
        if self.names.contains_key(&name) {
            return Err(NetlistError::DuplicateName { name });
        }
        let sig = Signal::Input(self.input_names.len() as u32);
        self.names.insert(name.clone(), sig);
        self.input_names.push(name);
        Ok(sig)
    }

    /// Adds a D flip-flop named `name` (also its Q net name) defined at
    /// source `line`; returns the Q pseudo-input signal. The D pin starts
    /// unconnected — call [`Circuit::connect_register_d`] once the driver
    /// exists (possibly after gates that themselves read this Q).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateName`] if the name is taken.
    pub fn add_register(&mut self, name: impl Into<String>, line: usize) -> Result<Signal> {
        let name = name.into();
        if self.names.contains_key(&name) {
            return Err(NetlistError::DuplicateName { name });
        }
        let q_input = self.input_names.len() as u32;
        let sig = Signal::Input(q_input);
        self.names.insert(name.clone(), sig);
        self.input_names.push(name.clone());
        self.registers.push(Register {
            name,
            d: None,
            q_input,
            line,
        });
        Ok(sig)
    }

    /// Connects register `index`'s D pin to `driver`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InvalidConfig`] for an out-of-range index
    /// or an already-connected D pin, and
    /// [`NetlistError::DanglingSignal`] if the driver does not exist.
    pub fn connect_register_d(&mut self, index: usize, driver: Signal) -> Result<()> {
        let count = self.registers.len();
        let reg = self
            .registers
            .get_mut(index)
            .ok_or_else(|| NetlistError::InvalidConfig {
                message: format!("register index {index} out of range ({count} registers)"),
            })?;
        if reg.d.is_some() {
            return Err(NetlistError::InvalidConfig {
                message: format!("register `{}` D pin is already connected", reg.name),
            });
        }
        let name = reg.name.clone();
        if !self.signal_exists(driver) {
            return Err(NetlistError::DanglingSignal { gate: name });
        }
        self.registers[index].d = Some(driver);
        Ok(())
    }

    /// All registers in definition order.
    pub fn registers(&self) -> &[Register] {
        &self.registers
    }

    /// True when the circuit contains at least one register.
    pub fn is_sequential(&self) -> bool {
        !self.registers.is_empty()
    }

    /// Number of *true* primary inputs (excluding register Q
    /// pseudo-inputs, which sit at the tail of the input list).
    pub fn true_input_count(&self) -> usize {
        self.input_names.len() - self.registers.len()
    }

    /// Names of the true primary inputs (excluding register Qs).
    pub fn true_input_names(&self) -> &[String] {
        &self.input_names[..self.true_input_count()]
    }

    /// Clock / constraint spec (defaults when no directives were given).
    pub fn seq_spec(&self) -> &SequentialSpec {
        &self.seq
    }

    /// Sets the clock period in seconds.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InvalidConfig`] for a non-finite or
    /// non-positive period.
    pub fn set_clock_period(&mut self, period: f64) -> Result<()> {
        if !period.is_finite() || period <= 0.0 {
            return Err(NetlistError::InvalidConfig {
                message: format!("clock period {period} must be finite and positive"),
            });
        }
        self.seq.period = Some(period);
        Ok(())
    }

    /// Sets the clock-tree depth override.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InvalidConfig`] for depth 0 or above 32.
    pub fn set_tree_depth(&mut self, depth: usize) -> Result<()> {
        if depth == 0 || depth > 32 {
            return Err(NetlistError::InvalidConfig {
                message: format!("clock tree depth {depth} must be in 1..=32"),
            });
        }
        self.seq.tree_depth = Some(depth);
        Ok(())
    }

    /// Sets the setup margin in seconds.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InvalidConfig`] for a non-finite or
    /// negative margin.
    pub fn set_setup_margin(&mut self, margin: f64) -> Result<()> {
        if !margin.is_finite() || margin < 0.0 {
            return Err(NetlistError::InvalidConfig {
                message: format!("setup margin {margin} must be finite and non-negative"),
            });
        }
        self.seq.setup_margin = margin;
        Ok(())
    }

    /// Sets the hold margin in seconds.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InvalidConfig`] for a non-finite or
    /// negative margin.
    pub fn set_hold_margin(&mut self, margin: f64) -> Result<()> {
        if !margin.is_finite() || margin < 0.0 {
            return Err(NetlistError::InvalidConfig {
                message: format!("hold margin {margin} must be finite and non-negative"),
            });
        }
        self.seq.hold_margin = margin;
        Ok(())
    }

    /// Adds a gate driven by `inputs`; returns its output signal.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::ArityMismatch`] if `inputs.len()` differs
    /// from the gate's fan-in, [`NetlistError::DuplicateName`] for a name
    /// clash, and [`NetlistError::DanglingSignal`] if an input refers to a
    /// gate or PI that does not exist yet (which also rules out cycles).
    pub fn add_gate(
        &mut self,
        name: impl Into<String>,
        kind: GateKind,
        inputs: &[Signal],
    ) -> Result<Signal> {
        let name = name.into();
        if self.names.contains_key(&name) {
            return Err(NetlistError::DuplicateName { name });
        }
        if inputs.len() != kind.fan_in() {
            return Err(NetlistError::ArityMismatch {
                gate: name,
                expected: kind.fan_in(),
                got: inputs.len(),
            });
        }
        for &s in inputs {
            if !self.signal_exists(s) {
                return Err(NetlistError::DanglingSignal { gate: name });
            }
        }
        let id = GateId(self.gates.len() as u32);
        let sig = Signal::Gate(id);
        self.names.insert(name.clone(), sig);
        self.gates.push(Gate {
            name,
            kind,
            inputs: inputs.to_vec(),
            drive: 1.0,
            pad: 0.0,
        });
        Ok(sig)
    }

    /// Marks `signal` as a primary output under `name`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DanglingSignal`] if the signal does not
    /// exist. Output names live in a separate namespace and may alias a
    /// gate name (as in `.bench`, where outputs are plain net names).
    pub fn mark_output(&mut self, name: impl Into<String>, signal: Signal) -> Result<()> {
        let name = name.into();
        if !self.signal_exists(signal) {
            return Err(NetlistError::DanglingSignal { gate: name });
        }
        self.outputs.push((name, signal));
        Ok(())
    }

    fn signal_exists(&self, s: Signal) -> bool {
        match s {
            Signal::Input(i) => (i as usize) < self.input_names.len(),
            Signal::Gate(g) => g.index() < self.gates.len(),
        }
    }

    /// Number of gates.
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// Number of primary inputs.
    pub fn input_count(&self) -> usize {
        self.input_names.len()
    }

    /// Number of primary outputs.
    pub fn output_count(&self) -> usize {
        self.outputs.len()
    }

    /// Gate by id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range (ids are only minted by this
    /// circuit, so this indicates cross-circuit misuse). Use
    /// [`Circuit::try_gate`] when the id may come from another circuit.
    pub fn gate(&self, id: GateId) -> &Gate {
        &self.gates[id.index()]
    }

    /// Gate by id, rejecting ids minted by a different circuit.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InvalidConfig`] naming the offending id
    /// when it is out of range for this circuit.
    pub fn try_gate(&self, id: GateId) -> Result<&Gate> {
        self.gates
            .get(id.index())
            .ok_or_else(|| NetlistError::InvalidConfig {
                message: format!(
                    "gate id {} out of range for circuit `{}` with {} gates",
                    id.index(),
                    self.name,
                    self.gates.len()
                ),
            })
    }

    /// Replaces a gate's type in place (an ECO swap). The new kind must
    /// have the same fan-in — a swap never rewires pins.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InvalidConfig`] for a foreign id and
    /// [`NetlistError::ArityMismatch`] when the fan-ins differ.
    pub fn set_gate_kind(&mut self, id: GateId, kind: GateKind) -> Result<()> {
        self.try_gate(id)?;
        let gate = &mut self.gates[id.index()];
        if kind.fan_in() != gate.inputs.len() {
            return Err(NetlistError::ArityMismatch {
                gate: gate.name.clone(),
                expected: kind.fan_in(),
                got: gate.inputs.len(),
            });
        }
        gate.kind = kind;
        Ok(())
    }

    /// Reconnects one input pin of a gate to a different driver (an ECO
    /// wire change). The driver must already exist and, when it is a
    /// gate, must precede the sink in topological order — the invariant
    /// that keeps the netlist acyclic by construction.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InvalidConfig`] for a foreign id, an
    /// out-of-range pin, or a driver at or after the sink in topological
    /// order; [`NetlistError::DanglingSignal`] for a driver that does
    /// not exist.
    pub fn rewire_input(&mut self, id: GateId, pin: usize, driver: Signal) -> Result<()> {
        self.try_gate(id)?;
        if !self.signal_exists(driver) {
            return Err(NetlistError::DanglingSignal {
                gate: self.gates[id.index()].name.clone(),
            });
        }
        let gate = &self.gates[id.index()];
        if pin >= gate.inputs.len() {
            return Err(NetlistError::InvalidConfig {
                message: format!(
                    "pin {pin} out of range for gate `{}` with {} inputs",
                    gate.name,
                    gate.inputs.len()
                ),
            });
        }
        if let Signal::Gate(src) = driver {
            if src.index() >= id.index() {
                return Err(NetlistError::InvalidConfig {
                    message: format!(
                        "driver `{}` does not precede sink `{}` in topological order \
                         (the edge could close a cycle)",
                        self.gates[src.index()].name,
                        gate.name
                    ),
                });
            }
        }
        self.gates[id.index()].inputs[pin] = driver;
        Ok(())
    }

    /// Sets a gate's drive-strength multiplier (an ECO resize).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InvalidConfig`] for a foreign id or a
    /// non-finite / non-positive drive.
    pub fn set_drive(&mut self, id: GateId, drive: f64) -> Result<()> {
        self.try_gate(id)?;
        if !drive.is_finite() || drive <= 0.0 {
            return Err(NetlistError::InvalidConfig {
                message: format!(
                    "drive {drive} for gate `{}` must be finite and positive",
                    self.gates[id.index()].name
                ),
            });
        }
        self.gates[id.index()].drive = drive;
        Ok(())
    }

    /// Sets a gate's retiming pad in seconds (an ECO retime).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InvalidConfig`] for a foreign id or a
    /// non-finite / negative pad.
    pub fn set_pad(&mut self, id: GateId, pad: f64) -> Result<()> {
        self.try_gate(id)?;
        if !pad.is_finite() || pad < 0.0 {
            return Err(NetlistError::InvalidConfig {
                message: format!(
                    "pad {pad} for gate `{}` must be finite and non-negative",
                    self.gates[id.index()].name
                ),
            });
        }
        self.gates[id.index()].pad = pad;
        Ok(())
    }

    /// All gates in topological (insertion) order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Iterator of gate ids in topological order.
    pub fn gate_ids(&self) -> impl Iterator<Item = GateId> {
        (0..self.gates.len() as u32).map(GateId)
    }

    /// Primary input names.
    pub fn input_names(&self) -> &[String] {
        &self.input_names
    }

    /// Primary outputs as `(name, driver)` pairs.
    pub fn outputs(&self) -> &[(String, Signal)] {
        &self.outputs
    }

    /// Resolves a name to its signal (inputs and gate outputs).
    pub fn find(&self, name: &str) -> Option<Signal> {
        self.names.get(name).copied()
    }

    /// Name of the net driven by `signal`.
    ///
    /// # Panics
    ///
    /// Panics if the signal refers past this circuit's inputs or gates.
    /// Use [`Circuit::try_signal_name`] for signals of uncertain origin.
    pub fn signal_name(&self, signal: Signal) -> &str {
        match signal {
            Signal::Input(i) => &self.input_names[i as usize],
            Signal::Gate(g) => &self.gates[g.index()].name,
        }
    }

    /// Name of the net driven by `signal`, rejecting signals that do not
    /// exist in this circuit.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DanglingSignal`] naming the offending
    /// reference when the signal is out of range.
    pub fn try_signal_name(&self, signal: Signal) -> Result<&str> {
        let name = match signal {
            Signal::Input(i) => self.input_names.get(i as usize).map(String::as_str),
            Signal::Gate(g) => self.gates.get(g.index()).map(|g| g.name.as_str()),
        };
        name.ok_or_else(|| NetlistError::DanglingSignal {
            gate: match signal {
                Signal::Input(i) => format!("<input {i}>"),
                Signal::Gate(g) => format!("<gate {}>", g.index()),
            },
        })
    }

    /// Per-gate fan-out pin counts: how many gate input pins each gate
    /// output drives. Primary-output connections are *not* counted as
    /// pins (they contribute wire load only), matching the delay model's
    /// `Cn` definition.
    pub fn fanout_pins(&self) -> Vec<usize> {
        let mut pins = vec![0usize; self.gates.len()];
        for g in &self.gates {
            for &s in &g.inputs {
                if let Signal::Gate(src) = s {
                    pins[src.index()] += 1;
                }
            }
        }
        // Register D pins load their drivers like any other gate pin.
        for r in &self.registers {
            if let Some(Signal::Gate(src)) = r.d {
                pins[src.index()] += 1;
            }
        }
        pins
    }

    /// Ids of gates whose output drives no gate pin and is not a primary
    /// output (dead logic). A well-formed benchmark has none.
    pub fn dangling_gates(&self) -> Vec<GateId> {
        let pins = self.fanout_pins();
        let mut is_po = vec![false; self.gates.len()];
        for &(_, s) in &self.outputs {
            if let Signal::Gate(g) = s {
                is_po[g.index()] = true;
            }
        }
        self.gate_ids()
            .filter(|g| pins[g.index()] == 0 && !is_po[g.index()])
            .collect()
    }

    /// Logic depth: the maximum number of gates on any input-to-output
    /// path.
    pub fn depth(&self) -> usize {
        let mut level = vec![0usize; self.gates.len()];
        let mut max = 0;
        for (i, g) in self.gates.iter().enumerate() {
            let l = 1 + g
                .inputs
                .iter()
                .map(|s| match s {
                    Signal::Input(_) => 0,
                    Signal::Gate(src) => level[src.index()],
                })
                .max()
                .unwrap_or(0);
            level[i] = l;
            max = max.max(l);
        }
        max
    }

    /// Per-gate level (longest gate count from any primary input,
    /// 1-based).
    pub fn levels(&self) -> Vec<usize> {
        let mut level = vec![0usize; self.gates.len()];
        for (i, g) in self.gates.iter().enumerate() {
            level[i] = 1 + g
                .inputs
                .iter()
                .map(|s| match s {
                    Signal::Input(_) => 0,
                    Signal::Gate(src) => level[src.index()],
                })
                .max()
                .unwrap_or(0);
        }
        level
    }

    /// Number of distinct input→output paths, saturating at `u128::MAX`.
    /// (c6288 famously has ~10²⁰ paths.)
    pub fn path_count(&self) -> u128 {
        let mut paths = vec![0u128; self.gates.len()];
        for (i, g) in self.gates.iter().enumerate() {
            let mut total: u128 = 0;
            for s in &g.inputs {
                let inc = match s {
                    Signal::Input(_) => 1,
                    Signal::Gate(src) => paths[src.index()],
                };
                total = total.saturating_add(inc);
            }
            paths[i] = total;
        }
        let mut out: u128 = 0;
        for &(_, s) in &self.outputs {
            let inc = match s {
                Signal::Input(_) => 1,
                Signal::Gate(g) => paths[g.index()],
            };
            out = out.saturating_add(inc);
        }
        out
    }

    /// Histogram of gate kinds, as `(kind, count)` sorted by count
    /// descending.
    pub fn kind_histogram(&self) -> Vec<(GateKind, usize)> {
        let mut map: HashMap<GateKind, usize> = HashMap::new();
        for g in &self.gates {
            *map.entry(g.kind).or_insert(0) += 1;
        }
        let mut v: Vec<(GateKind, usize)> = map.into_iter().collect();
        v.sort_by(|a, b| {
            b.1.cmp(&a.1)
                .then_with(|| format!("{}", a.0).cmp(&format!("{}", b.0)))
        });
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Result<Circuit> {
        // a, b -> n1 = NAND(a,b); n2 = NOT(n1); PO = n2
        let mut c = Circuit::new("tiny");
        let a = c.add_input("a")?;
        let b = c.add_input("b")?;
        let n1 = c.add_gate("n1", GateKind::Nand(2), &[a, b])?;
        let n2 = c.add_gate("n2", GateKind::Inv, &[n1])?;
        c.mark_output("out", n2)?;
        Ok(c)
    }

    #[test]
    fn build_and_query() -> Result<()> {
        let c = tiny()?;
        assert_eq!(c.gate_count(), 2);
        assert_eq!(c.input_count(), 2);
        assert_eq!(c.output_count(), 1);
        assert_eq!(c.depth(), 2);
        assert_eq!(c.path_count(), 2);
        let n1 = c
            .find("n1")
            .ok_or(NetlistError::UndefinedName { name: "n1".into() })?;
        assert_eq!(c.signal_name(n1), "n1");
        assert!(c.find("zzz").is_none());
        Ok(())
    }

    #[test]
    fn duplicate_names_rejected() -> Result<()> {
        let mut c = Circuit::new("t");
        let a = c.add_input("a")?;
        assert!(matches!(
            c.add_input("a"),
            Err(NetlistError::DuplicateName { .. })
        ));
        c.add_gate("g", GateKind::Inv, &[a])?;
        assert!(matches!(
            c.add_gate("g", GateKind::Inv, &[a]),
            Err(NetlistError::DuplicateName { .. })
        ));
        assert!(matches!(
            c.add_gate("a", GateKind::Inv, &[a]),
            Err(NetlistError::DuplicateName { .. })
        ));
        Ok(())
    }

    #[test]
    fn arity_checked() -> Result<()> {
        let mut c = Circuit::new("t");
        let a = c.add_input("a")?;
        assert!(matches!(
            c.add_gate("g", GateKind::Nand(2), &[a]),
            Err(NetlistError::ArityMismatch {
                expected: 2,
                got: 1,
                ..
            })
        ));
        Ok(())
    }

    #[test]
    fn dangling_signal_rejected() {
        let mut c = Circuit::new("t");
        let bogus = Signal::Gate(GateId(99));
        assert!(matches!(
            c.add_gate("g", GateKind::Inv, &[bogus]),
            Err(NetlistError::DanglingSignal { .. })
        ));
        assert!(c.mark_output("o", bogus).is_err());
    }

    #[test]
    fn try_accessors_reject_foreign_ids() -> Result<()> {
        let c = tiny()?;
        assert!(c.try_gate(GateId(0)).is_ok());
        assert!(matches!(
            c.try_gate(GateId(99)),
            Err(NetlistError::InvalidConfig { .. })
        ));
        assert_eq!(c.try_signal_name(Signal::Input(0))?, "a");
        assert!(matches!(
            c.try_signal_name(Signal::Gate(GateId(99))),
            Err(NetlistError::DanglingSignal { .. })
        ));
        assert!(c.try_signal_name(Signal::Input(17)).is_err());
        Ok(())
    }

    #[test]
    fn fanout_pins_counted() -> Result<()> {
        let mut c = Circuit::new("t");
        let a = c.add_input("a")?;
        let g1 = c.add_gate("g1", GateKind::Inv, &[a])?;
        let _g2 = c.add_gate("g2", GateKind::Inv, &[g1])?;
        let _g3 = c.add_gate("g3", GateKind::Nand(2), &[g1, a])?;
        let pins = c.fanout_pins();
        assert_eq!(pins[0], 2); // g1 feeds g2 and g3
        assert_eq!(pins[1], 0);
        assert_eq!(pins[2], 0);
        Ok(())
    }

    #[test]
    fn dangling_gates_found() -> Result<()> {
        let mut c = Circuit::new("t");
        let a = c.add_input("a")?;
        let g1 = c.add_gate("g1", GateKind::Inv, &[a])?;
        let g2 = c.add_gate("g2", GateKind::Inv, &[g1])?;
        let _dead = c.add_gate("dead", GateKind::Inv, &[g1])?;
        c.mark_output("o", g2)?;
        let d = c.dangling_gates();
        assert_eq!(d.len(), 1);
        assert_eq!(c.try_gate(d[0])?.name, "dead");
        Ok(())
    }

    #[test]
    fn levels_monotone_along_edges() -> Result<()> {
        let c = tiny()?;
        let lv = c.levels();
        assert_eq!(lv, vec![1, 2]);
        Ok(())
    }

    #[test]
    fn path_count_saturates() -> Result<()> {
        // A chain of 2-input gates where both inputs come from the
        // previous gate doubles the path count each level.
        let mut c = Circuit::new("exp");
        let a = c.add_input("a")?;
        let mut prev = c.add_gate("g0", GateKind::Nand(2), &[a, a])?;
        for i in 1..200 {
            prev = c.add_gate(format!("g{i}"), GateKind::Nand(2), &[prev, prev])?;
        }
        c.mark_output("o", prev)?;
        assert_eq!(c.path_count(), u128::MAX);
        Ok(())
    }

    #[test]
    fn kind_histogram_sorted() -> Result<()> {
        let c = tiny()?;
        let h = c.kind_histogram();
        assert_eq!(h.len(), 2);
        assert_eq!(h[0].1, 1);
        Ok(())
    }

    #[test]
    fn eco_mutators_enforce_invariants() -> Result<()> {
        let mut c = Circuit::new("t");
        let a = c.add_input("a")?;
        let b = c.add_input("b")?;
        let g1 = c.add_gate("g1", GateKind::Nand(2), &[a, b])?;
        let Signal::Gate(id1) = g1 else {
            unreachable!()
        };
        let g2 = c.add_gate("g2", GateKind::Inv, &[g1])?;
        let Signal::Gate(id2) = g2 else {
            unreachable!()
        };
        c.mark_output("o", g2)?;

        // Swap keeps arity; a fan-in change is rejected.
        c.set_gate_kind(id1, GateKind::Nor(2))?;
        assert_eq!(c.gate(id1).kind, GateKind::Nor(2));
        assert!(matches!(
            c.set_gate_kind(id1, GateKind::Inv),
            Err(NetlistError::ArityMismatch { .. })
        ));

        // Rewire honours pin bounds, existence, and topological order.
        c.rewire_input(id1, 1, a)?;
        assert_eq!(c.gate(id1).inputs[1], a);
        assert!(matches!(
            c.rewire_input(id1, 5, a),
            Err(NetlistError::InvalidConfig { .. })
        ));
        assert!(matches!(
            c.rewire_input(id1, 0, Signal::Gate(GateId(99))),
            Err(NetlistError::DanglingSignal { .. })
        ));
        // g2 -> g1 would point backwards (and could close a cycle).
        assert!(matches!(
            c.rewire_input(id1, 0, g2),
            Err(NetlistError::InvalidConfig { .. })
        ));
        // Self-loop is equally refused.
        assert!(matches!(
            c.rewire_input(id2, 0, g2),
            Err(NetlistError::InvalidConfig { .. })
        ));

        // Drive and pad validate their ranges.
        c.set_drive(id1, 2.0)?;
        assert_eq!(c.gate(id1).drive, 2.0);
        assert!(c.set_drive(id1, 0.0).is_err());
        assert!(c.set_drive(id1, f64::NAN).is_err());
        c.set_pad(id2, 1.5e-12)?;
        assert_eq!(c.gate(id2).pad, 1.5e-12);
        assert!(c.set_pad(id2, -1.0e-12).is_err());
        assert!(c.set_pad(id2, f64::INFINITY).is_err());
        Ok(())
    }

    #[test]
    fn registers_build_and_query() -> Result<()> {
        let mut c = Circuit::new("seq");
        let a = c.add_input("a")?;
        let q = c.add_register("r0", 3)?;
        let g = c.add_gate("g", GateKind::Nand(2), &[a, q])?;
        c.mark_output("o", g)?;
        c.connect_register_d(0, g)?;
        assert!(c.is_sequential());
        assert_eq!(c.input_count(), 2);
        assert_eq!(c.true_input_count(), 1);
        assert_eq!(c.true_input_names(), ["a".to_string()]);
        assert_eq!(c.registers().len(), 1);
        assert_eq!(c.registers()[0].d, Some(g));
        assert_eq!(c.registers()[0].line, 3);
        assert_eq!(c.signal_name(q), "r0");
        // Q behaves as an input for depth/level purposes (loop is cut).
        assert_eq!(c.depth(), 1);
        // The register D pin counts as fan-out load on its driver.
        assert_eq!(c.fanout_pins(), vec![1]);
        Ok(())
    }

    #[test]
    fn register_invariants_enforced() -> Result<()> {
        let mut c = Circuit::new("seq");
        let a = c.add_input("a")?;
        let _q = c.add_register("r0", 1)?;
        // True inputs may not follow registers (canonical input order).
        assert!(matches!(
            c.add_input("late"),
            Err(NetlistError::InvalidConfig { .. })
        ));
        // Duplicate names are rejected across inputs and registers.
        assert!(matches!(
            c.add_register("a", 2),
            Err(NetlistError::DuplicateName { .. })
        ));
        // D connection checks: range, existence, single connection.
        assert!(c.connect_register_d(7, a).is_err());
        assert!(matches!(
            c.connect_register_d(0, Signal::Gate(GateId(99))),
            Err(NetlistError::DanglingSignal { .. })
        ));
        c.connect_register_d(0, a)?;
        assert!(matches!(
            c.connect_register_d(0, a),
            Err(NetlistError::InvalidConfig { .. })
        ));
        Ok(())
    }

    #[test]
    fn sequential_spec_validates() -> Result<()> {
        let mut c = Circuit::new("seq");
        assert_eq!(c.seq_spec(), &SequentialSpec::default());
        c.set_clock_period(1e-9)?;
        c.set_tree_depth(4)?;
        c.set_setup_margin(20e-12)?;
        c.set_hold_margin(5e-12)?;
        assert_eq!(c.seq_spec().period, Some(1e-9));
        assert_eq!(c.seq_spec().tree_depth, Some(4));
        assert!(c.set_clock_period(0.0).is_err());
        assert!(c.set_clock_period(f64::NAN).is_err());
        assert!(c.set_tree_depth(0).is_err());
        assert!(c.set_tree_depth(33).is_err());
        assert!(c.set_setup_margin(-1e-12).is_err());
        assert!(c.set_hold_margin(f64::INFINITY).is_err());
        Ok(())
    }

    #[test]
    fn register_equality_ignores_line() -> Result<()> {
        let mut a = Circuit::new("s");
        let x = a.add_input("x")?;
        a.add_register("r", 5)?;
        a.connect_register_d(0, x)?;
        let mut b = Circuit::new("s");
        let x2 = b.add_input("x")?;
        b.add_register("r", 9)?;
        b.connect_register_d(0, x2)?;
        assert_eq!(a, b);
        Ok(())
    }

    #[test]
    fn output_may_alias_gate_name() -> Result<()> {
        let mut c = Circuit::new("t");
        let a = c.add_input("a")?;
        let g = c.add_gate("n", GateKind::Inv, &[a])?;
        // .bench outputs are net names, so this must be allowed.
        c.mark_output("n", g)?;
        assert_eq!(c.output_count(), 1);
        Ok(())
    }
}
