//! Structural Verilog subset: gate-level netlist writer and reader.
//!
//! Emits and parses the flat gate-primitive style many academic flows
//! exchange:
//!
//! ```verilog
//! module c17 (N1, N2, N3, N6, N7, N22, N23);
//!   input N1, N2, N3, N6, N7;
//!   output N22, N23;
//!   wire N10, N11, N16, N19;
//!   nand g10 (N10, N1, N3);
//!   ...
//! endmodule
//! ```
//!
//! Supported primitives: `not`, `buf`, `and`, `nand`, `or`, `nor`,
//! `xor`, `xnor` — the first terminal is the output, the rest are
//! inputs, exactly matching [`statim_process::GateKind`]'s library.

use crate::circuit::{Circuit, Signal};
use crate::error::NetlistError;
use crate::Result;
use statim_process::GateKind;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Serializes a circuit as structural Verilog.
pub fn write(circuit: &Circuit) -> String {
    let mut out = String::new();
    // Port list: inputs then output net names (deduplicated).
    let mut po_nets: Vec<&str> = circuit
        .outputs()
        .iter()
        .map(|&(_, s)| circuit.signal_name(s))
        .collect();
    po_nets.dedup();
    let ports: Vec<&str> = circuit
        .input_names()
        .iter()
        .map(String::as_str)
        .chain(po_nets.iter().copied())
        .collect();
    let _ = writeln!(
        out,
        "module {} ({});",
        sanitize(circuit.name()),
        ports.join(", ")
    );
    let _ = writeln!(
        out,
        "  input {};",
        circuit
            .input_names()
            .iter()
            .map(String::as_str)
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(out, "  output {};", po_nets.join(", "));
    let wires: Vec<&str> = circuit
        .gates()
        .iter()
        .map(|g| g.name.as_str())
        .filter(|n| !po_nets.contains(n))
        .collect();
    if !wires.is_empty() {
        let _ = writeln!(out, "  wire {};", wires.join(", "));
    }
    for (i, g) in circuit.gates().iter().enumerate() {
        let prim = primitive_name(g.kind);
        let args: Vec<&str> = std::iter::once(g.name.as_str())
            .chain(g.inputs.iter().map(|&s| circuit.signal_name(s)))
            .collect();
        let _ = writeln!(out, "  {prim} u{i} ({});", args.join(", "));
    }
    let _ = writeln!(out, "endmodule");
    out
}

fn primitive_name(kind: GateKind) -> &'static str {
    match kind {
        GateKind::Inv => "not",
        GateKind::Buf => "buf",
        GateKind::Nand(_) => "nand",
        GateKind::Nor(_) => "nor",
        GateKind::And(_) => "and",
        GateKind::Or(_) => "or",
        GateKind::Xor2 => "xor",
        GateKind::Xnor2 => "xnor",
    }
}

fn kind_from_primitive(name: &str, fan_in: usize) -> Option<GateKind> {
    match name {
        "not" if fan_in == 1 => Some(GateKind::Inv),
        "buf" if fan_in == 1 => Some(GateKind::Buf),
        "nand" => (2..=9)
            .contains(&fan_in)
            .then_some(GateKind::Nand(fan_in as u8)),
        "nor" => (2..=9)
            .contains(&fan_in)
            .then_some(GateKind::Nor(fan_in as u8)),
        "and" => (2..=9)
            .contains(&fan_in)
            .then_some(GateKind::And(fan_in as u8)),
        "or" => (2..=9)
            .contains(&fan_in)
            .then_some(GateKind::Or(fan_in as u8)),
        "xor" if fan_in == 2 => Some(GateKind::Xor2),
        "xnor" if fan_in == 2 => Some(GateKind::Xnor2),
        _ => None,
    }
}

fn sanitize(name: &str) -> String {
    let mut s: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if s.chars().next().is_none_or(|c| c.is_ascii_digit()) {
        s.insert(0, 'm');
    }
    s
}

/// One `;`-terminated statement with the source position of its first
/// non-whitespace character.
struct Stmt {
    line: usize,
    col: usize,
    text: String,
}

/// Appends `piece` (a comment-stripped slice of source line `raw`,
/// 1-based number `line_no`) to the statement under construction,
/// opening a new one at the first non-whitespace character if none is
/// open. Whitespace-only pieces never open a statement.
fn push_stmt_text(cur: &mut Option<Stmt>, raw: &str, piece: &str, line_no: usize) {
    match cur {
        Some(s) => {
            s.text.push(' ');
            s.text.push_str(piece);
        }
        None => {
            if let Some((off, _)) = piece.char_indices().find(|(_, c)| !c.is_whitespace()) {
                *cur = Some(Stmt {
                    line: line_no,
                    col: crate::col_in(raw, piece) + off,
                    text: piece.to_string(),
                });
            }
        }
    }
}

/// Parses the structural Verilog subset back into a [`Circuit`].
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] for syntax outside the subset,
/// [`NetlistError::UnsupportedGate`] for unknown primitives, and
/// [`NetlistError::UndefinedName`] for unresolvable nets.
pub fn parse(text: &str) -> Result<Circuit> {
    // Tokenize into `;`-terminated statements, stripping comments and
    // recording the source line/column where each statement starts so
    // errors point at the file, not at a flattened statement index.
    let mut stmts: Vec<Stmt> = Vec::new();
    let mut cur: Option<Stmt> = None;
    for (idx, raw) in text.lines().enumerate() {
        let line = match raw.find("//") {
            Some(p) => &raw[..p],
            None => raw,
        };
        let mut rest = line;
        loop {
            match rest.split_once(';') {
                Some((before, after)) => {
                    push_stmt_text(&mut cur, raw, before, idx + 1);
                    if let Some(s) = cur.take() {
                        stmts.push(s);
                    }
                    rest = after;
                }
                None => {
                    push_stmt_text(&mut cur, raw, rest, idx + 1);
                    break;
                }
            }
        }
    }
    if let Some(s) = cur.take() {
        stmts.push(s);
    }

    let mut name = String::from("top");
    let mut inputs: Vec<String> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    struct Inst {
        line: usize,
        prim: String,
        out: String,
        ins: Vec<String>,
    }
    let mut insts: Vec<Inst> = Vec::new();

    for s in &stmts {
        let stmt = s.text.trim();
        if stmt.is_empty() || stmt == "endmodule" || stmt.starts_with("endmodule") {
            continue;
        }
        let head = stmt.split_whitespace().next().unwrap_or("");
        match head {
            "module" => {
                let rest = stmt["module".len()..].trim();
                let open = rest.find('(').unwrap_or(rest.len());
                name = rest[..open].trim().to_string();
            }
            "input" | "output" | "wire" => {
                let rest = stmt[head.len()..].trim();
                let names = rest.split(',').map(|s| s.trim().to_string());
                match head {
                    "input" => inputs.extend(names),
                    "output" => outputs.extend(names),
                    _ => {} // wires are implied by instances
                }
            }
            prim => {
                // `<prim> <inst> ( out, in, in ... )`
                let open = stmt.find('(').ok_or_else(|| NetlistError::Parse {
                    line: s.line,
                    col: s.col,
                    message: format!("expected instance terminals in `{stmt}`"),
                })?;
                let close = stmt.rfind(')').ok_or_else(|| NetlistError::Parse {
                    line: s.line,
                    col: s.col,
                    message: "missing `)`".into(),
                })?;
                let mut terms = stmt[open + 1..close]
                    .split(',')
                    .map(|s| s.trim().to_string());
                let out =
                    terms
                        .next()
                        .filter(|s| !s.is_empty())
                        .ok_or_else(|| NetlistError::Parse {
                            line: s.line,
                            col: s.col,
                            message: "instance needs an output terminal".into(),
                        })?;
                let ins: Vec<String> = terms.collect();
                if ins.is_empty() {
                    return Err(NetlistError::Parse {
                        line: s.line,
                        col: s.col,
                        message: "instance needs input terminals".into(),
                    });
                }
                insts.push(Inst {
                    line: s.line,
                    prim: prim.to_string(),
                    out,
                    ins,
                });
            }
        }
    }
    if inputs.is_empty() && insts.is_empty() {
        return Err(NetlistError::Parse {
            line: 1,
            col: 1,
            message: "empty module: no input or instance statements".into(),
        });
    }

    let mut circuit = Circuit::new(name);
    for pi in &inputs {
        circuit.add_input(pi)?;
    }
    // Resolve instances with the same forward-reference loop as .bench.
    let mut pending: Vec<&Inst> = insts.iter().collect();
    let mut resolved: HashMap<&str, Signal> = HashMap::new();
    while !pending.is_empty() {
        let before = pending.len();
        let mut still = Vec::new();
        for inst in pending {
            let sigs: Option<Vec<Signal>> = inst
                .ins
                .iter()
                .map(|n| {
                    circuit
                        .find(n)
                        .or_else(|| resolved.get(n.as_str()).copied())
                })
                .collect();
            match sigs {
                Some(sigs) => {
                    let kind = kind_from_primitive(&inst.prim, sigs.len()).ok_or(
                        NetlistError::UnsupportedGate {
                            function: inst.prim.clone(),
                            arity: sigs.len(),
                            line: inst.line,
                        },
                    )?;
                    let s = circuit.add_gate(&inst.out, kind, &sigs)?;
                    resolved.insert(&inst.out, s);
                }
                None => still.push(inst),
            }
        }
        if still.len() == before {
            let missing = still
                .iter()
                .flat_map(|i| i.ins.iter())
                .find(|n| circuit.find(n).is_none())
                .cloned()
                .unwrap_or_else(|| "<cyclic>".into());
            return Err(NetlistError::UndefinedName { name: missing });
        }
        pending = still;
    }
    for po in &outputs {
        let s = circuit
            .find(po)
            .ok_or_else(|| NetlistError::UndefinedName { name: po.clone() })?;
        circuit.mark_output(po, s)?;
    }
    Ok(circuit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::iscas85::{self, Benchmark};
    use crate::simulate::simulate_once;

    const C17_V: &str = "\
// c17 in structural verilog
module c17 (N1, N2, N3, N6, N7, N22, N23);
  input N1, N2, N3, N6, N7;
  output N22, N23;
  wire N10, N11, N16, N19;
  nand g0 (N10, N1, N3);
  nand g1 (N11, N3, N6);
  nand g2 (N16, N2, N11);
  nand g3 (N19, N11, N7);
  nand g4 (N22, N10, N16);
  nand g5 (N23, N16, N19);
endmodule
";

    #[test]
    fn parses_c17() {
        let c = parse(C17_V).unwrap();
        assert_eq!(c.name(), "c17");
        assert_eq!(c.input_count(), 5);
        assert_eq!(c.output_count(), 2);
        assert_eq!(c.gate_count(), 6);
        assert_eq!(c.depth(), 3);
    }

    #[test]
    fn round_trips_structure_and_function() {
        let original = iscas85::generate(Benchmark::C432);
        let text = write(&original);
        let reread = parse(&text).unwrap();
        assert_eq!(reread.gate_count(), original.gate_count());
        assert_eq!(reread.input_count(), original.input_count());
        assert_eq!(reread.output_count(), original.output_count());
        assert_eq!(reread.depth(), original.depth());
        // Function identical on a few random-ish stimulus vectors.
        for seed in [0u64, 0xDEAD, 0x1234_5678] {
            let bits: Vec<bool> = (0..original.input_count())
                .map(|i| (seed >> (i % 64)) & 1 == 1 || (i * 7 + seed as usize).is_multiple_of(3))
                .collect();
            let a = simulate_once(&original, &bits).unwrap();
            let b = simulate_once(&reread, &bits).unwrap();
            assert_eq!(a, b, "seed {seed}");
        }
    }

    #[test]
    fn writer_emits_all_primitives() {
        use crate::generators::blocks::Builder;
        let mut b = Builder::new("prims");
        let x = b.input("x");
        let y = b.input("y");
        let g1 = b.nand2(x, y);
        let g2 = b.nor2(x, g1);
        let g3 = b.xor2(g1, g2);
        let g4 = b.gate(GateKind::Xnor2, &[g2, g3]);
        let g5 = b.not(g4);
        let g6 = b.gate(GateKind::Buf, &[g5]);
        let g7 = b.and2(g5, g6);
        let g8 = b.or2(g6, g7);
        b.output("z", g8);
        let c = b.finish();
        let text = write(&c);
        for prim in ["nand", "nor", "xor", "xnor", "not", "buf", "and", "or"] {
            assert!(text.contains(&format!("\n  {prim} ")), "missing {prim}");
        }
        let reread = parse(&text).unwrap();
        assert_eq!(reread.gate_count(), 8);
    }

    #[test]
    fn module_name_sanitized() {
        let mut c = Circuit::new("8-weird name!");
        let a = c.add_input("a").unwrap();
        let g = c.add_gate("g", GateKind::Inv, &[a]).unwrap();
        c.mark_output("g", g).unwrap();
        let text = write(&c);
        assert!(text.starts_with("module m8_weird_name_ ("));
        assert!(parse(&text).is_ok());
    }

    #[test]
    fn rejects_unknown_primitive() {
        let text = "module t (a, z);\n input a;\n output z;\n mux2 u0 (z, a, a);\nendmodule\n";
        assert!(matches!(
            parse(text),
            Err(NetlistError::UnsupportedGate { .. })
        ));
    }

    #[test]
    fn rejects_undefined_net() {
        let text = "module t (a, z);\n input a;\n output z;\n not u0 (z, ghost);\nendmodule\n";
        assert!(matches!(
            parse(text),
            Err(NetlistError::UndefinedName { .. })
        ));
    }

    #[test]
    fn rejects_malformed_instance() {
        let text = "module t (a, z);\n input a;\n output z;\n not u0 z a;\nendmodule\n";
        assert!(parse(text).is_err());
        let text2 = "module t (a, z);\n input a;\n output z;\n not u0 ();\nendmodule\n";
        assert!(parse(text2).is_err());
    }

    #[test]
    fn forward_references_resolve() {
        let text = "\
module t (a, z);
  input a;
  output z;
  wire w;
  not u1 (z, w);
  not u0 (w, a);
endmodule
";
        let c = parse(text).unwrap();
        assert_eq!(c.gate_count(), 2);
        assert_eq!(c.depth(), 2);
    }
}
