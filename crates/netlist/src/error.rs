//! Error type for netlist construction, parsing and placement.

use std::fmt;

/// Errors produced while building or reading circuits.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A net or instance name was declared twice.
    DuplicateName {
        /// The clashing name.
        name: String,
    },
    /// A gate was connected to a number of inputs different from its
    /// fan-in.
    ArityMismatch {
        /// Gate name.
        gate: String,
        /// Fan-in the kind requires.
        expected: usize,
        /// Inputs supplied.
        got: usize,
    },
    /// A connection referenced a signal that does not exist (or would
    /// create a cycle).
    DanglingSignal {
        /// Gate (or output) being connected.
        gate: String,
    },
    /// A `.bench`, Verilog or DEF line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// 1-based column of the offending token (0 when unknown).
        col: usize,
        /// Description of the problem.
        message: String,
    },
    /// A gate function name or arity is not supported by the delay model.
    UnsupportedGate {
        /// The function name.
        function: String,
        /// The arity encountered.
        arity: usize,
        /// 1-based line number (0 when synthesized programmatically).
        line: usize,
    },
    /// A referenced name was never defined.
    UndefinedName {
        /// The missing name.
        name: String,
    },
    /// A placement did not cover every gate of the circuit.
    PlacementMismatch {
        /// Gates in the circuit.
        gates: usize,
        /// Placed components.
        placed: usize,
    },
    /// An invalid configuration value (die size, seed range, …).
    InvalidConfig {
        /// Description of the problem.
        message: String,
    },
}

impl NetlistError {
    /// The source location carried by this error as `(line, col)`, both
    /// 1-based (`col` 0 when only the line is known). `None` when the
    /// variant has no positional context.
    pub fn location(&self) -> Option<(usize, usize)> {
        match self {
            NetlistError::Parse { line, col, .. } => Some((*line, *col)),
            NetlistError::UnsupportedGate { line, .. } if *line > 0 => Some((*line, 0)),
            _ => None,
        }
    }
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::DuplicateName { name } => write!(f, "duplicate name `{name}`"),
            NetlistError::ArityMismatch {
                gate,
                expected,
                got,
            } => {
                write!(f, "gate `{gate}` expects {expected} inputs, got {got}")
            }
            NetlistError::DanglingSignal { gate } => {
                write!(f, "`{gate}` references a signal that does not exist")
            }
            NetlistError::Parse { line, col, message } => {
                if *col > 0 {
                    write!(f, "line {line}, col {col}: {message}")
                } else {
                    write!(f, "line {line}: {message}")
                }
            }
            NetlistError::UnsupportedGate {
                function,
                arity,
                line,
            } => {
                write!(f, "line {line}: unsupported gate {function}/{arity}")
            }
            NetlistError::UndefinedName { name } => write!(f, "undefined name `{name}`"),
            NetlistError::PlacementMismatch { gates, placed } => {
                write!(
                    f,
                    "placement covers {placed} components but circuit has {gates} gates"
                )
            }
            NetlistError::InvalidConfig { message } => write!(f, "invalid config: {message}"),
        }
    }
}

impl std::error::Error for NetlistError {}
