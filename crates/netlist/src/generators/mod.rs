//! Synthetic circuit generators.
//!
//! Real ISCAS85 netlists are not redistributable inside this repository,
//! so the evaluation runs on *structural equivalents*: circuits generated
//! from the same building blocks the originals are documented to contain
//! (array multipliers, error-correction XOR trees, ALUs, priority logic),
//! sized to the published gate/input/output counts. See `DESIGN.md` §2
//! for the substitution rationale; genuine `.bench` files can be used
//! instead via [`crate::bench_format`].
//!
//! * [`blocks`] — a [`blocks::Builder`] with reusable structural blocks;
//! * [`iscas85`] — the ten benchmark equivalents of the paper's Table 2;
//! * [`sequential`] — register-based benchmarks (s27-class, pipelines)
//!   for setup/hold analysis.

pub mod blocks;
pub mod iscas85;
pub mod sequential;
