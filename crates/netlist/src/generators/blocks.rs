//! Reusable structural building blocks for circuit generation.
//!
//! A [`Builder`] wraps a [`Circuit`] with auto-named gate insertion and a
//! library of classic structures: XOR trees (plain or NAND-expanded),
//! full/half adders (XOR/NAND style and the 9-NOR style of c6288's cells),
//! ripple and carry-select adders, multiplexers, reduction trees, priority
//! chains, decoders, equality comparators and seeded random glue logic.

use crate::circuit::{Circuit, Signal};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use statim_process::GateKind;

/// Maximum depth (levels above its input pool) random glue logic may
/// reach; see [`Builder::random_glue`].
pub const GLUE_DEPTH_CAP: usize = 10;

/// Incremental circuit builder with auto-generated gate names.
#[derive(Debug)]
pub struct Builder {
    circuit: Circuit,
    counter: usize,
}

impl Builder {
    /// Creates a builder for a circuit called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Builder {
            circuit: Circuit::new(name),
            counter: 0,
        }
    }

    /// Adds a primary input.
    ///
    /// # Panics
    ///
    /// Panics on duplicate names — generator code controls all names, so a
    /// clash is a programming error.
    pub fn input(&mut self, name: impl Into<String>) -> Signal {
        self.circuit
            .add_input(name)
            .expect("generator input names are unique")
    }

    /// Adds `n` inputs named `prefix0..prefix{n-1}`.
    pub fn inputs(&mut self, prefix: &str, n: usize) -> Vec<Signal> {
        (0..n).map(|i| self.input(format!("{prefix}{i}"))).collect()
    }

    /// Adds a gate with an auto-generated name.
    pub fn gate(&mut self, kind: GateKind, inputs: &[Signal]) -> Signal {
        self.counter += 1;
        self.circuit
            .add_gate(format!("g{}", self.counter), kind, inputs)
            .expect("generator wiring is structurally valid")
    }

    /// Marks a primary output.
    pub fn output(&mut self, name: impl Into<String>, sig: Signal) {
        self.circuit
            .mark_output(name, sig)
            .expect("generator signals exist");
    }

    /// Current gate count.
    pub fn gate_count(&self) -> usize {
        self.circuit.gate_count()
    }

    /// Immutable access to the circuit under construction.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Finishes and returns the circuit.
    pub fn finish(self) -> Circuit {
        self.circuit
    }

    // ----- leaf helpers ---------------------------------------------------

    /// NOT gate.
    pub fn not(&mut self, a: Signal) -> Signal {
        self.gate(GateKind::Inv, &[a])
    }

    /// 2-input NAND.
    pub fn nand2(&mut self, a: Signal, b: Signal) -> Signal {
        self.gate(GateKind::Nand(2), &[a, b])
    }

    /// 2-input NOR.
    pub fn nor2(&mut self, a: Signal, b: Signal) -> Signal {
        self.gate(GateKind::Nor(2), &[a, b])
    }

    /// 2-input AND.
    pub fn and2(&mut self, a: Signal, b: Signal) -> Signal {
        self.gate(GateKind::And(2), &[a, b])
    }

    /// 2-input OR.
    pub fn or2(&mut self, a: Signal, b: Signal) -> Signal {
        self.gate(GateKind::Or(2), &[a, b])
    }

    /// 2-input XOR as a single library cell.
    pub fn xor2(&mut self, a: Signal, b: Signal) -> Signal {
        self.gate(GateKind::Xor2, &[a, b])
    }

    /// 2-input XOR expanded into four 2-NANDs — the transformation that
    /// derives c1355 from c499.
    pub fn xor_nand4(&mut self, a: Signal, b: Signal) -> Signal {
        let n1 = self.nand2(a, b);
        let n2 = self.nand2(a, n1);
        let n3 = self.nand2(n1, b);
        self.nand2(n2, n3)
    }

    // ----- trees ----------------------------------------------------------

    /// Balanced XOR reduction of `sigs`. With `expand` each XOR becomes
    /// four NANDs. Returns the root (for a single signal, the signal
    /// itself).
    ///
    /// # Panics
    ///
    /// Panics if `sigs` is empty.
    pub fn xor_tree(&mut self, sigs: &[Signal], expand: bool) -> Signal {
        assert!(!sigs.is_empty(), "xor_tree needs at least one signal");
        let mut layer: Vec<Signal> = sigs.to_vec();
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            for pair in layer.chunks(2) {
                if pair.len() == 2 {
                    next.push(if expand {
                        self.xor_nand4(pair[0], pair[1])
                    } else {
                        self.xor2(pair[0], pair[1])
                    });
                } else {
                    next.push(pair[0]);
                }
            }
            layer = next;
        }
        layer[0]
    }

    /// Balanced reduction tree of 2-input gates of `kind`.
    ///
    /// # Panics
    ///
    /// Panics if `sigs` is empty or `kind` is not 2-input.
    pub fn reduce_tree(&mut self, kind: GateKind, sigs: &[Signal]) -> Signal {
        assert!(!sigs.is_empty(), "reduce_tree needs at least one signal");
        assert_eq!(kind.fan_in(), 2, "reduce_tree takes a 2-input gate kind");
        let mut layer: Vec<Signal> = sigs.to_vec();
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            for pair in layer.chunks(2) {
                if pair.len() == 2 {
                    next.push(self.gate(kind, pair));
                } else {
                    next.push(pair[0]);
                }
            }
            layer = next;
        }
        layer[0]
    }

    // ----- arithmetic -----------------------------------------------------

    /// XOR/NAND full adder: 2 XORs for the sum, 3 NANDs for the carry
    /// (5 gates). Returns `(sum, carry_out)`.
    pub fn full_adder(&mut self, a: Signal, b: Signal, cin: Signal) -> (Signal, Signal) {
        let axb = self.xor2(a, b);
        let sum = self.xor2(axb, cin);
        let n1 = self.nand2(a, b);
        let n2 = self.nand2(axb, cin);
        let cout = self.nand2(n1, n2);
        (sum, cout)
    }

    /// Half adder: XOR + AND (2 gates). Returns `(sum, carry_out)`.
    pub fn half_adder(&mut self, a: Signal, b: Signal) -> (Signal, Signal) {
        let sum = self.xor2(a, b);
        let cout = self.and2(a, b);
        (sum, cout)
    }

    /// The classic 9-gate NOR-only full adder used by c6288's cells.
    /// Returns `(sum, carry_out)`.
    ///
    /// ```text
    /// n1 = NOR(a, b)      n2 = NOR(a, n1)     n3 = NOR(b, n1)
    /// n4 = NOR(n2, n3)                        # = XNOR(a, b)
    /// m1 = NOR(n4, cin)   m2 = NOR(n4, m1)    m3 = NOR(cin, m1)
    /// sum  = NOR(m2, m3)                      # = a ⊕ b ⊕ cin
    /// cout = NOR(n1, m1)                      # = majority(a, b, cin)
    /// ```
    pub fn full_adder_nor(&mut self, a: Signal, b: Signal, cin: Signal) -> (Signal, Signal) {
        let n1 = self.nor2(a, b);
        let n2 = self.nor2(a, n1);
        let n3 = self.nor2(b, n1);
        let n4 = self.nor2(n2, n3);
        let m1 = self.nor2(n4, cin);
        let m2 = self.nor2(n4, m1);
        let m3 = self.nor2(cin, m1);
        let sum = self.nor2(m2, m3);
        let cout = self.nor2(n1, m1);
        (sum, cout)
    }

    /// Ripple-carry adder over equal-width operands. Returns
    /// `(sum_bits, carry_out)`.
    ///
    /// # Panics
    ///
    /// Panics if the operand widths differ or are zero.
    pub fn ripple_adder(
        &mut self,
        a: &[Signal],
        b: &[Signal],
        cin: Signal,
    ) -> (Vec<Signal>, Signal) {
        assert_eq!(a.len(), b.len(), "operand widths must match");
        assert!(!a.is_empty(), "ripple_adder needs at least one bit");
        let mut carry = cin;
        let mut sums = Vec::with_capacity(a.len());
        for (&x, &y) in a.iter().zip(b) {
            let (s, c) = self.full_adder(x, y, carry);
            sums.push(s);
            carry = c;
        }
        (sums, carry)
    }

    /// 2:1 multiplexer out = sel ? b : a, NAND-based (4 gates).
    pub fn mux2(&mut self, a: Signal, b: Signal, sel: Signal) -> Signal {
        let ns = self.not(sel);
        let t0 = self.nand2(a, ns);
        let t1 = self.nand2(b, sel);
        self.nand2(t0, t1)
    }

    /// Carry-select adder: the operand is split into `block` -bit groups;
    /// each group is computed for both carry-in values and selected by the
    /// incoming carry. Returns `(sum_bits, carry_out)`. Structurally this
    /// yields the *well-separated* path-delay profile of adder/comparator
    /// circuits like c7552.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch, zero width or zero block size.
    pub fn carry_select_adder(
        &mut self,
        a: &[Signal],
        b: &[Signal],
        cin: Signal,
        block: usize,
    ) -> (Vec<Signal>, Signal) {
        assert_eq!(a.len(), b.len(), "operand widths must match");
        assert!(
            !a.is_empty() && block > 0,
            "need bits and a positive block size"
        );
        // "Constant" carry-ins for the speculative blocks are derived
        // locally (structure matters here, not arithmetic truth).
        let mut carry = cin;
        let mut sums = Vec::with_capacity(a.len());
        let mut lo = 0;
        while lo < a.len() {
            let hi = (lo + block).min(a.len());
            let zero_c = self.and2(a[lo], b[lo]); // stand-in carry-0
            let one_c = self.or2(a[lo], b[lo]); // stand-in carry-1
            let (s0, c0) = self.ripple_adder(&a[lo..hi], &b[lo..hi], zero_c);
            let (s1, c1) = self.ripple_adder(&a[lo..hi], &b[lo..hi], one_c);
            for (x0, x1) in s0.into_iter().zip(s1) {
                let m = self.mux2(x0, x1, carry);
                sums.push(m);
            }
            carry = self.mux2(c0, c1, carry);
            lo = hi;
        }
        (sums, carry)
    }

    /// n×n carry-save array multiplier in the style of c6288: n² partial
    /// product ANDs and (n−1)·n NOR-cell full adders ([`Self::full_adder_nor`]),
    /// with boundary cells reusing a neighbouring partial product in
    /// place of a constant-0 carry (ISCAS netlists have no constants; the
    /// timing structure is what matters). Returns the 2n product signals
    /// (bit 0 is exact; see the c6288 notes).
    ///
    /// # Panics
    ///
    /// Panics unless both operands have the same width ≥ 2.
    pub fn carry_save_multiplier(&mut self, a: &[Signal], b: &[Signal]) -> Vec<Signal> {
        assert_eq!(a.len(), b.len(), "operand widths must match");
        let n = a.len();
        assert!(n >= 2, "multiplier needs at least 2 bits");
        let pp: Vec<Vec<Signal>> = (0..n)
            .map(|i| (0..n).map(|j| self.and2(a[i], b[j])).collect())
            .collect();
        let mut sums: Vec<Signal> = pp[0].clone();
        let mut carries: Vec<Signal> = pp[0].clone(); // stand-in zero carries
        let mut products: Vec<Signal> = vec![pp[0][0]];
        for row in pp.iter().skip(1) {
            let mut new_sums = Vec::with_capacity(n);
            let mut new_carries = Vec::with_capacity(n);
            for j in 0..n {
                let s_in = if j + 1 < n { sums[j + 1] } else { row[n - 1] };
                let (s, c) = self.full_adder_nor(s_in, carries[j], row[j]);
                new_sums.push(s);
                new_carries.push(c);
            }
            products.push(new_sums[0]);
            sums = new_sums;
            carries = new_carries;
        }
        products.extend_from_slice(&sums[1..]);
        products.push(carries[n - 1]);
        debug_assert_eq!(products.len(), 2 * n);
        products
    }

    // ----- control structures ----------------------------------------------

    /// Priority chain: `grants[i] = reqs[i] AND NOT (reqs[0] OR … OR
    /// reqs[i−1])` — the heart of an interrupt controller like c432.
    ///
    /// # Panics
    ///
    /// Panics if `reqs` is empty.
    pub fn priority_chain(&mut self, reqs: &[Signal]) -> Vec<Signal> {
        assert!(!reqs.is_empty(), "priority_chain needs requests");
        let mut grants = Vec::with_capacity(reqs.len());
        grants.push(reqs[0]);
        let mut any_above = reqs[0];
        for &r in &reqs[1..] {
            let blocked = self.not(any_above);
            grants.push(self.and2(r, blocked));
            any_above = self.or2(any_above, r);
        }
        grants
    }

    /// Binary encoder: OR-trees over the one-hot `lines`, producing
    /// `ceil(log2(len))` code bits.
    ///
    /// # Panics
    ///
    /// Panics if `lines` has fewer than 2 entries.
    pub fn encoder(&mut self, lines: &[Signal]) -> Vec<Signal> {
        assert!(lines.len() >= 2, "encoder needs at least two lines");
        let bits = usize::BITS as usize - (lines.len() - 1).leading_zeros() as usize;
        (0..bits)
            .map(|b| {
                let taps: Vec<Signal> = lines
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i & (1 << b) != 0)
                    .map(|(_, &s)| s)
                    .collect();
                self.reduce_tree(GateKind::Or(2), &taps)
            })
            .collect()
    }

    /// 2-to-4 / 3-to-8 style decoder from `sel` bits to `2^n` one-hot
    /// lines (AND of true/complement literals).
    ///
    /// # Panics
    ///
    /// Panics if `sel` is empty or wider than 8 bits.
    pub fn decoder(&mut self, sel: &[Signal]) -> Vec<Signal> {
        assert!(
            !sel.is_empty() && sel.len() <= 8,
            "decoder takes 1..=8 select bits"
        );
        let inv: Vec<Signal> = sel.iter().map(|&s| self.not(s)).collect();
        (0..1usize << sel.len())
            .map(|code| {
                let lits: Vec<Signal> = sel
                    .iter()
                    .enumerate()
                    .map(|(b, &s)| if code & (1 << b) != 0 { s } else { inv[b] })
                    .collect();
                self.reduce_tree(GateKind::And(2), &lits)
            })
            .collect()
    }

    /// Equality comparator: per-bit XNOR plus an AND reduction. Returns
    /// the equality flag.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch or empty operands.
    pub fn equality(&mut self, a: &[Signal], b: &[Signal]) -> Signal {
        assert_eq!(a.len(), b.len(), "operand widths must match");
        assert!(!a.is_empty(), "equality needs at least one bit");
        let eqs: Vec<Signal> = a
            .iter()
            .zip(b)
            .map(|(&x, &y)| self.gate(GateKind::Xnor2, &[x, y]))
            .collect();
        self.reduce_tree(GateKind::And(2), &eqs)
    }

    /// Seeded random "glue" logic: `count` small gates whose inputs are
    /// drawn from `pool` plus previously created glue, emulating the
    /// irregular control logic of the larger benchmarks.
    ///
    /// Later gates preferentially consume earlier glue outputs so most of
    /// the glue stays live, but at least `keep_at_least` outputs are left
    /// unconsumed (primary-output candidates), and glue never grows deeper
    /// than [`GLUE_DEPTH_CAP`] levels — it emulates shallow control logic
    /// and must not compete with a circuit's structural critical paths.
    /// Returns the unconsumed glue signals.
    ///
    /// # Panics
    ///
    /// Panics if `pool` is empty.
    pub fn random_glue(
        &mut self,
        pool: &[Signal],
        count: usize,
        seed: u64,
        keep_at_least: usize,
    ) -> Vec<Signal> {
        assert!(!pool.is_empty(), "random_glue needs a seed pool");
        let mut rng = StdRng::seed_from_u64(seed);
        // Unconsumed glue outputs with their depth above the pool.
        let mut unconsumed: Vec<(Signal, usize)> = Vec::new();
        const KINDS: [GateKind; 6] = [
            GateKind::Nand(2),
            GateKind::Nor(2),
            GateKind::Inv,
            GateKind::Nand(3),
            GateKind::And(2),
            GateKind::Or(2),
        ];
        for _ in 0..count {
            let kind = KINDS[rng.gen_range(0..KINDS.len())];
            let mut depth = 0usize;
            let ins: Vec<Signal> = (0..kind.fan_in())
                .map(|_| {
                    // Consume a pending glue output ~60% of the time, when
                    // one is spare and still below the depth cap.
                    let eligible: Vec<usize> = (0..unconsumed.len())
                        .filter(|&i| unconsumed[i].1 < GLUE_DEPTH_CAP)
                        .collect();
                    if unconsumed.len() > keep_at_least && !eligible.is_empty() && rng.gen_bool(0.6)
                    {
                        let idx = eligible[rng.gen_range(0..eligible.len())];
                        let (sig, d) = unconsumed.swap_remove(idx);
                        depth = depth.max(d);
                        sig
                    } else {
                        pool[rng.gen_range(0..pool.len())]
                    }
                })
                .collect();
            let out = self.gate(kind, &ins);
            unconsumed.push((out, depth + 1));
        }
        // Deepest outputs first: callers mark the leading entries as
        // primary outputs, and the deepest glue must land in a PO cone
        // so that only shallow glue can ever dangle.
        unconsumed.sort_by_key(|&(_, depth)| std::cmp::Reverse(depth));
        unconsumed.into_iter().map(|(s, _)| s).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_inputs() -> (Builder, Signal, Signal) {
        let mut b = Builder::new("t");
        let x = b.input("x");
        let y = b.input("y");
        (b, x, y)
    }

    #[test]
    fn xor_nand4_uses_four_gates() {
        let (mut b, x, y) = two_inputs();
        b.xor_nand4(x, y);
        assert_eq!(b.gate_count(), 4);
    }

    #[test]
    fn xor_tree_counts_and_depth() {
        let mut b = Builder::new("t");
        let ins = b.inputs("i", 8);
        let root = b.xor_tree(&ins, false);
        b.output("o", root);
        let c = b.finish();
        assert_eq!(c.gate_count(), 7); // n-1 XORs
        assert_eq!(c.depth(), 3); // balanced
    }

    #[test]
    fn xor_tree_expanded_quadruples() {
        let mut b = Builder::new("t");
        let ins = b.inputs("i", 8);
        let root = b.xor_tree(&ins, true);
        b.output("o", root);
        let c = b.finish();
        assert_eq!(c.gate_count(), 28); // 7 XORs × 4 NANDs
        assert_eq!(c.depth(), 9); // each XOR level is 3 NAND levels deep
    }

    #[test]
    fn xor_tree_single_signal_is_identity() {
        let mut b = Builder::new("t");
        let ins = b.inputs("i", 1);
        assert_eq!(b.xor_tree(&ins, false), ins[0]);
        assert_eq!(b.gate_count(), 0);
    }

    #[test]
    fn full_adder_gate_counts() {
        let mut b = Builder::new("t");
        let a = b.input("a");
        let x = b.input("b");
        let c = b.input("c");
        b.full_adder(a, x, c);
        assert_eq!(b.gate_count(), 5);
        b.full_adder_nor(a, x, c);
        assert_eq!(b.gate_count(), 14); // +9
        b.half_adder(a, x);
        assert_eq!(b.gate_count(), 16); // +2
    }

    #[test]
    fn nor_full_adder_is_all_nor() {
        let mut b = Builder::new("t");
        let a = b.input("a");
        let x = b.input("b");
        let c = b.input("c");
        b.full_adder_nor(a, x, c);
        for g in b.circuit().gates() {
            assert_eq!(g.kind, GateKind::Nor(2));
        }
    }

    #[test]
    fn ripple_adder_width_and_depth() {
        let mut b = Builder::new("t");
        let a = b.inputs("a", 8);
        let x = b.inputs("b", 8);
        let cin = b.input("cin");
        let (sums, cout) = b.ripple_adder(&a, &x, cin);
        assert_eq!(sums.len(), 8);
        b.output("cout", cout);
        for (i, s) in sums.iter().enumerate() {
            b.output(format!("s{i}"), *s);
        }
        let c = b.finish();
        assert_eq!(c.gate_count(), 40);
        // Carry chain: ~2 gate levels per bit.
        assert!(c.depth() >= 14 && c.depth() <= 20, "depth {}", c.depth());
    }

    #[test]
    fn carry_select_shallower_than_ripple() {
        let build = |select: bool| {
            let mut b = Builder::new("t");
            let a = b.inputs("a", 16);
            let x = b.inputs("b", 16);
            let cin = b.input("cin");
            let (s, c) = if select {
                b.carry_select_adder(&a, &x, cin, 4)
            } else {
                b.ripple_adder(&a, &x, cin)
            };
            b.output("c", c);
            for (i, s) in s.iter().enumerate() {
                b.output(format!("s{i}"), *s);
            }
            b.finish()
        };
        let rip = build(false);
        let sel = build(true);
        assert!(
            sel.depth() < rip.depth(),
            "select {} vs ripple {}",
            sel.depth(),
            rip.depth()
        );
        assert!(sel.gate_count() > rip.gate_count()); // speculation costs gates
    }

    #[test]
    fn mux2_selects() {
        let (mut b, x, y) = two_inputs();
        let s = b.input("s");
        b.mux2(x, y, s);
        assert_eq!(b.gate_count(), 4);
    }

    #[test]
    fn priority_chain_structure() {
        let mut b = Builder::new("t");
        let reqs = b.inputs("r", 9);
        let grants = b.priority_chain(&reqs);
        assert_eq!(grants.len(), 9);
        // 8 stages × (INV + AND + OR) = 24 gates.
        assert_eq!(b.gate_count(), 24);
        // grant0 is the raw request.
        assert_eq!(grants[0], reqs[0]);
    }

    #[test]
    fn encoder_bit_count() {
        let mut b = Builder::new("t");
        let lines = b.inputs("l", 9);
        let code = b.encoder(&lines);
        assert_eq!(code.len(), 4); // ceil(log2 9)
    }

    #[test]
    fn decoder_line_count() {
        let mut b = Builder::new("t");
        let sel = b.inputs("s", 3);
        let lines = b.decoder(&sel);
        assert_eq!(lines.len(), 8);
        // 3 INV + 8 × (AND tree over 3 literals = 2 gates) = 19.
        assert_eq!(b.gate_count(), 19);
    }

    #[test]
    fn equality_counts() {
        let mut b = Builder::new("t");
        let a = b.inputs("a", 8);
        let x = b.inputs("b", 8);
        b.equality(&a, &x);
        assert_eq!(b.gate_count(), 8 + 7);
    }

    #[test]
    fn carry_save_multiplier_counts() {
        for n in [2usize, 4, 8, 16] {
            let mut b = Builder::new("m");
            let a = b.inputs("a", n);
            let x = b.inputs("b", n);
            let products = b.carry_save_multiplier(&a, &x);
            assert_eq!(products.len(), 2 * n, "n={n}");
            // n² ANDs + (n−1)·n NOR full adders of 9 gates each.
            assert_eq!(b.gate_count(), n * n + (n - 1) * n * 9, "n={n}");
        }
    }

    #[test]
    fn carry_save_multiplier_depth_linear() {
        let depth = |n: usize| {
            let mut b = Builder::new("m");
            let a = b.inputs("a", n);
            let x = b.inputs("b", n);
            let products = b.carry_save_multiplier(&a, &x);
            for (i, p) in products.iter().enumerate() {
                b.output(format!("p{i}"), *p);
            }
            b.finish().depth()
        };
        let (d8, d16) = (depth(8), depth(16));
        // Diagonal growth: ~6 levels per row.
        assert!(d16 > d8 + 30, "d8={d8} d16={d16}");
        assert!(d16 < 2 * d8 + 20);
    }

    #[test]
    fn random_glue_deterministic_and_sized() {
        let mut b = Builder::new("t");
        let pool = b.inputs("p", 4);
        let outs = b.random_glue(&pool, 50, 11, 5);
        assert_eq!(b.gate_count(), 50);
        assert!(outs.len() >= 5);
        // Same seed reproduces identical structure.
        let mut b2 = Builder::new("t");
        let pool2 = b2.inputs("p", 4);
        let outs2 = b2.random_glue(&pool2, 50, 11, 5);
        assert_eq!(outs.len(), outs2.len());
        for (g1, g2) in b.circuit().gates().iter().zip(b2.circuit().gates()) {
            assert_eq!(g1.kind, g2.kind);
            assert_eq!(g1.inputs, g2.inputs);
        }
    }

    #[test]
    fn random_glue_consumes_most_outputs() {
        let mut b = Builder::new("t");
        let pool = b.inputs("p", 8);
        let outs = b.random_glue(&pool, 200, 3, 4);
        // With consumption biased on, far fewer than half the gates are
        // left dangling.
        assert!(outs.len() < 100, "unconsumed: {}", outs.len());
    }
}
