//! Synthetic equivalents of the ten ISCAS85 benchmarks of the paper's
//! Table 2.
//!
//! Each generator reproduces the published gate count, primary
//! input/output counts and the documented structural character of its
//! benchmark (see `DESIGN.md` §2):
//!
//! | circuit | gates | PI | PO | structure |
//! |---------|-------|----|----|-----------|
//! | c432    | 160   | 36 | 7  | 27-channel interrupt controller (priority logic) |
//! | c499    | 202   | 41 | 32 | 32-bit single-error-correcting circuit (XOR trees) |
//! | c880    | 383   | 60 | 26 | 8-bit ALU |
//! | c1355   | 546   | 41 | 32 | c499 with every XOR expanded into 4 NAND2s |
//! | c1908   | 880   | 33 | 25 | 16-bit SEC/ED circuit |
//! | c2670   | 1269  | 233| 140| 12-bit ALU and comparator |
//! | c3540   | 1669  | 50 | 22 | 8-bit ALU (replicated slices) |
//! | c5315   | 2307  | 178| 123| 9-bit ALU (replicated slices) |
//! | c6288   | 2416  | 32 | 32 | 16×16 array multiplier, 240 NOR full adders |
//! | c7552   | 3513  | 207| 108| 32-bit adder/comparator |
//!
//! Where a benchmark's documented blocks do not exhaust its gate budget,
//! the remainder is seeded random control glue drawn from the primary
//! inputs (shallow, so it never competes with the structural critical
//! paths — matching the role of the original random control logic).

use super::blocks::Builder;
use crate::circuit::{Circuit, Signal};

/// One of the ten ISCAS85 benchmarks evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum Benchmark {
    C432,
    C499,
    C880,
    C1355,
    C1908,
    C2670,
    C3540,
    C5315,
    C6288,
    C7552,
}

impl Benchmark {
    /// All ten benchmarks in the paper's Table 2 order.
    pub const ALL: [Benchmark; 10] = [
        Benchmark::C432,
        Benchmark::C499,
        Benchmark::C880,
        Benchmark::C1355,
        Benchmark::C1908,
        Benchmark::C2670,
        Benchmark::C3540,
        Benchmark::C5315,
        Benchmark::C6288,
        Benchmark::C7552,
    ];

    /// Benchmark name as printed in the paper.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::C432 => "c432",
            Benchmark::C499 => "c499",
            Benchmark::C880 => "c880",
            Benchmark::C1355 => "c1355",
            Benchmark::C1908 => "c1908",
            Benchmark::C2670 => "c2670",
            Benchmark::C3540 => "c3540",
            Benchmark::C5315 => "c5315",
            Benchmark::C6288 => "c6288",
            Benchmark::C7552 => "c7552",
        }
    }

    /// Published gate count (Table 2, column 2).
    pub fn gate_count(self) -> usize {
        match self {
            Benchmark::C432 => 160,
            Benchmark::C499 => 202,
            Benchmark::C880 => 383,
            Benchmark::C1355 => 546,
            Benchmark::C1908 => 880,
            Benchmark::C2670 => 1269,
            Benchmark::C3540 => 1669,
            Benchmark::C5315 => 2307,
            Benchmark::C6288 => 2416,
            Benchmark::C7552 => 3513,
        }
    }

    /// Published primary-input count.
    pub fn input_count(self) -> usize {
        match self {
            Benchmark::C432 => 36,
            Benchmark::C499 => 41,
            Benchmark::C880 => 60,
            Benchmark::C1355 => 41,
            Benchmark::C1908 => 33,
            Benchmark::C2670 => 233,
            Benchmark::C3540 => 50,
            Benchmark::C5315 => 178,
            Benchmark::C6288 => 32,
            Benchmark::C7552 => 207,
        }
    }

    /// Published primary-output count.
    pub fn output_count(self) -> usize {
        match self {
            Benchmark::C432 => 7,
            Benchmark::C499 => 32,
            Benchmark::C880 => 26,
            Benchmark::C1355 => 32,
            Benchmark::C1908 => 25,
            Benchmark::C2670 => 140,
            Benchmark::C3540 => 22,
            Benchmark::C5315 => 123,
            Benchmark::C6288 => 32,
            Benchmark::C7552 => 108,
        }
    }

    /// Parses a benchmark from its name (case-insensitive).
    pub fn from_name(name: &str) -> Option<Benchmark> {
        Benchmark::ALL
            .iter()
            .copied()
            .find(|b| b.name().eq_ignore_ascii_case(name))
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Generates the synthetic equivalent of `bench`. Deterministic: the same
/// benchmark always yields the same circuit.
pub fn generate(bench: Benchmark) -> Circuit {
    match bench {
        Benchmark::C432 => c432(),
        Benchmark::C499 => sec32(Benchmark::C499, false),
        Benchmark::C880 => c880(),
        Benchmark::C1355 => sec32(Benchmark::C1355, true),
        Benchmark::C1908 => c1908(),
        Benchmark::C2670 => c2670(),
        Benchmark::C3540 => c3540(),
        Benchmark::C5315 => c5315(),
        Benchmark::C6288 => c6288(),
        Benchmark::C7552 => c7552(),
    }
}

/// Pads the builder with shallow glue up to the benchmark's gate budget,
/// then marks primary outputs: the core POs first, extra glue outputs to
/// reach the published PO count.
///
/// # Panics
///
/// Panics if the core overshoots the gate budget or produces more POs
/// than published — generator bugs that tests catch immediately.
fn pad_and_finish(
    mut b: Builder,
    bench: Benchmark,
    glue_pool: &[Signal],
    core_pos: Vec<(String, Signal)>,
    po_backup: &[Signal],
) -> Circuit {
    let core = b.gate_count();
    assert!(
        core <= bench.gate_count(),
        "{}: core uses {core} gates, budget {}",
        bench.name(),
        bench.gate_count()
    );
    assert!(
        core_pos.len() <= bench.output_count(),
        "{}: core has {} POs, budget {}",
        bench.name(),
        core_pos.len(),
        bench.output_count()
    );
    let po_need = bench.output_count().saturating_sub(core_pos.len());
    let glue_outs = if core < bench.gate_count() {
        b.random_glue(
            glue_pool,
            bench.gate_count() - core,
            seed_for(bench),
            po_need,
        )
    } else {
        Vec::new()
    };
    let mut po_count = 0usize;
    for (name, sig) in core_pos {
        b.output(name, sig);
        po_count += 1;
    }
    for &sig in glue_outs.iter().chain(po_backup) {
        if po_count == bench.output_count() {
            break;
        }
        b.output(format!("po{po_count}"), sig);
        po_count += 1;
    }
    assert_eq!(
        po_count,
        bench.output_count(),
        "{}: could not reach the published PO count (got {po_count})",
        bench.name()
    );
    let c = b.finish();
    assert_eq!(c.gate_count(), bench.gate_count());
    c
}

fn seed_for(bench: Benchmark) -> u64 {
    0xDA7E_0500 + bench as u64
}

/// c432 — 27-channel interrupt controller: a 27-deep priority chain,
/// per-channel enables and a grant encoder.
fn c432() -> Circuit {
    let bench = Benchmark::C432;
    let mut b = Builder::new(bench.name());
    let reqs = b.inputs("req", 27);
    let ens = b.inputs("en", 9);
    // Enable-gated requests (27 AND gates).
    let gated: Vec<Signal> = reqs
        .iter()
        .enumerate()
        .map(|(i, &r)| b.and2(r, ens[i % 9]))
        .collect();
    // Priority chain (26 × 3 = 78 gates).
    let grants = b.priority_chain(&gated);
    // Encode the 16 highest-priority grants into 4 code bits (≈28 gates).
    let code = b.encoder(&grants[..16]);
    // Any-grant flag over the low-priority tail — this keeps the deepest
    // chain stages observable (they are the circuit's critical region).
    let any = b.reduce_tree(statim_process::GateKind::Or(2), &grants[16..]);
    let par = b.xor_tree(&code, false);
    let mut core_pos: Vec<(String, Signal)> = code
        .iter()
        .enumerate()
        .map(|(i, &s)| (format!("code{i}"), s))
        .collect();
    core_pos.push(("any".into(), any));
    core_pos.push(("par".into(), par));
    let backup: Vec<Signal> = grants[16..20].to_vec();
    let pool: Vec<Signal> = reqs.iter().chain(&ens).copied().collect();
    pad_and_finish(b, bench, &pool, core_pos, &backup)
}

/// c499/c1355 — 32-bit single-error-correcting circuit: 8 syndrome parity
/// trees over overlapping data groups, syndrome-pair selects, and
/// correction XORs. With `expand`, every XOR becomes four NAND2s (the
/// documented derivation of c1355 from c499).
fn sec32(bench: Benchmark, expand: bool) -> Circuit {
    let mut b = Builder::new(bench.name());
    let data = b.inputs("d", 32);
    let check = b.inputs("chk", 8);
    let en = b.input("en");
    // 8 syndrome trees, each over 11 data bits + its check bit
    // (11 XORs each, 88 total).
    let mut syndromes = Vec::with_capacity(8);
    for (j, &chk) in check.iter().enumerate() {
        let mut taps: Vec<Signal> = (0..32)
            .filter(|i| (i * 7 + j * 3) % 8 < 3)
            .map(|i| data[i])
            .collect();
        taps.truncate(10);
        taps.push(chk);
        syndromes.push(b.xor_tree(&taps, expand));
    }
    // Per-corrected-bit select: AND of two syndromes (32 ANDs),
    // then 16 correction XORs on the low data half.
    let selects: Vec<Signal> = (0..32)
        .map(|i| b.and2(syndromes[i % 8], syndromes[(i / 4 + 1) % 8]))
        .collect();
    let corrected: Vec<Signal> = (0..16)
        .map(|i| {
            let gated = b.and2(selects[i], en);
            if expand {
                b.xor_nand4(data[i], gated)
            } else {
                b.xor2(data[i], gated)
            }
        })
        .collect();
    let mut core_pos: Vec<(String, Signal)> = corrected
        .into_iter()
        .enumerate()
        .map(|(i, s)| (format!("cor{i}"), s))
        .collect();
    for (j, &s) in syndromes.iter().enumerate() {
        core_pos.push((format!("syn{j}"), s));
    }
    let pool: Vec<Signal> = data.iter().chain(&check).copied().collect();
    let backup = selects[16..].to_vec();
    pad_and_finish(b, bench, &pool, core_pos, &backup)
}

/// c880 — 8-bit ALU: ripple adder, logic unit, result multiplexers,
/// comparator and parity.
fn c880() -> Circuit {
    let bench = Benchmark::C880;
    let mut b = Builder::new(bench.name());
    let a = b.inputs("a", 8);
    let x = b.inputs("b", 8);
    let c = b.inputs("c", 8);
    let cin = b.input("cin");
    let sel = b.inputs("sel", 3);
    let misc = b.inputs("m", 32);
    // Adder (40 gates).
    let (sums, cout) = b.ripple_adder(&a, &x, cin);
    // Logic unit: AND and XOR planes (16 gates).
    let ands: Vec<Signal> = a.iter().zip(&x).map(|(&p, &q)| b.and2(p, q)).collect();
    let xors: Vec<Signal> = a.iter().zip(&c).map(|(&p, &q)| b.xor2(p, q)).collect();
    // Result mux: sum vs AND, then vs XOR (8 × 2 muxes = 64 gates).
    let stage1: Vec<Signal> = sums
        .iter()
        .zip(&ands)
        .map(|(&s, &t)| b.mux2(s, t, sel[0]))
        .collect();
    let result: Vec<Signal> = stage1
        .iter()
        .zip(&xors)
        .map(|(&s, &t)| b.mux2(s, t, sel[1]))
        .collect();
    // Comparator (15) and parity (7).
    let eq = b.equality(&a, &c);
    let parity = b.xor_tree(&result, false);
    let mut core_pos: Vec<(String, Signal)> = result
        .iter()
        .enumerate()
        .map(|(i, &s)| (format!("r{i}"), s))
        .collect();
    core_pos.push(("cout".into(), cout));
    core_pos.push(("eq".into(), eq));
    core_pos.push(("par".into(), parity));
    let pool: Vec<Signal> = misc.iter().chain(&a).chain(&x).copied().collect();
    pad_and_finish(b, bench, &pool, core_pos, &[])
}

/// c1908 — 16-bit SEC/ED: a 16-bit adder chain feeding six deep syndrome
/// trees, correction logic and a decoder.
fn c1908() -> Circuit {
    let bench = Benchmark::C1908;
    let mut b = Builder::new(bench.name());
    let d = b.inputs("d", 16);
    let chk = b.inputs("chk", 8);
    let sel = b.inputs("sel", 4);
    let cin = b.input("cin");
    let misc = b.inputs("m", 4);
    // Data pipeline: ripple-add the data against its rotation (80 gates),
    // giving the deep carry chain the benchmark is known for.
    let rot: Vec<Signal> = (0..16).map(|i| d[(i + 5) % 16]).collect();
    let (enc, cout) = b.ripple_adder(&d, &rot, cin);
    // Six syndrome trees over the encoded bits + checks (6 × 15 = 90).
    let mut syn = Vec::with_capacity(6);
    for j in 0..6 {
        let mut taps: Vec<Signal> = (0..16)
            .filter(|i| (i + j) % 3 != 0)
            .map(|i| enc[i])
            .collect();
        taps.push(chk[j]);
        taps.push(chk[(j + 1) % 8]);
        syn.push(b.xor_tree(&taps, false));
    }
    // Correction: 16 × (AND of 3 syndromes + XOR) = 16 × 3 = 48 gates.
    let corrected: Vec<Signal> = (0..16)
        .map(|i| {
            let s1 = b.and2(syn[i % 6], syn[(i + 2) % 6]);
            let s2 = b.and2(s1, syn[(i + 4) % 6]);
            b.xor2(enc[i], s2)
        })
        .collect();
    // Select decoder (4→16) and output gating.
    let lines = b.decoder(&sel);
    let gated: Vec<Signal> = corrected
        .iter()
        .zip(&lines)
        .map(|(&c, &l)| b.and2(c, l))
        .collect();
    let mut core_pos: Vec<(String, Signal)> = gated
        .iter()
        .enumerate()
        .map(|(i, &s)| (format!("q{i}"), s))
        .collect();
    core_pos.push(("cout".into(), cout));
    let pool: Vec<Signal> = d.iter().chain(&chk).chain(&misc).copied().collect();
    let backup = syn.clone();
    pad_and_finish(b, bench, &pool, core_pos, &backup)
}

/// c2670 — 12-bit ALU and comparator with wide random control.
fn c2670() -> Circuit {
    let bench = Benchmark::C2670;
    let mut b = Builder::new(bench.name());
    let a = b.inputs("a", 12);
    let x = b.inputs("b", 12);
    let y = b.inputs("c", 12);
    let cin = b.input("cin");
    let reqs = b.inputs("req", 16);
    let misc = b.inputs("m", 180);
    // Carry-select adder (deeper blocks: structure of a 12-bit ALU).
    let (sums, cout) = b.carry_select_adder(&a, &x, cin, 3);
    // Second adder stage chained on the result (depth driver).
    let (sums2, cout2) = b.ripple_adder(&sums, &y, cout);
    let eq = b.equality(&sums2, &y);
    let grants = b.priority_chain(&reqs);
    let code = b.encoder(&grants);
    let mut core_pos: Vec<(String, Signal)> = sums2
        .iter()
        .enumerate()
        .map(|(i, &s)| (format!("s{i}"), s))
        .collect();
    core_pos.push(("cout".into(), cout2));
    core_pos.push(("eq".into(), eq));
    for (i, s) in code.into_iter().enumerate() {
        core_pos.push((format!("code{i}"), s));
    }
    let pool: Vec<Signal> = misc.iter().chain(&a).chain(&x).copied().collect();
    pad_and_finish(b, bench, &pool, core_pos, &[])
}

/// c3540 — 8-bit ALU: four replicated slices, each with two chained
/// adders, a logic plane and result multiplexers.
fn c3540() -> Circuit {
    let bench = Benchmark::C3540;
    let mut b = Builder::new(bench.name());
    let a = b.inputs("a", 8);
    let x = b.inputs("b", 8);
    let y = b.inputs("c", 8);
    let cin = b.input("cin");
    let sel = b.inputs("sel", 3);
    let misc = b.inputs("m", 22);
    let mut slice_outs: Vec<Signal> = Vec::new();
    let mut carries = Vec::new();
    for s in 0..4 {
        // Rotate operands per slice so slices differ structurally.
        let ar: Vec<Signal> = (0..8).map(|i| a[(i + s) % 8]).collect();
        let xr: Vec<Signal> = (0..8).map(|i| x[(i + 2 * s) % 8]).collect();
        let (s1, c1) = b.ripple_adder(&ar, &xr, cin);
        let (s2, c2) = b.ripple_adder(&s1, &y, c1);
        let ands: Vec<Signal> = s2.iter().zip(&ar).map(|(&p, &q)| b.and2(p, q)).collect();
        let muxed: Vec<Signal> = s2
            .iter()
            .zip(&ands)
            .map(|(&p, &q)| b.mux2(p, q, sel[s % 3]))
            .collect();
        slice_outs.push(b.xor_tree(&muxed, false));
        carries.push(c2);
    }
    let lines = b.decoder(&sel);
    let grants = b.priority_chain(&lines);
    let code = b.encoder(&grants);
    let mut core_pos: Vec<(String, Signal)> = slice_outs
        .iter()
        .enumerate()
        .map(|(i, &s)| (format!("sl{i}"), s))
        .collect();
    for (i, &c) in carries.iter().enumerate() {
        core_pos.push((format!("c{i}"), c));
    }
    for (i, s) in code.into_iter().enumerate() {
        core_pos.push((format!("code{i}"), s));
    }
    let pool: Vec<Signal> = misc.iter().chain(&a).chain(&x).copied().collect();
    pad_and_finish(b, bench, &pool, core_pos, &[])
}

/// c5315 — 9-bit ALU: six slices of two chained 9-bit adders with
/// selection and comparison.
fn c5315() -> Circuit {
    let bench = Benchmark::C5315;
    let mut b = Builder::new(bench.name());
    let mut core_pos: Vec<(String, Signal)> = Vec::new();
    let mut pool: Vec<Signal> = Vec::new();
    let cin = b.input("cin");
    let sel = b.inputs("sel", 3);
    pool.extend(&sel);
    for s in 0..6 {
        let a = b.inputs(&format!("a{s}_"), 9);
        let x = b.inputs(&format!("b{s}_"), 9);
        let (s1, c1) = b.ripple_adder(&a, &x, cin);
        let xr: Vec<Signal> = (0..9).map(|i| x[(i + 3) % 9]).collect();
        let (s2, c2) = b.ripple_adder(&s1, &xr, c1);
        let muxed: Vec<Signal> = s2
            .iter()
            .zip(&s1)
            .map(|(&p, &q)| b.mux2(p, q, sel[s % 3]))
            .collect();
        let eq = b.equality(&s2, &a);
        for (i, &m) in muxed.iter().enumerate() {
            core_pos.push((format!("r{s}_{i}"), m));
        }
        core_pos.push((format!("c{s}"), c2));
        core_pos.push((format!("eq{s}"), eq));
        pool.extend(a.iter().take(4));
        pool.extend(x.iter().take(4));
    }
    let misc = b.inputs("m", 178 - b.circuit().input_count());
    pool.extend(&misc);
    pad_and_finish(b, bench, &pool, core_pos, &[])
}

/// c6288 — 16×16 array multiplier: 256 partial-product ANDs and 240
/// carry-save cells, each the classic 9-gate NOR full adder — exactly the
/// published 2416 gates, with the ~124-gate diagonal critical path the
/// paper reports.
fn c6288() -> Circuit {
    let bench = Benchmark::C6288;
    let mut b = Builder::new(bench.name());
    let a = b.inputs("a", 16);
    let x = b.inputs("b", 16);
    // 256 partial-product ANDs + 15 rows × 16 NOR full adders
    // (240 × 9 = 2160) — exactly the published 2416 gates.
    let products = b.carry_save_multiplier(&a, &x);
    let core_pos: Vec<(String, Signal)> = products
        .into_iter()
        .take(32)
        .enumerate()
        .map(|(i, s)| (format!("p{i}"), s))
        .collect();
    let pool: Vec<Signal> = a.iter().chain(&x).copied().collect();
    pad_and_finish(b, bench, &pool, core_pos, &[])
}

/// c7552 — 32-bit adder/comparator: a carry-select adder, a
/// tree-structured magnitude comparator, parity trees and an output
/// select stage. The adder's carry spine is the single clearly-longest
/// chain, giving the well-separated path-delay profile behind the
/// paper's Fig. 6 (almost no rank migration).
fn c7552() -> Circuit {
    let bench = Benchmark::C7552;
    let mut b = Builder::new(bench.name());
    let a = b.inputs("a", 32);
    let x = b.inputs("b", 32);
    let y = b.inputs("c", 32);
    let cin = b.input("cin");
    let misc = b.inputs("m", 110);
    // Main carry-select adder (blocks of 4): ~24 gate levels end to end.
    let (sums, cout) = b.carry_select_adder(&a, &x, cin, 4);
    // Equality comparator against the third operand (XNOR + AND tree).
    let eq = b.equality(&sums, &y);
    // Tree-structured magnitude comparator over (a, b): per-bit
    // generate/greater terms combined pairwise in log depth.
    let mut gt_terms: Vec<Signal> = Vec::with_capacity(32);
    let mut eq_terms: Vec<Signal> = Vec::with_capacity(32);
    for i in 0..32 {
        let nb = b.not(x[i]);
        gt_terms.push(b.and2(a[i], nb));
        eq_terms.push(b.gate(statim_process::GateKind::Xnor2, &[a[i], x[i]]));
    }
    while gt_terms.len() > 1 {
        let mut next_gt = Vec::with_capacity(gt_terms.len() / 2);
        let mut next_eq = Vec::with_capacity(eq_terms.len() / 2);
        for (gpair, epair) in gt_terms.chunks(2).zip(eq_terms.chunks(2)) {
            if gpair.len() == 2 {
                // gt = gt_hi OR (eq_hi AND gt_lo); eq = eq_hi AND eq_lo.
                let t = b.and2(epair[1], gpair[0]);
                next_gt.push(b.or2(gpair[1], t));
                next_eq.push(b.and2(epair[1], epair[0]));
            } else {
                next_gt.push(gpair[0]);
                next_eq.push(epair[0]);
            }
        }
        gt_terms = next_gt;
        eq_terms = next_eq;
    }
    let gt = gt_terms[0];
    // Parity trees over both operands.
    let par_a = b.xor_tree(&a, false);
    let par_b = b.xor_tree(&x, false);
    // Output select stage: sum vs. third operand.
    let result: Vec<Signal> = sums
        .iter()
        .zip(&y)
        .map(|(&s, &t)| b.mux2(s, t, gt))
        .collect();
    let mut core_pos: Vec<(String, Signal)> = result
        .iter()
        .enumerate()
        .map(|(i, &s)| (format!("s{i}"), s))
        .collect();
    core_pos.push(("cout".into(), cout));
    core_pos.push(("eq".into(), eq));
    core_pos.push(("gt".into(), gt));
    core_pos.push(("pa".into(), par_a));
    core_pos.push(("pb".into(), par_b));
    let pool: Vec<Signal> = misc.iter().chain(&a).chain(&x).copied().collect();
    pad_and_finish(b, bench, &pool, core_pos, &[])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    #[test]
    fn all_benchmarks_match_published_counts() {
        for bench in Benchmark::ALL {
            let c = generate(bench);
            assert_eq!(c.gate_count(), bench.gate_count(), "{bench} gates");
            assert_eq!(c.input_count(), bench.input_count(), "{bench} inputs");
            assert_eq!(c.output_count(), bench.output_count(), "{bench} outputs");
            assert_eq!(c.name(), bench.name());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(Benchmark::C880);
        let b = generate(Benchmark::C880);
        assert_eq!(a, b);
    }

    #[test]
    fn c6288_structure() {
        let c = generate(Benchmark::C6288);
        let hist = c.kind_histogram();
        // Dominated by 2-NOR (240 × 9 = 2160) with 256 ANDs.
        let nor = hist
            .iter()
            .find(|(k, _)| matches!(k, statim_process::GateKind::Nor(2)))
            .map(|&(_, n)| n)
            .unwrap_or(0);
        assert_eq!(nor, 2160);
        // Very deep: the paper reports a 124-gate critical path; the
        // 9-NOR cell gives a diagonal of ~90 gate levels.
        assert!(c.depth() >= 80, "depth {}", c.depth());
        // Famously astronomical path count.
        assert!(c.path_count() > 1_000_000_000_000u128);
    }

    #[test]
    fn c1355_is_nand_expansion_of_c499() {
        let c499 = generate(Benchmark::C499);
        let c1355 = generate(Benchmark::C1355);
        // The expansion roughly doubles the depth and has no XOR cells in
        // the syndrome/correction structure beyond the glue.
        assert!(c1355.depth() > c499.depth());
        let xor_count = |c: &crate::circuit::Circuit| {
            c.gates()
                .iter()
                .filter(|g| matches!(g.kind, statim_process::GateKind::Xor2))
                .count()
        };
        assert!(xor_count(&c499) >= 90, "c499 XORs: {}", xor_count(&c499));
        assert_eq!(xor_count(&c1355), 0, "c1355 must be XOR-free");
    }

    #[test]
    fn bushiness_c1355_vs_c7552() {
        // The paper's Figs. 5/6 rest on c1355 having many near-equal
        // longest paths while c7552's critical chain is isolated. Count
        // the paths that achieve full depth in each.
        let m1355 = stats::max_depth_path_count(&generate(Benchmark::C1355));
        let m7552 = stats::max_depth_path_count(&generate(Benchmark::C7552));
        assert!(
            m1355 > 4 * m7552.max(1),
            "c1355 max-depth paths {m1355} should dwarf c7552's {m7552}"
        );
    }

    #[test]
    fn depths_in_paper_neighbourhood() {
        // Table 2 reports the gate count of each probabilistic critical
        // path; the structural depth should be in the same neighbourhood.
        let expect = [
            (Benchmark::C432, 16, 6, 40),
            (Benchmark::C499, 11, 5, 30),
            (Benchmark::C880, 23, 10, 45),
            (Benchmark::C1355, 24, 10, 50),
            (Benchmark::C1908, 40, 18, 70),
            (Benchmark::C2670, 32, 16, 70),
            (Benchmark::C3540, 41, 20, 80),
            (Benchmark::C5315, 48, 24, 90),
            (Benchmark::C6288, 124, 80, 160),
            (Benchmark::C7552, 21, 15, 110),
        ];
        for (bench, paper, lo, hi) in expect {
            let d = generate(bench).depth();
            assert!(
                (lo..=hi).contains(&d),
                "{bench}: depth {d}, paper path {paper}, expected {lo}..={hi}"
            );
        }
    }

    #[test]
    fn from_name_round_trips() {
        for bench in Benchmark::ALL {
            assert_eq!(Benchmark::from_name(bench.name()), Some(bench));
            assert_eq!(
                Benchmark::from_name(&bench.name().to_uppercase()),
                Some(bench)
            );
        }
        assert_eq!(Benchmark::from_name("c17"), None);
    }

    #[test]
    fn no_excessive_dead_logic() {
        // Glue may leave some unconsumed outputs, but the bulk of every
        // circuit must be live.
        for bench in Benchmark::ALL {
            let c = generate(bench);
            let dead = c.dangling_gates().len();
            assert!(
                dead * 5 < c.gate_count(),
                "{bench}: {dead} dangling of {}",
                c.gate_count()
            );
        }
    }

    #[test]
    fn critical_depth_is_observable() {
        // The deepest logic must lie in a primary-output cone: dangling
        // (dead) gates may only be shallow glue, or the timing engine
        // would analyze a different circuit than the netlist suggests.
        for bench in Benchmark::ALL {
            let c = generate(bench);
            let levels = c.levels();
            let depth = c.depth();
            let max_dead_level = c
                .dangling_gates()
                .iter()
                .map(|g| levels[g.index()])
                .max()
                .unwrap_or(0);
            // Dead logic may exist (e.g. the multiplier's final-row
            // boundary carries) but must never be the deepest logic:
            // the circuit's depth has to be achieved by a PO cone.
            assert!(
                max_dead_level < depth,
                "{bench}: dead logic at level {max_dead_level} == depth {depth}"
            );
        }
    }
}
