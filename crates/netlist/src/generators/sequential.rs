//! Sequential benchmark generators: an s27-class circuit and a
//! parameterized register pipeline.
//!
//! Like the ISCAS85 equivalents in [`super::iscas85`], these are
//! structural stand-ins built from the supported gate library. `s27` is
//! the classic smallest ISCAS89 benchmark (3 registers, 10 gates, one
//! output) with its documented NOR/NAND feedback structure; `pipeline`
//! generates a `stages × width` register pipeline whose per-stage logic
//! is a NAND ripple chain mixed with XORs, so the critical path (and
//! therefore the minimum period) grows with `width` while bit 0 passes
//! through a single buffer — the short path that makes hold checks
//! non-trivial.

use crate::circuit::{Circuit, Signal};
use crate::Result;
use statim_process::GateKind;

/// Default clock period stamped on generated circuits (overridable via
/// `statim seq --period` or a `# statim clock period` directive).
pub const DEFAULT_PERIOD: f64 = 1e-9;
/// Default setup margin stamped on generated circuits.
pub const DEFAULT_SETUP: f64 = 2e-11;
/// Default hold margin stamped on generated circuits.
pub const DEFAULT_HOLD: f64 = 2e-12;

/// The s27-class benchmark: 4 true inputs, 3 registers, 10 gates, one
/// primary output.
pub fn s27() -> Circuit {
    try_s27().expect("s27 generator is structurally valid")
}

fn try_s27() -> Result<Circuit> {
    let mut c = Circuit::new("s27");
    let g0 = c.add_input("G0")?;
    let g1 = c.add_input("G1")?;
    let g2 = c.add_input("G2")?;
    let g3 = c.add_input("G3")?;
    let g5 = c.add_register("G5", 0)?; // <- G10
    let g6 = c.add_register("G6", 0)?; // <- G11
    let g7 = c.add_register("G7", 0)?; // <- G13
    let g14 = c.add_gate("G14", GateKind::Inv, &[g0])?;
    let g12 = c.add_gate("G12", GateKind::Nor(2), &[g1, g7])?;
    let g13 = c.add_gate("G13", GateKind::Nand(2), &[g2, g12])?;
    let g8 = c.add_gate("G8", GateKind::And(2), &[g14, g6])?;
    let g15 = c.add_gate("G15", GateKind::Or(2), &[g12, g8])?;
    let g16 = c.add_gate("G16", GateKind::Or(2), &[g3, g8])?;
    let g9 = c.add_gate("G9", GateKind::Nand(2), &[g16, g15])?;
    let g11 = c.add_gate("G11", GateKind::Nor(2), &[g5, g9])?;
    let g10 = c.add_gate("G10", GateKind::Nor(2), &[g14, g11])?;
    let g17 = c.add_gate("G17", GateKind::Inv, &[g11])?;
    c.mark_output("G17", g17)?;
    c.connect_register_d(0, g10)?;
    c.connect_register_d(1, g11)?;
    c.connect_register_d(2, g13)?;
    c.set_clock_period(DEFAULT_PERIOD)?;
    c.set_setup_margin(DEFAULT_SETUP)?;
    c.set_hold_margin(DEFAULT_HOLD)?;
    Ok(c)
}

/// A `stages × width` register pipeline named `pipe{stages}x{width}`.
///
/// Stage logic between register banks: bit 0 is a single buffer (the
/// hold-critical short path); bit `w > 0` is `x = XOR(prev[w], chain)`
/// where `chain` is a NAND ripple over bits `1..=w` — the setup-critical
/// long path, depth `width` at the top bit.
///
/// # Errors
///
/// Returns [`crate::error::NetlistError::InvalidConfig`] when `stages`
/// or `width` is zero or the circuit would be degenerate (width < 2).
pub fn pipeline(stages: usize, width: usize) -> Result<Circuit> {
    if stages == 0 || width < 2 {
        return Err(crate::error::NetlistError::InvalidConfig {
            message: format!("pipeline needs stages >= 1 and width >= 2, got {stages}x{width}"),
        });
    }
    let mut c = Circuit::new(format!("pipe{stages}x{width}"));
    let mut prev: Vec<Signal> = (0..width)
        .map(|w| c.add_input(format!("in{w}")))
        .collect::<Result<_>>()?;
    let mut banks: Vec<Vec<Signal>> = Vec::with_capacity(stages);
    for s in 0..stages {
        let bank: Vec<Signal> = (0..width)
            .map(|w| c.add_register(format!("r{s}_{w}"), 0))
            .collect::<Result<_>>()?;
        banks.push(bank);
    }
    for (s, bank) in banks.iter().enumerate() {
        let d0 = c.add_gate(format!("b{s}"), GateKind::Buf, &[prev[0]])?;
        let mut ds = vec![d0];
        let mut chain = prev[0];
        for (w, &p) in prev.iter().enumerate().skip(1) {
            chain = c.add_gate(format!("c{s}_{w}"), GateKind::Nand(2), &[chain, p])?;
            let x = c.add_gate(format!("x{s}_{w}"), GateKind::Xor2, &[p, chain])?;
            ds.push(x);
        }
        for (w, d) in ds.into_iter().enumerate() {
            c.connect_register_d(s * width + w, d)?;
        }
        prev = bank.clone();
    }
    // `.bench` outputs are net names, so mark the final-bank Q nets
    // under their own names to keep the round trip exact.
    for q in prev.clone() {
        let name = c.signal_name(q).to_string();
        c.mark_output(name, q)?;
    }
    c.set_clock_period(DEFAULT_PERIOD)?;
    c.set_setup_margin(DEFAULT_SETUP)?;
    c.set_hold_margin(DEFAULT_HOLD)?;
    Ok(c)
}

/// Resolves a sequential generator by name: `s27` or `pipe{S}x{W}`
/// (e.g. `pipe4x8`). Returns `None` for unknown names.
pub fn from_name(name: &str) -> Option<Circuit> {
    if name.eq_ignore_ascii_case("s27") {
        return Some(s27());
    }
    let rest = name.strip_prefix("pipe")?;
    let (s, w) = rest.split_once('x')?;
    let stages: usize = s.parse().ok()?;
    let width: usize = w.parse().ok()?;
    pipeline(stages, width).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_format;

    #[test]
    fn s27_shape() {
        let c = s27();
        assert_eq!(c.true_input_count(), 4);
        assert_eq!(c.registers().len(), 3);
        assert_eq!(c.gate_count(), 10);
        assert_eq!(c.output_count(), 1);
        assert!(c.is_sequential());
        assert!(c.dangling_gates().is_empty());
        assert_eq!(c.seq_spec().period, Some(DEFAULT_PERIOD));
    }

    #[test]
    fn pipeline_shape() {
        let c = pipeline(3, 4).unwrap();
        assert_eq!(c.name(), "pipe3x4");
        assert_eq!(c.true_input_count(), 4);
        assert_eq!(c.registers().len(), 12);
        // Per stage: 1 buffer + (width-1) * (NAND + XOR).
        assert_eq!(c.gate_count(), 3 * (1 + 3 * 2));
        assert_eq!(c.output_count(), 4);
        assert!(c.dangling_gates().is_empty());
        // Ripple chain dominates depth.
        assert_eq!(c.depth(), 4);
        assert!(pipeline(0, 4).is_err());
        assert!(pipeline(2, 1).is_err());
    }

    #[test]
    fn generators_round_trip_through_bench() {
        for c in [s27(), pipeline(2, 3).unwrap()] {
            let text = bench_format::write(&c);
            let back = bench_format::parse(c.name(), &text).unwrap();
            assert_eq!(c, back, "{} round trip", c.name());
        }
    }

    #[test]
    fn from_name_resolves() {
        assert_eq!(from_name("s27").unwrap().name(), "s27");
        assert_eq!(from_name("S27").unwrap().name(), "s27");
        assert_eq!(from_name("pipe4x8").unwrap().name(), "pipe4x8");
        assert!(from_name("c432").is_none());
        assert!(from_name("pipe0x8").is_none());
        assert!(from_name("pipexx").is_none());
    }
}
