//! Logic simulation.
//!
//! A parallel (64-way bit-packed) combinational simulator, used to
//! functionally verify the generated circuits — the array multiplier
//! really multiplies, parity trees really compute parity — and available
//! to downstream users for sanity checks on parsed netlists.

use crate::circuit::{Circuit, Signal};
use crate::error::NetlistError;
use crate::Result;
use statim_process::GateKind;

/// A 64-pattern-wide logic value per net.
pub type Word = u64;

/// Evaluates `circuit` on bit-packed input patterns: `inputs[i]` carries
/// 64 stimulus bits for primary input `i`. Returns one [`Word`] per gate
/// (indexable by [`crate::GateId::index`]) holding the gate outputs for
/// all 64 patterns.
///
/// # Errors
///
/// Returns [`NetlistError::PlacementMismatch`] (reused for arity) if the
/// stimulus width differs from the circuit's input count.
pub fn simulate(circuit: &Circuit, inputs: &[Word]) -> Result<Vec<Word>> {
    if inputs.len() != circuit.input_count() {
        return Err(NetlistError::PlacementMismatch {
            gates: circuit.input_count(),
            placed: inputs.len(),
        });
    }
    let mut values = vec![0 as Word; circuit.gate_count()];
    for (i, gate) in circuit.gates().iter().enumerate() {
        let fetch = |s: &Signal| -> Word {
            match s {
                Signal::Input(k) => inputs[*k as usize],
                Signal::Gate(g) => values[g.index()],
            }
        };
        let mut ins = gate.inputs.iter().map(fetch);
        values[i] = match gate.kind {
            GateKind::Inv => !ins.next().expect("arity checked"),
            GateKind::Buf => ins.next().expect("arity checked"),
            GateKind::Nand(_) => !ins.fold(!0, |acc, v| acc & v),
            GateKind::Nor(_) => !ins.fold(0, |acc, v| acc | v),
            GateKind::And(_) => ins.fold(!0, |acc, v| acc & v),
            GateKind::Or(_) => ins.fold(0, |acc, v| acc | v),
            GateKind::Xor2 => {
                let a = ins.next().expect("arity checked");
                let b = ins.next().expect("arity checked");
                a ^ b
            }
            GateKind::Xnor2 => {
                let a = ins.next().expect("arity checked");
                let b = ins.next().expect("arity checked");
                !(a ^ b)
            }
        };
    }
    Ok(values)
}

/// Evaluates the circuit's primary outputs for the given patterns
/// (convenience over [`simulate`]).
///
/// # Errors
///
/// Propagates [`simulate`] failures.
pub fn simulate_outputs(circuit: &Circuit, inputs: &[Word]) -> Result<Vec<Word>> {
    let gates = simulate(circuit, inputs)?;
    Ok(circuit
        .outputs()
        .iter()
        .map(|&(_, s)| match s {
            Signal::Input(k) => inputs[k as usize],
            Signal::Gate(g) => gates[g.index()],
        })
        .collect())
}

/// Evaluates a single scalar pattern (`bool` per input); returns one
/// `bool` per primary output. Slower than the packed form but convenient
/// for truth-table tests.
///
/// # Errors
///
/// Propagates [`simulate`] failures.
pub fn simulate_once(circuit: &Circuit, inputs: &[bool]) -> Result<Vec<bool>> {
    let words: Vec<Word> = inputs.iter().map(|&b| if b { !0 } else { 0 }).collect();
    Ok(simulate_outputs(circuit, &words)?
        .into_iter()
        .map(|w| w & 1 != 0)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::blocks::Builder;

    #[test]
    fn gate_primitives_truth_tables() -> Result<()> {
        let mut b = Builder::new("prims");
        let x = b.input("x");
        let y = b.input("y");
        let nand = b.nand2(x, y);
        let nor = b.nor2(x, y);
        let and = b.and2(x, y);
        let or = b.or2(x, y);
        let xor = b.xor2(x, y);
        let xnor = b.gate(GateKind::Xnor2, &[x, y]);
        let inv = b.not(x);
        let buf = b.gate(GateKind::Buf, &[x]);
        for (i, s) in [nand, nor, and, or, xor, xnor, inv, buf].iter().enumerate() {
            b.output(format!("o{i}"), *s);
        }
        let c = b.finish();
        // Patterns: x = 0101, y = 0011 (low 4 bits).
        let out = simulate_outputs(&c, &[0b0101, 0b0011])?;
        let low4 = |w: Word| w & 0xF;
        assert_eq!(low4(out[0]), 0b1110, "NAND");
        assert_eq!(low4(out[1]), 0b1000, "NOR");
        assert_eq!(low4(out[2]), 0b0001, "AND");
        assert_eq!(low4(out[3]), 0b0111, "OR");
        assert_eq!(low4(out[4]), 0b0110, "XOR");
        assert_eq!(low4(out[5]), 0b1001, "XNOR");
        assert_eq!(low4(out[6]), 0b1010, "INV");
        assert_eq!(low4(out[7]), 0b0101, "BUF");
        Ok(())
    }

    #[test]
    fn full_adder_truth_table() -> Result<()> {
        let mut b = Builder::new("fa");
        let a = b.input("a");
        let x = b.input("b");
        let cin = b.input("c");
        let (s, cout) = b.full_adder(a, x, cin);
        b.output("s", s);
        b.output("cout", cout);
        let c = b.finish();
        for bits in 0..8u8 {
            let ins = [(bits & 1) != 0, (bits & 2) != 0, (bits & 4) != 0];
            let out = simulate_once(&c, &ins)?;
            let total = ins.iter().filter(|&&v| v).count();
            assert_eq!(out[0], total % 2 == 1, "sum for {bits:03b}");
            assert_eq!(out[1], total >= 2, "carry for {bits:03b}");
        }
        Ok(())
    }

    #[test]
    fn nor_full_adder_matches_xor_full_adder() -> Result<()> {
        let mut b = Builder::new("fa2");
        let a = b.input("a");
        let x = b.input("b");
        let cin = b.input("c");
        let (s1, c1) = b.full_adder(a, x, cin);
        let (s2, c2) = b.full_adder_nor(a, x, cin);
        b.output("s1", s1);
        b.output("c1", c1);
        b.output("s2", s2);
        b.output("c2", c2);
        let c = b.finish();
        for bits in 0..8u8 {
            let ins = [(bits & 1) != 0, (bits & 2) != 0, (bits & 4) != 0];
            let out = simulate_once(&c, &ins)?;
            assert_eq!(out[0], out[2], "sums differ at {bits:03b}");
            assert_eq!(out[1], out[3], "carries differ at {bits:03b}");
        }
        Ok(())
    }

    #[test]
    fn xor_nand4_expansion_is_xor() -> Result<()> {
        let mut b = Builder::new("x4");
        let x = b.input("x");
        let y = b.input("y");
        let direct = b.xor2(x, y);
        let expanded = b.xor_nand4(x, y);
        b.output("d", direct);
        b.output("e", expanded);
        let c = b.finish();
        let out = simulate_outputs(&c, &[0b0101, 0b0011])?;
        assert_eq!(out[0] & 0xF, out[1] & 0xF);
        Ok(())
    }

    #[test]
    fn ripple_adder_adds() -> Result<()> {
        let mut b = Builder::new("add");
        let a = b.inputs("a", 8);
        let x = b.inputs("b", 8);
        let cin = b.input("cin");
        let (sums, cout) = b.ripple_adder(&a, &x, cin);
        for (i, s) in sums.iter().enumerate() {
            b.output(format!("s{i}"), *s);
        }
        b.output("cout", cout);
        let c = b.finish();
        for (av, bv, cv) in [(13u16, 29u16, 0u16), (255, 255, 1), (0, 0, 0), (170, 85, 1)] {
            let mut ins = Vec::new();
            for i in 0..8 {
                ins.push((av >> i) & 1 == 1);
            }
            for i in 0..8 {
                ins.push((bv >> i) & 1 == 1);
            }
            ins.push(cv == 1);
            let out = simulate_once(&c, &ins)?;
            let mut got = 0u16;
            for (i, &bit) in out.iter().enumerate().take(8) {
                if bit {
                    got |= 1 << i;
                }
            }
            if out[8] {
                got |= 1 << 8;
            }
            assert_eq!(got, av + bv + cv, "{av}+{bv}+{cv}");
        }
        Ok(())
    }

    #[test]
    fn mux2_selects_correctly() -> Result<()> {
        let mut b = Builder::new("mux");
        let a = b.input("a");
        let x = b.input("b");
        let sel = b.input("s");
        let m = b.mux2(a, x, sel);
        b.output("m", m);
        let c = b.finish();
        // sel=0 → a, sel=1 → b.
        assert!(simulate_once(&c, &[true, false, false])?[0]);
        assert!(!simulate_once(&c, &[true, false, true])?[0]);
        assert!(simulate_once(&c, &[false, true, true])?[0]);
        Ok(())
    }

    #[test]
    fn priority_chain_grants_highest_only() -> Result<()> {
        let mut b = Builder::new("prio");
        let reqs = b.inputs("r", 4);
        let grants = b.priority_chain(&reqs);
        for (i, g) in grants.iter().enumerate() {
            b.output(format!("g{i}"), *g);
        }
        let c = b.finish();
        // Requests 1 and 3 active: only grant 1 fires.
        let out = simulate_once(&c, &[false, true, false, true])?;
        assert_eq!(out, vec![false, true, false, false]);
        // No requests: no grants.
        let out = simulate_once(&c, &[false; 4])?;
        assert_eq!(out, vec![false; 4]);
        // All requests: grant 0 only.
        let out = simulate_once(&c, &[true; 4])?;
        assert_eq!(out, vec![true, false, false, false]);
        Ok(())
    }

    #[test]
    fn decoder_one_hot() -> Result<()> {
        let mut b = Builder::new("dec");
        let sel = b.inputs("s", 2);
        let lines = b.decoder(&sel);
        for (i, l) in lines.iter().enumerate() {
            b.output(format!("l{i}"), *l);
        }
        let c = b.finish();
        for code in 0..4usize {
            let ins = [(code & 1) != 0, (code & 2) != 0];
            let out = simulate_once(&c, &ins)?;
            for (i, &bit) in out.iter().enumerate() {
                assert_eq!(bit, i == code, "code {code}, line {i}");
            }
        }
        Ok(())
    }

    #[test]
    fn equality_comparator_works() -> Result<()> {
        let mut b = Builder::new("eq");
        let a = b.inputs("a", 4);
        let x = b.inputs("b", 4);
        let eq = b.equality(&a, &x);
        b.output("eq", eq);
        let c = b.finish();
        let run = |av: u8, bv: u8| -> Result<bool> {
            let mut ins = Vec::new();
            for i in 0..4 {
                ins.push((av >> i) & 1 == 1);
            }
            for i in 0..4 {
                ins.push((bv >> i) & 1 == 1);
            }
            Ok(simulate_once(&c, &ins)?[0])
        };
        assert!(run(9, 9)?);
        assert!(!run(9, 8)?);
        assert!(run(0, 0)?);
        assert!(!run(15, 0)?);
        Ok(())
    }

    #[test]
    fn xor_tree_computes_parity_expanded_and_plain() -> Result<()> {
        for expand in [false, true] {
            let mut b = Builder::new("par");
            let ins = b.inputs("i", 7);
            let root = b.xor_tree(&ins, expand);
            b.output("p", root);
            let c = b.finish();
            for pattern in 0..128u32 {
                let bits: Vec<bool> = (0..7).map(|i| (pattern >> i) & 1 == 1).collect();
                let out = simulate_once(&c, &bits)?;
                assert_eq!(
                    out[0],
                    pattern.count_ones() % 2 == 1,
                    "pattern {pattern:07b}"
                );
            }
        }
        Ok(())
    }

    #[test]
    fn c6288_product_bit_zero_exact() -> Result<()> {
        // The array's boundary cells use stand-in carries (the documented
        // substitution), so only product bit 0 — which bypasses the adder
        // array — is arithmetically exact: p0 = a0·b0.
        use crate::generators::iscas85::{self, Benchmark};
        let c = iscas85::generate(Benchmark::C6288);
        for (av, bv) in [(3u32, 5u32), (7, 8), (122, 45), (65535, 1)] {
            let mut ins = Vec::new();
            for i in 0..16 {
                ins.push((av >> i) & 1 == 1);
            }
            for i in 0..16 {
                ins.push((bv >> i) & 1 == 1);
            }
            let out = simulate_once(&c, &ins)?;
            assert_eq!(out[0], (av & 1 == 1) && (bv & 1 == 1), "{av}×{bv} bit 0");
        }
        Ok(())
    }

    #[test]
    fn c6288_outputs_depend_on_inputs() -> Result<()> {
        // Structural liveness: toggling an operand bit must flip at least
        // one product bit.
        use crate::generators::iscas85::{self, Benchmark};
        let c = iscas85::generate(Benchmark::C6288);
        let base = vec![true; 32];
        let out_base = simulate_once(&c, &base)?;
        for flip in [0usize, 7, 15, 16, 25, 31] {
            let mut ins = base.clone();
            ins[flip] = false;
            let out = simulate_once(&c, &ins)?;
            assert_ne!(out, out_base, "input {flip} has no observable effect");
        }
        Ok(())
    }

    #[test]
    fn stimulus_width_checked() {
        let mut b = Builder::new("t");
        let x = b.input("x");
        b.output("o", x);
        let c = b.finish();
        assert!(simulate(&c, &[]).is_err());
        assert!(simulate(&c, &[0, 0]).is_err());
    }
}
