//! Logic simulation.
//!
//! A parallel (64-way bit-packed) combinational simulator, used to
//! functionally verify the generated circuits — the array multiplier
//! really multiplies, parity trees really compute parity — and available
//! to downstream users for sanity checks on parsed netlists.
//!
//! Sequential circuits are simulated tick-by-tick through the
//! [`SequentialSim`] trait (digisim-style): register state advances on
//! each [`SequentialSim::tick`], with two interchangeable engines —
//! [`NaiveSim`] re-runs the plain combinational simulator every tick,
//! [`FastSim`] evaluates in place over preallocated buffers — kept
//! honest against each other by a cross-implementation equivalence test.

use crate::circuit::{Circuit, Signal};
use crate::error::NetlistError;
use crate::Result;
use statim_process::GateKind;

/// A 64-pattern-wide logic value per net.
pub type Word = u64;

/// Evaluates `circuit` on bit-packed input patterns: `inputs[i]` carries
/// 64 stimulus bits for primary input `i`. Returns one [`Word`] per gate
/// (indexable by [`crate::GateId::index`]) holding the gate outputs for
/// all 64 patterns.
///
/// # Errors
///
/// Returns [`NetlistError::PlacementMismatch`] (reused for arity) if the
/// stimulus width differs from the circuit's input count.
pub fn simulate(circuit: &Circuit, inputs: &[Word]) -> Result<Vec<Word>> {
    if inputs.len() != circuit.input_count() {
        return Err(NetlistError::PlacementMismatch {
            gates: circuit.input_count(),
            placed: inputs.len(),
        });
    }
    let mut values = vec![0 as Word; circuit.gate_count()];
    for (i, gate) in circuit.gates().iter().enumerate() {
        let fetch = |s: &Signal| -> Word {
            match s {
                Signal::Input(k) => inputs[*k as usize],
                Signal::Gate(g) => values[g.index()],
            }
        };
        let mut ins = gate.inputs.iter().map(fetch);
        values[i] = match gate.kind {
            GateKind::Inv => !ins.next().expect("arity checked"),
            GateKind::Buf => ins.next().expect("arity checked"),
            GateKind::Nand(_) => !ins.fold(!0, |acc, v| acc & v),
            GateKind::Nor(_) => !ins.fold(0, |acc, v| acc | v),
            GateKind::And(_) => ins.fold(!0, |acc, v| acc & v),
            GateKind::Or(_) => ins.fold(0, |acc, v| acc | v),
            GateKind::Xor2 => {
                let a = ins.next().expect("arity checked");
                let b = ins.next().expect("arity checked");
                a ^ b
            }
            GateKind::Xnor2 => {
                let a = ins.next().expect("arity checked");
                let b = ins.next().expect("arity checked");
                !(a ^ b)
            }
        };
    }
    Ok(values)
}

/// Evaluates the circuit's primary outputs for the given patterns
/// (convenience over [`simulate`]).
///
/// # Errors
///
/// Propagates [`simulate`] failures.
pub fn simulate_outputs(circuit: &Circuit, inputs: &[Word]) -> Result<Vec<Word>> {
    let gates = simulate(circuit, inputs)?;
    Ok(circuit
        .outputs()
        .iter()
        .map(|&(_, s)| match s {
            Signal::Input(k) => inputs[k as usize],
            Signal::Gate(g) => gates[g.index()],
        })
        .collect())
}

/// Evaluates a single scalar pattern (`bool` per input); returns one
/// `bool` per primary output. Slower than the packed form but convenient
/// for truth-table tests.
///
/// # Errors
///
/// Propagates [`simulate`] failures.
pub fn simulate_once(circuit: &Circuit, inputs: &[bool]) -> Result<Vec<bool>> {
    let words: Vec<Word> = inputs.iter().map(|&b| if b { !0 } else { 0 }).collect();
    Ok(simulate_outputs(circuit, &words)?
        .into_iter()
        .map(|w| w & 1 != 0)
        .collect())
}

/// Tick-based simulation of a sequential circuit: 64 independent
/// pattern streams advance in lockstep, one clock edge per
/// [`SequentialSim::tick`].
///
/// Tick semantics: with the current register state `Q` and the supplied
/// true-input patterns, evaluate the combinational core, return the
/// primary-output values for this cycle, then clock every register
/// (`Q := D`). Registers reset to all-zero.
pub trait SequentialSim {
    /// The circuit being simulated.
    fn circuit(&self) -> &Circuit;

    /// Current register state, one [`Word`] per register in definition
    /// order.
    fn state(&self) -> &[Word];

    /// Resets all registers to zero.
    fn reset(&mut self);

    /// Advances one clock cycle; `inputs` carries one [`Word`] per
    /// *true* primary input. Returns the primary-output values for the
    /// cycle (evaluated before the clock edge).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::PlacementMismatch`] if the stimulus width
    /// differs from [`Circuit::true_input_count`].
    fn tick(&mut self, inputs: &[Word]) -> Result<Vec<Word>>;
}

fn check_sequential(circuit: &Circuit) -> Result<()> {
    for r in circuit.registers() {
        if r.d.is_none() {
            return Err(NetlistError::InvalidConfig {
                message: format!("register `{}` has an unconnected D pin", r.name),
            });
        }
    }
    Ok(())
}

fn check_width(circuit: &Circuit, inputs: &[Word]) -> Result<()> {
    if inputs.len() != circuit.true_input_count() {
        return Err(NetlistError::PlacementMismatch {
            gates: circuit.true_input_count(),
            placed: inputs.len(),
        });
    }
    Ok(())
}

fn signal_value(all_inputs: &[Word], gates: &[Word], s: Signal) -> Word {
    match s {
        Signal::Input(k) => all_inputs[k as usize],
        Signal::Gate(g) => gates[g.index()],
    }
}

/// Reference sequential engine: each tick re-runs [`simulate`] on the
/// full input vector (true inputs followed by register state).
#[derive(Debug, Clone)]
pub struct NaiveSim {
    circuit: Circuit,
    state: Vec<Word>,
}

impl NaiveSim {
    /// Wraps `circuit` (cloned) with all registers reset to zero.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InvalidConfig`] if any register's D pin
    /// is unconnected.
    pub fn new(circuit: &Circuit) -> Result<Self> {
        check_sequential(circuit)?;
        Ok(NaiveSim {
            state: vec![0; circuit.registers().len()],
            circuit: circuit.clone(),
        })
    }
}

impl SequentialSim for NaiveSim {
    fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    fn state(&self) -> &[Word] {
        &self.state
    }

    fn reset(&mut self) {
        self.state.fill(0);
    }

    fn tick(&mut self, inputs: &[Word]) -> Result<Vec<Word>> {
        check_width(&self.circuit, inputs)?;
        let mut all = Vec::with_capacity(inputs.len() + self.state.len());
        all.extend_from_slice(inputs);
        all.extend_from_slice(&self.state);
        let gates = simulate(&self.circuit, &all)?;
        let outs = self
            .circuit
            .outputs()
            .iter()
            .map(|&(_, s)| signal_value(&all, &gates, s))
            .collect();
        for (i, r) in self.circuit.registers().iter().enumerate() {
            let d = r.d.expect("checked at construction");
            self.state[i] = signal_value(&all, &gates, d);
        }
        Ok(outs)
    }
}

/// Throughput-oriented sequential engine: evaluates the levelized gate
/// list in place over preallocated buffers — no per-tick allocation
/// beyond the returned output vector.
#[derive(Debug, Clone)]
pub struct FastSim {
    circuit: Circuit,
    state: Vec<Word>,
    all_inputs: Vec<Word>,
    values: Vec<Word>,
}

impl FastSim {
    /// Wraps `circuit` (cloned) with all registers reset to zero.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InvalidConfig`] if any register's D pin
    /// is unconnected.
    pub fn new(circuit: &Circuit) -> Result<Self> {
        check_sequential(circuit)?;
        Ok(FastSim {
            state: vec![0; circuit.registers().len()],
            all_inputs: vec![0; circuit.input_count()],
            values: vec![0; circuit.gate_count()],
            circuit: circuit.clone(),
        })
    }
}

impl SequentialSim for FastSim {
    fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    fn state(&self) -> &[Word] {
        &self.state
    }

    fn reset(&mut self) {
        self.state.fill(0);
    }

    fn tick(&mut self, inputs: &[Word]) -> Result<Vec<Word>> {
        check_width(&self.circuit, inputs)?;
        let true_inputs = self.circuit.true_input_count();
        self.all_inputs[..true_inputs].copy_from_slice(inputs);
        self.all_inputs[true_inputs..].copy_from_slice(&self.state);
        for (i, gate) in self.circuit.gates().iter().enumerate() {
            let fetch = |s: &Signal| -> Word {
                match s {
                    Signal::Input(k) => self.all_inputs[*k as usize],
                    Signal::Gate(g) => self.values[g.index()],
                }
            };
            let mut ins = gate.inputs.iter().map(fetch);
            self.values[i] = match gate.kind {
                GateKind::Inv => !ins.next().expect("arity checked"),
                GateKind::Buf => ins.next().expect("arity checked"),
                GateKind::Nand(_) => !ins.fold(!0, |acc, v| acc & v),
                GateKind::Nor(_) => !ins.fold(0, |acc, v| acc | v),
                GateKind::And(_) => ins.fold(!0, |acc, v| acc & v),
                GateKind::Or(_) => ins.fold(0, |acc, v| acc | v),
                GateKind::Xor2 => {
                    let a = ins.next().expect("arity checked");
                    let b = ins.next().expect("arity checked");
                    a ^ b
                }
                GateKind::Xnor2 => {
                    let a = ins.next().expect("arity checked");
                    let b = ins.next().expect("arity checked");
                    !(a ^ b)
                }
            };
        }
        let outs = self
            .circuit
            .outputs()
            .iter()
            .map(|&(_, s)| signal_value(&self.all_inputs, &self.values, s))
            .collect();
        for (i, r) in self.circuit.registers().iter().enumerate() {
            let d = r.d.expect("checked at construction");
            self.state[i] = signal_value(&self.all_inputs, &self.values, d);
        }
        Ok(outs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::blocks::Builder;

    #[test]
    fn gate_primitives_truth_tables() -> Result<()> {
        let mut b = Builder::new("prims");
        let x = b.input("x");
        let y = b.input("y");
        let nand = b.nand2(x, y);
        let nor = b.nor2(x, y);
        let and = b.and2(x, y);
        let or = b.or2(x, y);
        let xor = b.xor2(x, y);
        let xnor = b.gate(GateKind::Xnor2, &[x, y]);
        let inv = b.not(x);
        let buf = b.gate(GateKind::Buf, &[x]);
        for (i, s) in [nand, nor, and, or, xor, xnor, inv, buf].iter().enumerate() {
            b.output(format!("o{i}"), *s);
        }
        let c = b.finish();
        // Patterns: x = 0101, y = 0011 (low 4 bits).
        let out = simulate_outputs(&c, &[0b0101, 0b0011])?;
        let low4 = |w: Word| w & 0xF;
        assert_eq!(low4(out[0]), 0b1110, "NAND");
        assert_eq!(low4(out[1]), 0b1000, "NOR");
        assert_eq!(low4(out[2]), 0b0001, "AND");
        assert_eq!(low4(out[3]), 0b0111, "OR");
        assert_eq!(low4(out[4]), 0b0110, "XOR");
        assert_eq!(low4(out[5]), 0b1001, "XNOR");
        assert_eq!(low4(out[6]), 0b1010, "INV");
        assert_eq!(low4(out[7]), 0b0101, "BUF");
        Ok(())
    }

    #[test]
    fn full_adder_truth_table() -> Result<()> {
        let mut b = Builder::new("fa");
        let a = b.input("a");
        let x = b.input("b");
        let cin = b.input("c");
        let (s, cout) = b.full_adder(a, x, cin);
        b.output("s", s);
        b.output("cout", cout);
        let c = b.finish();
        for bits in 0..8u8 {
            let ins = [(bits & 1) != 0, (bits & 2) != 0, (bits & 4) != 0];
            let out = simulate_once(&c, &ins)?;
            let total = ins.iter().filter(|&&v| v).count();
            assert_eq!(out[0], total % 2 == 1, "sum for {bits:03b}");
            assert_eq!(out[1], total >= 2, "carry for {bits:03b}");
        }
        Ok(())
    }

    #[test]
    fn nor_full_adder_matches_xor_full_adder() -> Result<()> {
        let mut b = Builder::new("fa2");
        let a = b.input("a");
        let x = b.input("b");
        let cin = b.input("c");
        let (s1, c1) = b.full_adder(a, x, cin);
        let (s2, c2) = b.full_adder_nor(a, x, cin);
        b.output("s1", s1);
        b.output("c1", c1);
        b.output("s2", s2);
        b.output("c2", c2);
        let c = b.finish();
        for bits in 0..8u8 {
            let ins = [(bits & 1) != 0, (bits & 2) != 0, (bits & 4) != 0];
            let out = simulate_once(&c, &ins)?;
            assert_eq!(out[0], out[2], "sums differ at {bits:03b}");
            assert_eq!(out[1], out[3], "carries differ at {bits:03b}");
        }
        Ok(())
    }

    #[test]
    fn xor_nand4_expansion_is_xor() -> Result<()> {
        let mut b = Builder::new("x4");
        let x = b.input("x");
        let y = b.input("y");
        let direct = b.xor2(x, y);
        let expanded = b.xor_nand4(x, y);
        b.output("d", direct);
        b.output("e", expanded);
        let c = b.finish();
        let out = simulate_outputs(&c, &[0b0101, 0b0011])?;
        assert_eq!(out[0] & 0xF, out[1] & 0xF);
        Ok(())
    }

    #[test]
    fn ripple_adder_adds() -> Result<()> {
        let mut b = Builder::new("add");
        let a = b.inputs("a", 8);
        let x = b.inputs("b", 8);
        let cin = b.input("cin");
        let (sums, cout) = b.ripple_adder(&a, &x, cin);
        for (i, s) in sums.iter().enumerate() {
            b.output(format!("s{i}"), *s);
        }
        b.output("cout", cout);
        let c = b.finish();
        for (av, bv, cv) in [(13u16, 29u16, 0u16), (255, 255, 1), (0, 0, 0), (170, 85, 1)] {
            let mut ins = Vec::new();
            for i in 0..8 {
                ins.push((av >> i) & 1 == 1);
            }
            for i in 0..8 {
                ins.push((bv >> i) & 1 == 1);
            }
            ins.push(cv == 1);
            let out = simulate_once(&c, &ins)?;
            let mut got = 0u16;
            for (i, &bit) in out.iter().enumerate().take(8) {
                if bit {
                    got |= 1 << i;
                }
            }
            if out[8] {
                got |= 1 << 8;
            }
            assert_eq!(got, av + bv + cv, "{av}+{bv}+{cv}");
        }
        Ok(())
    }

    #[test]
    fn mux2_selects_correctly() -> Result<()> {
        let mut b = Builder::new("mux");
        let a = b.input("a");
        let x = b.input("b");
        let sel = b.input("s");
        let m = b.mux2(a, x, sel);
        b.output("m", m);
        let c = b.finish();
        // sel=0 → a, sel=1 → b.
        assert!(simulate_once(&c, &[true, false, false])?[0]);
        assert!(!simulate_once(&c, &[true, false, true])?[0]);
        assert!(simulate_once(&c, &[false, true, true])?[0]);
        Ok(())
    }

    #[test]
    fn priority_chain_grants_highest_only() -> Result<()> {
        let mut b = Builder::new("prio");
        let reqs = b.inputs("r", 4);
        let grants = b.priority_chain(&reqs);
        for (i, g) in grants.iter().enumerate() {
            b.output(format!("g{i}"), *g);
        }
        let c = b.finish();
        // Requests 1 and 3 active: only grant 1 fires.
        let out = simulate_once(&c, &[false, true, false, true])?;
        assert_eq!(out, vec![false, true, false, false]);
        // No requests: no grants.
        let out = simulate_once(&c, &[false; 4])?;
        assert_eq!(out, vec![false; 4]);
        // All requests: grant 0 only.
        let out = simulate_once(&c, &[true; 4])?;
        assert_eq!(out, vec![true, false, false, false]);
        Ok(())
    }

    #[test]
    fn decoder_one_hot() -> Result<()> {
        let mut b = Builder::new("dec");
        let sel = b.inputs("s", 2);
        let lines = b.decoder(&sel);
        for (i, l) in lines.iter().enumerate() {
            b.output(format!("l{i}"), *l);
        }
        let c = b.finish();
        for code in 0..4usize {
            let ins = [(code & 1) != 0, (code & 2) != 0];
            let out = simulate_once(&c, &ins)?;
            for (i, &bit) in out.iter().enumerate() {
                assert_eq!(bit, i == code, "code {code}, line {i}");
            }
        }
        Ok(())
    }

    #[test]
    fn equality_comparator_works() -> Result<()> {
        let mut b = Builder::new("eq");
        let a = b.inputs("a", 4);
        let x = b.inputs("b", 4);
        let eq = b.equality(&a, &x);
        b.output("eq", eq);
        let c = b.finish();
        let run = |av: u8, bv: u8| -> Result<bool> {
            let mut ins = Vec::new();
            for i in 0..4 {
                ins.push((av >> i) & 1 == 1);
            }
            for i in 0..4 {
                ins.push((bv >> i) & 1 == 1);
            }
            Ok(simulate_once(&c, &ins)?[0])
        };
        assert!(run(9, 9)?);
        assert!(!run(9, 8)?);
        assert!(run(0, 0)?);
        assert!(!run(15, 0)?);
        Ok(())
    }

    #[test]
    fn xor_tree_computes_parity_expanded_and_plain() -> Result<()> {
        for expand in [false, true] {
            let mut b = Builder::new("par");
            let ins = b.inputs("i", 7);
            let root = b.xor_tree(&ins, expand);
            b.output("p", root);
            let c = b.finish();
            for pattern in 0..128u32 {
                let bits: Vec<bool> = (0..7).map(|i| (pattern >> i) & 1 == 1).collect();
                let out = simulate_once(&c, &bits)?;
                assert_eq!(
                    out[0],
                    pattern.count_ones() % 2 == 1,
                    "pattern {pattern:07b}"
                );
            }
        }
        Ok(())
    }

    #[test]
    fn c6288_product_bit_zero_exact() -> Result<()> {
        // The array's boundary cells use stand-in carries (the documented
        // substitution), so only product bit 0 — which bypasses the adder
        // array — is arithmetically exact: p0 = a0·b0.
        use crate::generators::iscas85::{self, Benchmark};
        let c = iscas85::generate(Benchmark::C6288);
        for (av, bv) in [(3u32, 5u32), (7, 8), (122, 45), (65535, 1)] {
            let mut ins = Vec::new();
            for i in 0..16 {
                ins.push((av >> i) & 1 == 1);
            }
            for i in 0..16 {
                ins.push((bv >> i) & 1 == 1);
            }
            let out = simulate_once(&c, &ins)?;
            assert_eq!(out[0], (av & 1 == 1) && (bv & 1 == 1), "{av}×{bv} bit 0");
        }
        Ok(())
    }

    #[test]
    fn c6288_outputs_depend_on_inputs() -> Result<()> {
        // Structural liveness: toggling an operand bit must flip at least
        // one product bit.
        use crate::generators::iscas85::{self, Benchmark};
        let c = iscas85::generate(Benchmark::C6288);
        let base = vec![true; 32];
        let out_base = simulate_once(&c, &base)?;
        for flip in [0usize, 7, 15, 16, 25, 31] {
            let mut ins = base.clone();
            ins[flip] = false;
            let out = simulate_once(&c, &ins)?;
            assert_ne!(out, out_base, "input {flip} has no observable effect");
        }
        Ok(())
    }

    /// Deterministic 64-bit stimulus stream (xorshift64*).
    fn stimulus(seed: &mut u64) -> Word {
        *seed ^= *seed << 13;
        *seed ^= *seed >> 7;
        *seed ^= *seed << 17;
        seed.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    #[test]
    fn naive_and_fast_sims_agree() -> Result<()> {
        use crate::generators::sequential;
        for circuit in [
            sequential::s27(),
            sequential::pipeline(3, 5)?,
            sequential::pipeline(1, 2)?,
        ] {
            let mut naive = NaiveSim::new(&circuit)?;
            let mut fast = FastSim::new(&circuit)?;
            let mut seed = 0x5EED_0001_u64 ^ circuit.gate_count() as u64;
            for t in 0..64 {
                let ins: Vec<Word> = (0..circuit.true_input_count())
                    .map(|_| stimulus(&mut seed))
                    .collect();
                let a = naive.tick(&ins)?;
                let b = fast.tick(&ins)?;
                assert_eq!(a, b, "{} outputs diverge at tick {t}", circuit.name());
                assert_eq!(
                    naive.state(),
                    fast.state(),
                    "{} state diverges at tick {t}",
                    circuit.name()
                );
            }
            naive.reset();
            fast.reset();
            assert_eq!(naive.state(), vec![0; circuit.registers().len()]);
            assert_eq!(naive.state(), fast.state());
        }
        Ok(())
    }

    #[test]
    fn pipeline_bit0_delays_by_stage_count() -> Result<()> {
        use crate::generators::sequential;
        let stages = 4;
        let c = sequential::pipeline(stages, 3)?;
        let mut sim = FastSim::new(&c)?;
        let mut seed = 0xABCD_u64;
        let mut sent: Vec<Word> = Vec::new();
        for t in 0..16 {
            let ins: Vec<Word> = (0..3).map(|_| stimulus(&mut seed)).collect();
            sent.push(ins[0]);
            let outs = sim.tick(&ins)?;
            // out0 is in0 delayed by `stages` ticks through the buffer
            // chain (before enough ticks, the reset state 0 shows).
            let expect = if t >= stages { sent[t - stages] } else { 0 };
            assert_eq!(outs[0], expect, "tick {t}");
        }
        Ok(())
    }

    #[test]
    fn sequential_sim_rejects_bad_shapes() -> Result<()> {
        use crate::generators::sequential;
        let c = sequential::s27();
        let mut sim = NaiveSim::new(&c)?;
        assert!(sim.tick(&[0; 3]).is_err());
        assert!(sim.tick(&[0; 7]).is_err());
        // Unconnected D pin is rejected at construction.
        let mut dangling = crate::circuit::Circuit::new("bad");
        let a = dangling.add_input("a")?;
        dangling.add_register("r", 1)?;
        let _ = a;
        assert!(matches!(
            NaiveSim::new(&dangling),
            Err(NetlistError::InvalidConfig { .. })
        ));
        assert!(FastSim::new(&dangling).is_err());
        Ok(())
    }

    #[test]
    fn s27_tick_simulation_is_live() -> Result<()> {
        use crate::generators::sequential;
        let c = sequential::s27();
        let mut sim = FastSim::new(&c)?;
        // Drive all-ones then all-zeros; the output and state must react.
        let mut distinct = std::collections::HashSet::new();
        for t in 0..8 {
            let v: Word = if t % 2 == 0 { !0 } else { 0 };
            let outs = sim.tick(&[v; 4])?;
            distinct.insert((outs[0], sim.state().to_vec()));
        }
        assert!(distinct.len() > 1, "state machine never moved");
        Ok(())
    }

    #[test]
    fn stimulus_width_checked() {
        let mut b = Builder::new("t");
        let x = b.input("x");
        b.output("o", x);
        let c = b.finish();
        assert!(simulate(&c, &[]).is_err());
        assert!(simulate(&c, &[0, 0]).is_err());
    }
}
