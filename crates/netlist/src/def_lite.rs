//! DEF-lite: the Design Exchange Format subset the methodology consumes.
//!
//! The paper "reads the circuit-description as a DEF file" and extracts
//! the gate (x, y) coordinates for the spatial-correlation model. This
//! module reads and writes the DEF pieces that matter for that purpose:
//!
//! ```text
//! VERSION 5.6 ;
//! DESIGN c432 ;
//! UNITS DISTANCE MICRONS 1000 ;
//! DIEAREA ( 0 0 ) ( 130000 130000 ) ;
//! COMPONENTS 160 ;
//! - g001 NAND2 + PLACED ( 5000 3000 ) N ;
//! ...
//! END COMPONENTS
//! END DESIGN
//! ```
//!
//! Coordinates are stored in DEF database units (`UNITS DISTANCE MICRONS
//! <dbu>` per micron) and converted to microns on read.

use crate::circuit::Circuit;
use crate::error::NetlistError;
use crate::place::Placement;
use crate::Result;
use std::collections::HashMap;

/// A parsed DEF-lite file: design name, die side (microns) and component
/// positions (microns).
#[derive(Debug, Clone, PartialEq)]
pub struct DefDesign {
    /// DESIGN name.
    pub name: String,
    /// Die side in microns (the larger of the two DIEAREA extents).
    pub die_side: f64,
    /// Component name → (x, y) in microns.
    pub components: HashMap<String, (f64, f64)>,
}

impl DefDesign {
    /// Builds a [`Placement`] for `circuit` by looking every gate up by
    /// instance name.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UndefinedName`] if a gate has no placed
    /// component.
    pub fn placement_for(&self, circuit: &Circuit) -> Result<Placement> {
        let mut positions = Vec::with_capacity(circuit.gate_count());
        for g in circuit.gates() {
            let &(x, y) =
                self.components
                    .get(&g.name)
                    .ok_or_else(|| NetlistError::UndefinedName {
                        name: g.name.clone(),
                    })?;
            positions.push((x, y));
        }
        Placement::from_positions(circuit, positions, self.die_side)
    }
}

/// Parses DEF-lite text.
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] with the offending line for anything
/// the subset does not understand.
pub fn parse(text: &str) -> Result<DefDesign> {
    let mut name = String::new();
    let mut dbu_per_micron = 1000.0;
    let mut die_side = 0.0f64;
    let mut components = HashMap::new();
    let mut in_components = false;

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let toks: Vec<&str> = line.split_whitespace().collect();
        match toks[0] {
            "VERSION" | "DIVIDERCHAR" | "BUSBITCHARS" => {}
            "DESIGN" if toks.len() >= 2 => name = toks[1].trim_end_matches(';').to_string(),
            "UNITS" => {
                // UNITS DISTANCE MICRONS 1000 ;
                if let Some(v) = toks.iter().find_map(|t| t.parse::<f64>().ok()) {
                    if v <= 0.0 {
                        return Err(NetlistError::Parse {
                            line: line_no,
                            col: crate::col_in(raw, line),
                            message: format!("non-positive DBU {v}"),
                        });
                    }
                    dbu_per_micron = v;
                }
            }
            "DIEAREA" => {
                let nums: Vec<f64> = toks.iter().filter_map(|t| t.parse::<f64>().ok()).collect();
                if nums.len() != 4 {
                    return Err(NetlistError::Parse {
                        line: line_no,
                        col: crate::col_in(raw, line),
                        message: "DIEAREA needs two coordinate pairs".into(),
                    });
                }
                die_side = (nums[2] - nums[0]).max(nums[3] - nums[1]);
            }
            "COMPONENTS" => in_components = true,
            "END" => {
                if toks.get(1) == Some(&"COMPONENTS") {
                    in_components = false;
                }
            }
            "-" if in_components => {
                // - <name> <cell> + PLACED ( x y ) N ;
                let comp = toks.get(1).ok_or_else(|| NetlistError::Parse {
                    line: line_no,
                    col: crate::col_in(raw, line),
                    message: "component line missing name".into(),
                })?;
                let nums: Vec<f64> = toks.iter().filter_map(|t| t.parse::<f64>().ok()).collect();
                if nums.len() < 2 {
                    return Err(NetlistError::Parse {
                        line: line_no,
                        col: crate::col_in(raw, comp),
                        message: format!("component `{comp}` has no placed coordinates"),
                    });
                }
                components.insert(
                    comp.to_string(),
                    (nums[0] / dbu_per_micron, nums[1] / dbu_per_micron),
                );
            }
            _ => {
                // Tolerate unknown statements outside COMPONENTS (NETS,
                // PINS, ... may follow in real DEF files).
                if in_components {
                    return Err(NetlistError::Parse {
                        line: line_no,
                        col: crate::col_in(raw, line),
                        message: format!("unrecognized component line `{line}`"),
                    });
                }
            }
        }
    }
    if die_side <= 0.0 {
        return Err(NetlistError::Parse {
            line: 0,
            col: 0,
            message: "missing DIEAREA".into(),
        });
    }
    Ok(DefDesign {
        name,
        die_side: die_side / dbu_per_micron,
        components,
    })
}

/// Serializes a circuit + placement as DEF-lite (1000 DBU per micron).
pub fn write(circuit: &Circuit, placement: &Placement) -> String {
    use std::fmt::Write as _;
    const DBU: f64 = 1000.0;
    let mut out = String::new();
    let _ = writeln!(out, "VERSION 5.6 ;");
    let _ = writeln!(out, "DESIGN {} ;", circuit.name());
    let _ = writeln!(out, "UNITS DISTANCE MICRONS {DBU} ;");
    let side = (placement.die_side() * DBU).round();
    let _ = writeln!(out, "DIEAREA ( 0 0 ) ( {side} {side} ) ;");
    let _ = writeln!(out, "COMPONENTS {} ;", circuit.gate_count());
    for (g, id) in circuit.gates().iter().zip(circuit.gate_ids()) {
        let (x, y) = placement.position(id);
        let _ = writeln!(
            out,
            "- {} {} + PLACED ( {} {} ) N ;",
            g.name,
            g.kind,
            (x * DBU).round(),
            (y * DBU).round()
        );
    }
    let _ = writeln!(out, "END COMPONENTS");
    let _ = writeln!(out, "END DESIGN");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::place::PlacementStyle;
    use statim_process::GateKind;

    fn tiny() -> Result<Circuit> {
        let mut c = Circuit::new("tiny");
        let a = c.add_input("a")?;
        let b = c.add_input("b")?;
        let g = c.add_gate("u1", GateKind::Nand(2), &[a, b])?;
        let h = c.add_gate("u2", GateKind::Inv, &[g])?;
        c.mark_output("z", h)?;
        Ok(c)
    }

    #[test]
    fn round_trip_preserves_positions() -> Result<()> {
        let c = tiny()?;
        let p = Placement::generate(&c, PlacementStyle::Levelized);
        let text = write(&c, &p);
        let def = parse(&text)?;
        assert_eq!(def.name, "tiny");
        assert_eq!(def.components.len(), 2);
        let p2 = def.placement_for(&c)?;
        for id in c.gate_ids() {
            let (x1, y1) = p.position(id);
            let (x2, y2) = p2.position(id);
            assert!((x1 - x2).abs() < 0.01, "x {x1} vs {x2}");
            assert!((y1 - y2).abs() < 0.01);
        }
        assert!((p.die_side() - p2.die_side()).abs() < 0.01);
        Ok(())
    }

    #[test]
    fn parse_handles_dbu_conversion() -> Result<()> {
        let text = "\
DESIGN t ;
UNITS DISTANCE MICRONS 2000 ;
DIEAREA ( 0 0 ) ( 200000 200000 ) ;
COMPONENTS 1 ;
- u1 NAND2 + PLACED ( 100000 50000 ) N ;
END COMPONENTS
END DESIGN
";
        let def = parse(text)?;
        assert!((def.die_side - 100.0).abs() < 1e-9);
        assert_eq!(def.components["u1"], (50.0, 25.0));
        Ok(())
    }

    #[test]
    fn missing_diearea_rejected() {
        assert!(matches!(
            parse("DESIGN t ;\n"),
            Err(NetlistError::Parse { .. })
        ));
    }

    #[test]
    fn bad_component_line_rejected() {
        let text = "\
DESIGN t ;
DIEAREA ( 0 0 ) ( 1000 1000 ) ;
COMPONENTS 1 ;
- u1 NAND2 + UNPLACED ;
END COMPONENTS
";
        assert!(parse(text).is_err());
    }

    #[test]
    fn placement_for_missing_gate_errors() -> Result<()> {
        let c = tiny()?;
        let text = "\
DESIGN tiny ;
DIEAREA ( 0 0 ) ( 10000 10000 ) ;
COMPONENTS 1 ;
- u1 NAND2 + PLACED ( 100 100 ) N ;
END COMPONENTS
";
        let def = parse(text)?;
        assert!(matches!(
            def.placement_for(&c),
            Err(NetlistError::UndefinedName { .. })
        ));
        Ok(())
    }

    #[test]
    fn unknown_sections_tolerated() {
        let text = "\
VERSION 5.6 ;
DESIGN t ;
DIEAREA ( 0 0 ) ( 1000 1000 ) ;
COMPONENTS 0 ;
END COMPONENTS
NETS 3 ;
END NETS
END DESIGN
";
        assert!(parse(text).is_ok());
    }
}
