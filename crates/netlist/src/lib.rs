//! Circuit netlists, benchmark formats, placement and synthetic
//! ISCAS85-equivalent generators.
//!
//! The DATE'05 evaluation runs on the ten ISCAS85 benchmark circuits,
//! read from DEF files that also provide the gate coordinates feeding the
//! spatial-correlation model. This crate supplies all of that substrate:
//!
//! * [`circuit`] — the in-memory netlist (a DAG of gates, acyclic by
//!   construction);
//! * [`bench_format`] — the ISCAS-85 `.bench` reader/writer, so genuine
//!   benchmark files drop in when available;
//! * [`def_lite`] — a reader/writer for the DEF subset the methodology
//!   needs (DIEAREA + COMPONENTS with PLACED coordinates);
//! * [`place`] — levelized row placement assigning every gate an (x, y)
//!   on a square die, plus a seeded random placer for ablations;
//! * [`generators`] — structural generators (adders, multipliers, XOR
//!   trees, priority logic) composed into synthetic equivalents of each
//!   ISCAS85 circuit with the published gate count and character;
//! * [`stats`] — structural statistics used in reports.
//!
//! # Example
//!
//! ```
//! use statim_netlist::generators::iscas85::{self, Benchmark};
//!
//! let c = iscas85::generate(Benchmark::C432);
//! assert_eq!(c.gate_count(), 160);       // Table 2, column 2
//! assert_eq!(c.input_count(), 36);       // 27-channel interrupt controller
//! assert!(c.depth() > 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench_format;
pub mod circuit;
pub mod def_lite;
pub mod error;
pub mod generators;
pub mod place;
pub mod simulate;
pub mod stats;
pub mod verilog;

pub use circuit::{Circuit, Gate, GateId, Signal};
pub use error::NetlistError;
pub use place::{Placement, PlacementStyle};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, NetlistError>;

/// 1-based column of `part` within the raw line it was sliced from, for
/// error reporting. Falls back to column 1 if `part` is not a subslice
/// of `raw` (it always is for the parsers in this crate).
pub(crate) fn col_in(raw: &str, part: &str) -> usize {
    let raw_start = raw.as_ptr() as usize;
    let part_start = part.as_ptr() as usize;
    if (raw_start..=raw_start + raw.len()).contains(&part_start) {
        part_start - raw_start + 1
    } else {
        1
    }
}
