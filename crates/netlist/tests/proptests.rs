//! Property-based tests for netlist construction, formats and placement
//! over randomly generated circuits.

use proptest::prelude::*;
use statim_netlist::generators::blocks::Builder;
use statim_netlist::{bench_format, def_lite, stats, Circuit, Placement, PlacementStyle, Signal};
use statim_process::GateKind;

/// Strategy: a random valid DAG circuit described by, per gate, a kind
/// selector and input selectors (resolved modulo the signals available at
/// that point, so construction is always valid).
fn arb_circuit() -> impl Strategy<Value = Circuit> {
    (
        1usize..8, // inputs
        proptest::collection::vec((0u8..8, prop::collection::vec(0usize..1000, 4)), 1..60),
        1usize..5, // outputs
    )
        .prop_map(|(n_inputs, gate_specs, n_outputs)| {
            let mut b = Builder::new("random");
            let mut signals: Vec<Signal> =
                (0..n_inputs).map(|i| b.input(format!("i{i}"))).collect();
            for (kind_sel, input_sels) in gate_specs {
                let kind = match kind_sel {
                    0 => GateKind::Inv,
                    1 => GateKind::Buf,
                    2 => GateKind::Nand(2),
                    3 => GateKind::Nor(2),
                    4 => GateKind::And(2),
                    5 => GateKind::Or(2),
                    6 => GateKind::Xor2,
                    _ => GateKind::Nand(3),
                };
                let ins: Vec<Signal> = (0..kind.fan_in())
                    .map(|k| signals[input_sels[k] % signals.len()])
                    .collect();
                signals.push(b.gate(kind, &ins));
            }
            let total = signals.len();
            for o in 0..n_outputs {
                b.output(format!("o{o}"), signals[total - 1 - (o % total)]);
            }
            b.finish()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bench_round_trip_preserves_structure(c in arb_circuit()) {
        let text = bench_format::write(&c);
        let r = bench_format::parse("random", &text).unwrap();
        prop_assert_eq!(r.gate_count(), c.gate_count());
        prop_assert_eq!(r.input_count(), c.input_count());
        prop_assert_eq!(r.depth(), c.depth());
        prop_assert_eq!(r.path_count(), c.path_count());
        // Kind histograms match.
        prop_assert_eq!(r.kind_histogram(), c.kind_histogram());
    }

    #[test]
    fn def_round_trip_preserves_positions(c in arb_circuit(), seed in 0u64..100) {
        prop_assume!(c.gate_count() > 0);
        let p = Placement::generate(&c, PlacementStyle::Random(seed));
        let text = def_lite::write(&c, &p);
        let def = def_lite::parse(&text).unwrap();
        let p2 = def.placement_for(&c).unwrap();
        for g in c.gate_ids() {
            let (x1, y1) = p.position(g);
            let (x2, y2) = p2.position(g);
            // DEF stores nanometre-rounded coordinates.
            prop_assert!((x1 - x2).abs() < 1e-2);
            prop_assert!((y1 - y2).abs() < 1e-2);
        }
    }

    #[test]
    fn placements_stay_on_die(c in arb_circuit(), seed in 0u64..50) {
        prop_assume!(c.gate_count() > 0);
        for style in [PlacementStyle::Levelized, PlacementStyle::Random(seed)] {
            let p = Placement::generate(&c, style);
            prop_assert_eq!(p.len(), c.gate_count());
            for g in c.gate_ids() {
                let (nx, ny) = p.normalized(g);
                prop_assert!((0.0..1.0).contains(&nx));
                prop_assert!((0.0..1.0).contains(&ny));
            }
        }
    }

    #[test]
    fn depth_bounds(c in arb_circuit()) {
        let d = c.depth();
        prop_assert!(d <= c.gate_count());
        prop_assert!(c.gate_count() == 0 || d >= 1);
        // Levels are within [1, depth].
        for l in c.levels() {
            prop_assert!(l >= 1 && l <= d);
        }
    }

    #[test]
    fn path_count_at_least_output_reachable(c in arb_circuit()) {
        // Each gate-driven output contributes at least one path.
        let gate_pos = c
            .outputs()
            .iter()
            .filter(|(_, s)| matches!(s, Signal::Gate(_)))
            .count();
        prop_assert!(c.path_count() >= gate_pos as u128);
    }

    #[test]
    fn max_depth_paths_do_not_exceed_total(c in arb_circuit()) {
        prop_assert!(stats::max_depth_path_count(&c) <= c.path_count());
    }

    #[test]
    fn verilog_round_trip_preserves_structure_and_function(c in arb_circuit()) {
        use statim_netlist::{simulate, verilog};
        let text = verilog::write(&c);
        let r = verilog::parse(&text).unwrap();
        prop_assert_eq!(r.gate_count(), c.gate_count());
        prop_assert_eq!(r.input_count(), c.input_count());
        prop_assert_eq!(r.depth(), c.depth());
        // Function identical on packed random-ish stimulus.
        let ins: Vec<u64> = (0..c.input_count())
            .map(|i| 0x9E37_79B9_7F4A_7C15u64.rotate_left(i as u32 * 7))
            .collect();
        let a = simulate::simulate_outputs(&c, &ins).unwrap();
        let b = simulate::simulate_outputs(&r, &ins).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn simulation_packed_matches_scalar(c in arb_circuit(), seed in 0u64..1000) {
        use statim_netlist::simulate::{simulate_once, simulate_outputs};
        // One packed run vs 8 scalar runs of its low bits.
        let ins: Vec<u64> = (0..c.input_count())
            .map(|i| seed.wrapping_mul(i as u64 * 2 + 3))
            .collect();
        let packed = simulate_outputs(&c, &ins).unwrap();
        for bit in 0..8 {
            let scalar_ins: Vec<bool> =
                ins.iter().map(|w| (w >> bit) & 1 == 1).collect();
            let scalar = simulate_once(&c, &scalar_ins).unwrap();
            for (o, &w) in packed.iter().enumerate() {
                prop_assert_eq!((w >> bit) & 1 == 1, scalar[o], "output {} bit {}", o, bit);
            }
        }
    }

    #[test]
    fn double_inversion_is_identity(c in arb_circuit(), seed in 0u64..100) {
        // Metamorphic property: appending two inverters to any output net
        // leaves its logic function unchanged.
        use statim_netlist::simulate::simulate_outputs;
        prop_assume!(c.gate_count() > 0);
        let ins: Vec<u64> = (0..c.input_count())
            .map(|i| seed.wrapping_mul(0x2545_F491_4F6C_DD1D).rotate_left(i as u32))
            .collect();
        let base = simulate_outputs(&c, &ins).unwrap();
        // Rebuild with the double-inverter tail on the first output.
        let mut b2 = statim_netlist::generators::blocks::Builder::new("ext");
        let mut sigs: Vec<Signal> = (0..c.input_count())
            .map(|i| b2.input(format!("i{i}")))
            .collect();
        for g in c.gates() {
            let ins_mapped: Vec<Signal> = g
                .inputs
                .iter()
                .map(|s| match s {
                    Signal::Input(k) => sigs[*k as usize],
                    Signal::Gate(gid) => sigs[c.input_count() + gid.index()],
                })
                .collect();
            let s = b2.gate(g.kind, &ins_mapped);
            sigs.push(s);
        }
        let (_, first_sig) = c.outputs()[0].clone();
        let mapped = match first_sig {
            Signal::Input(k) => sigs[k as usize],
            Signal::Gate(gid) => sigs[c.input_count() + gid.index()],
        };
        let inv1 = b2.not(mapped);
        let inv2 = b2.not(inv1);
        b2.output("o", inv2);
        let c2 = b2.finish();
        let doubled = simulate_outputs(&c2, &ins).unwrap();
        prop_assert_eq!(doubled[0], base[0]);
    }

    #[test]
    fn fanout_pins_sum_equals_gate_driven_pins(c in arb_circuit()) {
        let pins: usize = c.fanout_pins().iter().sum();
        let expected: usize = c
            .gates()
            .iter()
            .flat_map(|g| g.inputs.iter())
            .filter(|s| matches!(s, Signal::Gate(_)))
            .count();
        prop_assert_eq!(pins, expected);
    }
}
