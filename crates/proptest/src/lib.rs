//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this workspace
//! vendors the slice of the proptest API its property tests use:
//! the [`proptest!`] macro (`arg in strategy` syntax, optional
//! `#![proptest_config(...)]` header), range/tuple/`select`/`vec`
//! strategies, the `prop_map` / `prop_filter_map` combinators, and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Differences from the real crate, by design:
//!
//! * no shrinking — a failing case reports its case index and seed so it
//!   can be replayed, but is not minimized;
//! * case generation is fully deterministic (a fixed base seed mixed
//!   with the case index), so CI and local runs see identical inputs.

use rand::rngs::StdRng;
use rand::{Rng as _, SampleRange, SeedableRng};

/// The RNG driving case generation.
pub type TestRng = StdRng;

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; 64 keeps the heavier circuit
        // properties fast while still exercising a broad input space.
        ProptestConfig { cases: 64 }
    }
}

/// Marker returned by `prop_assume!` when a case does not satisfy its
/// precondition.
#[derive(Debug, Clone, Copy)]
pub struct Discard;

/// Outcome of one generated case.
pub type TestCaseResult = Result<(), Discard>;

/// Fixed base seed for case generation; mixed with the case index so
/// every case is independent but reproducible.
const BASE_SEED: u64 = 0x5EED_CAFE_F00D_0001;

/// Drives one property: runs `cfg.cases` successful cases, skipping
/// discarded ones (up to a cap), and annotates any panic with the case
/// index and seed so it can be replayed.
pub fn run_cases<F>(cfg: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    let mut successes = 0u32;
    let mut discards = 0u64;
    let max_discards = (cfg.cases as u64).max(1) * 100;
    let mut index = 0u64;
    while successes < cfg.cases {
        let seed = BASE_SEED ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = TestRng::seed_from_u64(seed);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| case(&mut rng)));
        match outcome {
            Ok(Ok(())) => successes += 1,
            Ok(Err(Discard)) => {
                discards += 1;
                assert!(
                    discards <= max_discards,
                    "property `{name}`: too many discards ({discards}) — \
                     prop_assume/filter rejects nearly every input"
                );
            }
            Err(payload) => {
                eprintln!("property `{name}` failed at case {index} (seed {seed:#x})");
                std::panic::resume_unwind(payload);
            }
        }
        index += 1;
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keeps only values for which `f` returns `Some`, retrying otherwise.
    fn prop_filter_map<T, F: Fn(Self::Value) -> Option<T>>(
        self,
        whence: &'static str,
        f: F,
    ) -> FilterMap<Self, F>
    where
        Self: Sized,
    {
        FilterMap {
            inner: self,
            f,
            whence,
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, T, F: Fn(S::Value) -> Option<T>> Strategy for FilterMap<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        for _ in 0..10_000 {
            if let Some(v) = (self.f)(self.inner.generate(rng)) {
                return v;
            }
        }
        panic!("prop_filter_map exhausted retries: {}", self.whence);
    }
}

impl<T> Strategy for std::ops::Range<T>
where
    std::ops::Range<T>: SampleRange + Clone,
{
    type Value = <std::ops::Range<T> as SampleRange>::Output;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        rng.gen_range(self.clone())
    }
}

/// A strategy that always yields clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, G);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng as _;

    /// Lengths accepted by [`vec`]: a fixed `usize` or a `Range<usize>`.
    pub trait IntoLenRange {
        /// Draws a concrete length.
        fn draw_len(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoLenRange for usize {
        fn draw_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoLenRange for std::ops::Range<usize> {
        fn draw_len(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy producing `Vec`s of `element` values with lengths drawn
    /// from `len`.
    pub fn vec<S: Strategy, L: IntoLenRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    /// See [`vec`].
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: IntoLenRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.draw_len(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies.
pub mod sample {
    use super::{Strategy, TestRng};
    use rand::Rng as _;

    /// Strategy choosing uniformly among `options`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select { options }
    }

    /// See [`select`].
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.gen_range(0..self.options.len())].clone()
        }
    }
}

/// `prop::` paths as the prelude exposes them.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assume, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Declares property tests. Each `#[test] fn name(arg in strategy, ...)`
/// becomes a standard test that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(#[test] fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let __cfg = $cfg;
                $crate::run_cases(&__cfg, stringify!($name), |__rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                    $body
                    Ok(())
                });
            }
        )*
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "prop_assert failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Discards the current case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::Discard);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn runner_is_deterministic() {
        let mut first: Vec<f64> = Vec::new();
        crate::run_cases(&ProptestConfig::with_cases(10), "collect", |rng| {
            first.push(crate::Strategy::generate(&(0.0..1.0f64), rng));
            Ok(())
        });
        let mut second: Vec<f64> = Vec::new();
        crate::run_cases(&ProptestConfig::with_cases(10), "collect", |rng| {
            second.push(crate::Strategy::generate(&(0.0..1.0f64), rng));
            Ok(())
        });
        assert_eq!(first, second);
        assert_eq!(first.len(), 10);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 1usize..10, y in -3.0..5.0f64, k in 0u8..4) {
            prop_assert!((1..10).contains(&x));
            prop_assert!((-3.0..5.0).contains(&y));
            prop_assert!(k < 4);
        }

        #[test]
        fn tuples_and_vecs_compose(v in prop::collection::vec((0u8..3, 0usize..100), 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
            for (a, b) in v {
                prop_assert!(a < 3 && b < 100);
            }
        }

        #[test]
        fn select_picks_from_options(x in prop::sample::select(vec![2, 4, 8])) {
            prop_assert!(x == 2 || x == 4 || x == 8);
        }

        #[test]
        fn map_and_assume_work(n in (1usize..50).prop_map(|n| n * 2)) {
            prop_assume!(n != 4);
            prop_assert_eq!(n % 2, 0);
            prop_assert!(n != 4, "assumed away");
        }
    }

    #[test]
    fn filter_map_retries() {
        let strat = (0usize..100).prop_filter_map("needs even", |n| (n % 2 == 0).then_some(n));
        crate::run_cases(&ProptestConfig::with_cases(20), "evens", |rng| {
            let n = crate::Strategy::generate(&strat, rng);
            assert_eq!(n % 2, 0);
            Ok(())
        });
    }
}
