//! Analytic delay derivatives.
//!
//! The linearization step of the methodology (the paper's §2.4) expands
//! each gate delay to first order around the inter-die operating point and
//! freezes the partial derivatives at the *nominal* point (eq. (11)),
//! making them the constant Taylor coefficients `aᵢ…eᵢ` of eq. (12). The
//! convexity analysis (§2.5) bounds the error of that freeze through the
//! second derivatives. Both are evaluated analytically here, with
//! finite-difference cross-checks in the tests.
//!
//! Writing `tp = K·tox·Leff·H` with `H = α·f(Vdd,VTn) + β·f(Vdd,|VTp|)`
//! and `f(V,T) = V(V−T)^{−1.3} + (1.5V−2T)^{−1}`:
//!
//! ```text
//! ∂f/∂V  = (V−T)^{−1.3} − 1.3·V·(V−T)^{−2.3} − 1.5·(1.5V−2T)^{−2}
//! ∂f/∂T  = 1.3·V·(V−T)^{−2.3} + 2·(1.5V−2T)^{−2}
//! ∂²f/∂V² = −2.6·(V−T)^{−2.3} + 2.99·V·(V−T)^{−3.3} + 4.5·(1.5V−2T)^{−3}
//! ∂²f/∂T² =  2.99·V·(V−T)^{−3.3} + 8·(1.5V−2T)^{−3}
//! ```

use crate::delay::voltage_kernel;
use crate::param::{Param, PerParam};
use crate::tech::{AlphaBeta, OperatingPoint, Technology, ELMORE_K};

/// ∂f/∂V of the voltage kernel.
pub fn kernel_dv(v: f64, t: f64) -> f64 {
    let h = v - t;
    let q = 1.5 * v - 2.0 * t;
    h.powf(-1.3) - 1.3 * v * h.powf(-2.3) - 1.5 * q.powi(-2)
}

/// ∂f/∂T of the voltage kernel.
pub fn kernel_dt(v: f64, t: f64) -> f64 {
    let h = v - t;
    let q = 1.5 * v - 2.0 * t;
    1.3 * v * h.powf(-2.3) + 2.0 * q.powi(-2)
}

/// ∂²f/∂V².
pub fn kernel_dvv(v: f64, t: f64) -> f64 {
    let h = v - t;
    let q = 1.5 * v - 2.0 * t;
    -2.6 * h.powf(-2.3) + 2.99 * v * h.powf(-3.3) + 4.5 * q.powi(-3)
}

/// ∂²f/∂T².
pub fn kernel_dtt(v: f64, t: f64) -> f64 {
    let h = v - t;
    let q = 1.5 * v - 2.0 * t;
    2.99 * v * h.powf(-3.3) + 8.0 * q.powi(-3)
}

/// The gradient `∇tp` at `pt`: the five Taylor coefficients
/// `(a, b, c, d, e)` of the paper's eq. (12), in [`Param::ALL`] order,
/// with units of seconds per SI unit of each parameter.
pub fn delay_gradient(tech: &Technology, ab: &AlphaBeta, pt: &OperatingPoint) -> PerParam {
    let k = ELMORE_K / tech.eps_ox;
    let geom = pt.tox() * pt.leff();
    let fn_ = voltage_kernel(pt.vdd(), pt.vtn());
    let fp = voltage_kernel(pt.vdd(), pt.vtp());
    let h = ab.alpha * fn_ + ab.beta * fp;
    PerParam::from_fn(|p| match p {
        Param::Tox => k * pt.leff() * h,
        Param::Leff => k * pt.tox() * h,
        Param::Vdd => {
            k * geom
                * (ab.alpha * kernel_dv(pt.vdd(), pt.vtn())
                    + ab.beta * kernel_dv(pt.vdd(), pt.vtp()))
        }
        Param::Vtn => k * geom * ab.alpha * kernel_dt(pt.vdd(), pt.vtn()),
        Param::Vtp => k * geom * ab.beta * kernel_dt(pt.vdd(), pt.vtp()),
    })
}

/// The diagonal of the Hessian `∂²tp/∂χ²` at `pt`, used by the §2.5
/// convexity analysis. The geometry parameters enter linearly, so their
/// second derivatives vanish.
pub fn delay_hessian_diag(tech: &Technology, ab: &AlphaBeta, pt: &OperatingPoint) -> PerParam {
    let k = ELMORE_K / tech.eps_ox;
    let geom = pt.tox() * pt.leff();
    PerParam::from_fn(|p| match p {
        Param::Tox | Param::Leff => 0.0,
        Param::Vdd => {
            k * geom
                * (ab.alpha * kernel_dvv(pt.vdd(), pt.vtn())
                    + ab.beta * kernel_dvv(pt.vdd(), pt.vtp()))
        }
        Param::Vtn => k * geom * ab.alpha * kernel_dtt(pt.vdd(), pt.vtn()),
        Param::Vtp => k * geom * ab.beta * kernel_dtt(pt.vdd(), pt.vtp()),
    })
}

/// One row of the §2.5 convexity report: for each parameter, the ratio
/// `|∂²tp/∂χ²·σχ| / |∂tp/∂χ|` — the relative change of the derivative
/// over a one-σ move. The paper argues this is ≲ 0.1 for every parameter,
/// validating the frozen-derivative approximation.
pub fn convexity_ratios(
    tech: &Technology,
    ab: &AlphaBeta,
    pt: &OperatingPoint,
    sigma: &PerParam,
) -> PerParam {
    let g = delay_gradient(tech, ab, pt);
    let h = delay_hessian_diag(tech, ab, pt);
    PerParam::from_fn(|p| {
        let first = g.get(p).abs();
        if first == 0.0 {
            0.0
        } else {
            (h.get(p) * sigma.get(p)).abs() / first
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::gate_delay;
    use crate::gate::{GateKind, Load};
    use crate::param::Variations;

    fn setup() -> (Technology, AlphaBeta, OperatingPoint) {
        let tech = Technology::cmos130();
        let ab = tech.alpha_beta(GateKind::Nand(2), &Load::fanout(2));
        let pt = tech.nominal_point();
        (tech, ab, pt)
    }

    /// Central finite difference of the delay along parameter `p`.
    fn fd_gradient(tech: &Technology, ab: &AlphaBeta, pt: &OperatingPoint, p: Param) -> f64 {
        let h = pt.get(p) * 1e-6;
        let up = gate_delay(tech, ab, &pt.with(p, pt.get(p) + h));
        let dn = gate_delay(tech, ab, &pt.with(p, pt.get(p) - h));
        (up - dn) / (2.0 * h)
    }

    fn fd_hessian(tech: &Technology, ab: &AlphaBeta, pt: &OperatingPoint, p: Param) -> f64 {
        let h = pt.get(p) * 1e-4;
        let up = gate_delay(tech, ab, &pt.with(p, pt.get(p) + h));
        let mid = gate_delay(tech, ab, pt);
        let dn = gate_delay(tech, ab, &pt.with(p, pt.get(p) - h));
        (up - 2.0 * mid + dn) / (h * h)
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let (tech, ab, pt) = setup();
        let g = delay_gradient(&tech, &ab, &pt);
        for p in Param::ALL {
            let fd = fd_gradient(&tech, &ab, &pt, p);
            let an = g.get(p);
            assert!(
                (an - fd).abs() <= 1e-5 * fd.abs().max(1e-30),
                "{p}: analytic {an:e} vs fd {fd:e}"
            );
        }
    }

    #[test]
    fn hessian_matches_finite_difference() {
        let (tech, ab, pt) = setup();
        let h = delay_hessian_diag(&tech, &ab, &pt);
        for p in [Param::Vdd, Param::Vtn, Param::Vtp] {
            let fd = fd_hessian(&tech, &ab, &pt, p);
            let an = h.get(p);
            assert!(
                (an - fd).abs() <= 1e-3 * fd.abs().max(1e-30),
                "{p}: analytic {an:e} vs fd {fd:e}"
            );
        }
        assert_eq!(h.get(Param::Tox), 0.0);
        assert_eq!(h.get(Param::Leff), 0.0);
    }

    #[test]
    fn gradient_signs() {
        let (tech, ab, pt) = setup();
        let g = delay_gradient(&tech, &ab, &pt);
        assert!(g.get(Param::Tox) > 0.0);
        assert!(g.get(Param::Leff) > 0.0);
        assert!(g.get(Param::Vdd) < 0.0, "higher supply must speed the gate");
        assert!(g.get(Param::Vtn) > 0.0);
        assert!(g.get(Param::Vtp) > 0.0);
    }

    #[test]
    fn convexity_small_as_paper_argues() {
        // §2.5: the derivative changes by well under its own magnitude
        // over a one-sigma move, for every parameter.
        let (tech, ab, pt) = setup();
        let vars = Variations::date05();
        let r = convexity_ratios(&tech, &ab, &pt, &vars.sigma);
        for p in Param::ALL {
            assert!(r.get(p) < 0.15, "{p}: convexity ratio {}", r.get(p));
        }
    }

    #[test]
    fn taylor_first_order_accuracy_one_sigma() {
        // The linearization the whole intra-die analysis rests on: a 1σ
        // simultaneous move predicted by the gradient stays within ~2% of
        // the exact delay change.
        let (tech, ab, pt) = setup();
        let vars = Variations::date05();
        let g = delay_gradient(&tech, &ab, &pt);
        let delta = PerParam::from_fn(|p| p.worst_direction() * vars.sigma.get(p));
        let exact = gate_delay(&tech, &ab, &pt.shifted(&delta));
        let lin = gate_delay(&tech, &ab, &pt)
            + Param::ALL
                .iter()
                .map(|&p| g.get(p) * delta.get(p))
                .sum::<f64>();
        assert!(
            (exact - lin).abs() / exact < 0.02,
            "exact {exact:e} lin {lin:e}"
        );
    }
}
