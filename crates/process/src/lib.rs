//! Device models, process variations and delay sensitivities for the
//! DATE'05 statistical timing methodology.
//!
//! The paper models gate delay with an Elmore-based short-channel
//! expression (its eq. (2)):
//!
//! ```text
//! tp = 0.345 · (tox·Leff / εox) · [ α·f(Vdd, VTn) + β·f(Vdd, |VTp|) ]
//! f(V, T) = V/(V − T)^1.3 + 1/(1.5·V − 2·T)
//! ```
//!
//! where α and β lump fan-in, capacitances, carrier mobilities and channel
//! widths (eqs. (3), (4)). Five parameters are treated as Gaussian random
//! variables truncated at ±6σ: `tox`, `Leff`, `Vdd`, `VTn`, `|VTp|`, with
//! standard deviations from Nassif (ISSCC 2000) as quoted in the paper's
//! Table 1: σ = {0.15 nm, 15 nm, 40 mV, 13 mV, 14 mV}.
//!
//! Modules:
//!
//! * [`param`] — the five random parameters and their variation spec;
//! * [`tech`] — 130 nm technology constants and the operating point;
//! * [`gate`] — gate kinds and their α/β coefficients;
//! * [`delay`] — eq. (2) evaluation and corner analysis;
//! * [`deriv`] — analytic first and second delay derivatives (the Taylor
//!   coefficients of the paper's eq. (12) and the §2.5 convexity check);
//! * [`sensitivity`] — Table 1 (per-gate one-sigma delay sensitivities).
//!
//! # Example
//!
//! ```
//! use statim_process::{tech::Technology, gate::{GateKind, Load}, delay::gate_delay};
//!
//! let tech = Technology::cmos130();
//! let ab = tech.alpha_beta(GateKind::Nand(2), &Load::fanout(2));
//! let tp = gate_delay(&tech, &ab, &tech.nominal_point());
//! assert!(tp > 5e-12 && tp < 30e-12); // ~12 ps for a FO2 2-NAND
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod delay;
pub mod deriv;
pub mod gate;
pub mod param;
pub mod sensitivity;
pub mod tech;

pub use delay::gate_delay;
pub use gate::{GateKind, Load};
pub use param::{Param, Variations};
pub use tech::{OperatingPoint, Technology};

/// Seconds per picosecond; delay values in this workspace are SI seconds
/// internally and reported in ps.
pub const PS: f64 = 1e-12;

/// Converts seconds to picoseconds for reporting.
pub fn to_ps(seconds: f64) -> f64 {
    seconds / PS
}
