//! Gate-delay evaluation (the paper's eq. (2)) and corner analysis.

use crate::param::{PerParam, Variations};
use crate::tech::{AlphaBeta, OperatingPoint, Technology, ELMORE_K};

/// The voltage kernel `f(V, T) = V/(V − T)^1.3 + 1/(1.5·V − 2·T)` shared by
/// the NMOS and PMOS terms of eq. (2).
///
/// Returns `f64::INFINITY` when `V ≤ T` or `1.5·V ≤ 2·T` (transistor out
/// of its operating region) so that callers can detect invalid corners
/// instead of silently producing garbage.
pub fn voltage_kernel(v: f64, t: f64) -> f64 {
    let head = v - t;
    let tail = 1.5 * v - 2.0 * t;
    if head <= 0.0 || tail <= 0.0 {
        return f64::INFINITY;
    }
    v / head.powf(1.3) + 1.0 / tail
}

/// Propagation delay of a gate with coefficients `ab` at operating point
/// `pt` (seconds) — the paper's eq. (2):
///
/// `tp = 0.345·(tox·Leff/εox)·[α·f(Vdd, VTn) + β·f(Vdd, |VTp|)]`.
///
/// # Examples
///
/// ```
/// use statim_process::{Technology, GateKind, Load, gate_delay};
/// let tech = Technology::cmos130();
/// let ab = tech.alpha_beta(GateKind::Inv, &Load::fanout(2));
/// let tp = gate_delay(&tech, &ab, &tech.nominal_point());
/// assert!(tp > 0.0);
/// ```
pub fn gate_delay(tech: &Technology, ab: &AlphaBeta, pt: &OperatingPoint) -> f64 {
    let geom = pt.tox() * pt.leff() / tech.eps_ox;
    let h = ab.alpha * voltage_kernel(pt.vdd(), pt.vtn())
        + ab.beta * voltage_kernel(pt.vdd(), pt.vtp());
    ELMORE_K * geom * h
}

/// The voltage-dependent factor `α·f(Vdd,VTn) + β·f(Vdd,|VTp|)` alone.
/// The inter-die path delay factorizes as
/// `0.345/εox · tox·Leff · Σᵢ[αᵢ·f + βᵢ·f]`, and the separable inter-PDF
/// computation needs this factor independently of the geometry product.
pub fn voltage_factor(ab: &AlphaBeta, vdd: f64, vtn: f64, vtp: f64) -> f64 {
    ab.alpha * voltage_kernel(vdd, vtn) + ab.beta * voltage_kernel(vdd, vtp)
}

/// A deterministic analysis corner: each parameter offset from nominal by
/// `k` standard deviations in a chosen direction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CornerSpec {
    /// Number of standard deviations.
    pub k: f64,
}

impl CornerSpec {
    /// The classical ±3σ corner used by the paper's "worst-case analysis".
    pub fn three_sigma() -> Self {
        CornerSpec { k: 3.0 }
    }

    /// A corner at `k` standard deviations.
    pub fn sigma(k: f64) -> Self {
        CornerSpec { k }
    }

    /// The slowest ("worst-case") operating point: every parameter moved
    /// `k·σ` in its delay-increasing direction.
    pub fn worst_point(&self, tech: &Technology, vars: &Variations) -> OperatingPoint {
        let delta = PerParam::from_fn(|p| p.worst_direction() * self.k * vars.sigma.get(p));
        tech.nominal_point().shifted(&delta)
    }

    /// The fastest ("best-case") operating point.
    pub fn best_point(&self, tech: &Technology, vars: &Variations) -> OperatingPoint {
        let delta = PerParam::from_fn(|p| -p.worst_direction() * self.k * vars.sigma.get(p));
        tech.nominal_point().shifted(&delta)
    }
}

/// Delay of the gate at the worst-case corner.
pub fn worst_case_delay(
    tech: &Technology,
    ab: &AlphaBeta,
    vars: &Variations,
    corner: CornerSpec,
) -> f64 {
    gate_delay(tech, ab, &corner.worst_point(tech, vars))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::{GateKind, Load};
    use crate::param::Param;
    use crate::to_ps;

    #[test]
    fn kernel_positive_in_region() {
        let f = voltage_kernel(1.5, 0.4);
        assert!(f > 0.0 && f.is_finite());
        // Reference value computed by hand: 1.5/1.1^1.3 + 1/1.45.
        assert!((f - (1.5 / 1.1f64.powf(1.3) + 1.0 / 1.45)).abs() < 1e-12);
    }

    #[test]
    fn kernel_detects_cutoff() {
        assert!(voltage_kernel(0.4, 0.4).is_infinite());
        assert!(voltage_kernel(0.5, 0.4).is_infinite()); // 1.5·0.5 < 2·0.4
    }

    #[test]
    fn calibration_fo2_nand2_near_paper() {
        // Table 1 of the paper implies tp(2-NAND, FO2) ≈ 12.4 ps (see
        // tech.rs module docs). Allow ±15%.
        let tech = Technology::cmos130();
        let ab = tech.alpha_beta(GateKind::Nand(2), &Load::fanout(2));
        let tp = to_ps(gate_delay(&tech, &ab, &tech.nominal_point()));
        assert!(tp > 10.5 && tp < 14.3, "tp = {tp} ps");
    }

    #[test]
    fn gate_delay_ordering_matches_table1() {
        // Table 1's sensitivities scale with the delays themselves:
        // 2-NAND > 2-XNOR > 2-NOR > INV.
        let tech = Technology::cmos130();
        let load = Load::fanout(2);
        let tp = |k| {
            to_ps(gate_delay(
                &tech,
                &tech.alpha_beta(k, &load),
                &tech.nominal_point(),
            ))
        };
        let (nand, nor, inv, xnor) = (
            tp(GateKind::Nand(2)),
            tp(GateKind::Nor(2)),
            tp(GateKind::Inv),
            tp(GateKind::Xnor2),
        );
        assert!(nand > xnor * 0.8, "nand={nand} xnor={xnor}");
        assert!(xnor > nor, "xnor={xnor} nor={nor}");
        assert!(nor > inv, "nor={nor} inv={inv}");
    }

    #[test]
    fn worst_corner_slows_best_corner_speeds() {
        let tech = Technology::cmos130();
        let vars = Variations::date05();
        let ab = tech.alpha_beta(GateKind::Nand(2), &Load::fanout(2));
        let nom = gate_delay(&tech, &ab, &tech.nominal_point());
        let worst = worst_case_delay(&tech, &ab, &vars, CornerSpec::three_sigma());
        let best = gate_delay(
            &tech,
            &ab,
            &CornerSpec::three_sigma().best_point(&tech, &vars),
        );
        assert!(worst > nom);
        assert!(best < nom);
        // The paper's Table 2 shows worst-case ≈ 2× nominal at this corner.
        let ratio = worst / nom;
        assert!(ratio > 1.6 && ratio < 2.5, "ratio = {ratio}");
    }

    #[test]
    fn delay_monotone_in_each_worst_direction() {
        let tech = Technology::cmos130();
        let vars = Variations::date05();
        let ab = tech.alpha_beta(GateKind::Nor(3), &Load::fanout(1));
        let nom_pt = tech.nominal_point();
        let nom = gate_delay(&tech, &ab, &nom_pt);
        for p in Param::ALL {
            let shift = p.worst_direction() * vars.sigma.get(p);
            let pt = nom_pt.with(p, nom_pt.get(p) + shift);
            assert!(
                gate_delay(&tech, &ab, &pt) > nom,
                "moving {p} in worst direction must slow the gate"
            );
        }
    }
}
