//! The five random parameters of the methodology and their variation
//! specification.

use std::fmt;

/// A varying process or environment parameter.
///
/// The paper's sensitivity analysis (§2.2) selects these five as the
/// dominant contributors to gate-delay variation; all are modeled as
/// Gaussian random variables truncated at ±6σ.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Param {
    /// Gate-oxide thickness `tox` (meters).
    Tox,
    /// Effective channel length `Leff` (meters).
    Leff,
    /// Supply voltage `Vdd` (volts).
    Vdd,
    /// NMOS threshold voltage `VTn` (volts).
    Vtn,
    /// PMOS threshold-voltage magnitude `|VTp|` (volts).
    Vtp,
}

impl Param {
    /// All five parameters, in the canonical order used throughout the
    /// workspace (and by coefficient arrays such as the paper's
    /// `a..e` of eq. (12)).
    pub const ALL: [Param; 5] = [Param::Tox, Param::Leff, Param::Vdd, Param::Vtn, Param::Vtp];

    /// Number of parameters (the paper's `R`).
    pub const COUNT: usize = 5;

    /// Canonical index of this parameter in [`Param::ALL`].
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Param::Tox => 0,
            Param::Leff => 1,
            Param::Vdd => 2,
            Param::Vtn => 3,
            Param::Vtp => 4,
        }
    }

    /// Parameter at canonical index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 5`.
    #[inline]
    pub fn from_index(i: usize) -> Param {
        Param::ALL[i]
    }

    /// Direction (+1 or −1) in which *increasing* the parameter increases
    /// gate delay, used to build the deterministic worst-case corner:
    /// thicker oxide, longer channel, higher thresholds and *lower* supply
    /// all slow the gate.
    #[inline]
    pub fn worst_direction(self) -> f64 {
        match self {
            Param::Tox | Param::Leff | Param::Vtn | Param::Vtp => 1.0,
            Param::Vdd => -1.0,
        }
    }

    /// Human-readable symbol.
    pub fn symbol(self) -> &'static str {
        match self {
            Param::Tox => "tox",
            Param::Leff => "Leff",
            Param::Vdd => "Vdd",
            Param::Vtn => "VTn",
            Param::Vtp => "|VTp|",
        }
    }

    /// SI unit of the parameter.
    pub fn unit(self) -> &'static str {
        match self {
            Param::Tox | Param::Leff => "m",
            Param::Vdd | Param::Vtn | Param::Vtp => "V",
        }
    }
}

impl fmt::Display for Param {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// A quintuple of per-parameter values, indexed by [`Param`].
///
/// Used for standard deviations, Taylor coefficients and operating-point
/// deltas alike.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PerParam(pub [f64; Param::COUNT]);

impl PerParam {
    /// Value for `p`.
    #[inline]
    pub fn get(&self, p: Param) -> f64 {
        self.0[p.index()]
    }

    /// Sets the value for `p`.
    #[inline]
    pub fn set(&mut self, p: Param, v: f64) {
        self.0[p.index()] = v;
    }

    /// Builds from a function of the parameter.
    pub fn from_fn(mut f: impl FnMut(Param) -> f64) -> Self {
        let mut v = [0.0; Param::COUNT];
        for p in Param::ALL {
            v[p.index()] = f(p);
        }
        PerParam(v)
    }

    /// Elementwise map.
    pub fn map(&self, mut f: impl FnMut(Param, f64) -> f64) -> Self {
        PerParam::from_fn(|p| f(p, self.get(p)))
    }

    /// Iterates `(Param, value)` pairs in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (Param, f64)> + '_ {
        Param::ALL.iter().map(move |&p| (p, self.get(p)))
    }
}

impl std::ops::Index<Param> for PerParam {
    type Output = f64;
    fn index(&self, p: Param) -> &f64 {
        &self.0[p.index()]
    }
}

impl std::ops::IndexMut<Param> for PerParam {
    fn index_mut(&mut self, p: Param) -> &mut f64 {
        &mut self.0[p.index()]
    }
}

/// Variation specification: per-parameter standard deviation and the
/// truncation multiple of the input Gaussians.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Variations {
    /// Standard deviation of each parameter (total, before any layer
    /// split), in SI units.
    pub sigma: PerParam,
    /// Input PDFs are truncated at ±`trunc_k`·σ (the paper uses 6).
    pub trunc_k: f64,
}

impl Variations {
    /// The paper's variation set (Table 1 caption, after Nassif ISSCC'00):
    /// σ_tox = 0.15 nm, σ_Leff = 15 nm, σ_Vdd = 40 mV, σ_VTn = 13 mV,
    /// σ_VTp = 14 mV, truncated at ±6σ.
    pub fn date05() -> Self {
        let mut sigma = PerParam::default();
        sigma.set(Param::Tox, 0.15e-9);
        sigma.set(Param::Leff, 15e-9);
        sigma.set(Param::Vdd, 40e-3);
        sigma.set(Param::Vtn, 13e-3);
        sigma.set(Param::Vtp, 14e-3);
        Variations {
            sigma,
            trunc_k: 6.0,
        }
    }

    /// Returns a copy with every σ scaled by `factor` (used by variability
    /// sweeps and ablations).
    pub fn scaled(&self, factor: f64) -> Self {
        Variations {
            sigma: self.sigma.map(|_, s| s * factor),
            trunc_k: self.trunc_k,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trips() {
        for p in Param::ALL {
            assert_eq!(Param::from_index(p.index()), p);
        }
    }

    #[test]
    fn worst_directions() {
        assert_eq!(Param::Vdd.worst_direction(), -1.0);
        assert_eq!(Param::Leff.worst_direction(), 1.0);
        assert_eq!(Param::Tox.worst_direction(), 1.0);
        assert_eq!(Param::Vtn.worst_direction(), 1.0);
        assert_eq!(Param::Vtp.worst_direction(), 1.0);
    }

    #[test]
    fn per_param_get_set() {
        let mut v = PerParam::default();
        v.set(Param::Vdd, 1.5);
        assert_eq!(v.get(Param::Vdd), 1.5);
        assert_eq!(v[Param::Vdd], 1.5);
        v[Param::Tox] = 2.0;
        assert_eq!(v.get(Param::Tox), 2.0);
        let doubled = v.map(|_, x| 2.0 * x);
        assert_eq!(doubled.get(Param::Vdd), 3.0);
    }

    #[test]
    fn per_param_iter_order() {
        let v = PerParam([1.0, 2.0, 3.0, 4.0, 5.0]);
        let syms: Vec<&str> = v.iter().map(|(p, _)| p.symbol()).collect();
        assert_eq!(syms, vec!["tox", "Leff", "Vdd", "VTn", "|VTp|"]);
    }

    #[test]
    fn date05_sigmas_match_paper() {
        let v = Variations::date05();
        assert_eq!(v.sigma.get(Param::Tox), 0.15e-9);
        assert_eq!(v.sigma.get(Param::Leff), 15e-9);
        assert_eq!(v.sigma.get(Param::Vdd), 0.040);
        assert_eq!(v.sigma.get(Param::Vtn), 0.013);
        assert_eq!(v.sigma.get(Param::Vtp), 0.014);
        assert_eq!(v.trunc_k, 6.0);
    }

    #[test]
    fn scaled_multiplies_sigma() {
        let v = Variations::date05().scaled(2.0);
        assert_eq!(v.sigma.get(Param::Leff), 30e-9);
        assert_eq!(v.trunc_k, 6.0);
    }

    #[test]
    fn display_symbols() {
        assert_eq!(Param::Tox.to_string(), "tox");
        assert_eq!(Param::Vtp.to_string(), "|VTp|");
        assert_eq!(Param::Vdd.unit(), "V");
        assert_eq!(Param::Leff.unit(), "m");
    }
}
