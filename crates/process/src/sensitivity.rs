//! First-order sensitivity analysis — the paper's §2.2 and Table 1.
//!
//! For each gate type (with a fan-out of 2) and each parameter χ, Table 1
//! reports the linear delay swing for a one-sigma move,
//! `|∂tp/∂χ|ₓ_nom · σχ|`. The analysis identifies `Leff` as dominant,
//! `tox` and `Vdd` as significant, and the thresholds as minor — the
//! justification for keeping all five RVs but treating the problem to
//! first order.

use crate::deriv::delay_gradient;
use crate::gate::{GateKind, Load};
use crate::param::{Param, PerParam, Variations};
use crate::tech::Technology;
use crate::to_ps;

/// One row of the sensitivity table: a gate type and its per-parameter
/// one-sigma delay swings in picoseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct SensitivityRow {
    /// Gate type.
    pub kind: GateKind,
    /// Nominal delay, ps.
    pub nominal_ps: f64,
    /// `|∂tp/∂χ|·σχ` per parameter, ps.
    pub swing_ps: PerParam,
}

/// The full sensitivity table for a list of gate kinds.
#[derive(Debug, Clone, PartialEq)]
pub struct SensitivityTable {
    /// Rows in the order requested.
    pub rows: Vec<SensitivityRow>,
}

/// The gate set of the paper's Table 1, in its column order.
pub const TABLE1_GATES: [GateKind; 4] = [
    GateKind::Nand(2),
    GateKind::Nor(2),
    GateKind::Inv,
    GateKind::Xnor2,
];

/// Computes the sensitivity table for `kinds`, each driving `load`.
pub fn sensitivity_table(
    tech: &Technology,
    vars: &Variations,
    kinds: &[GateKind],
    load: &Load,
) -> SensitivityTable {
    let pt = tech.nominal_point();
    let rows = kinds
        .iter()
        .map(|&kind| {
            let ab = tech.alpha_beta(kind, load);
            let g = delay_gradient(tech, &ab, &pt);
            let swing_ps = PerParam::from_fn(|p| to_ps((g.get(p) * vars.sigma.get(p)).abs()));
            SensitivityRow {
                kind,
                nominal_ps: to_ps(crate::delay::gate_delay(tech, &ab, &pt)),
                swing_ps,
            }
        })
        .collect();
    SensitivityTable { rows }
}

/// Reproduces the paper's Table 1: the four gate types at fan-out 2 under
/// the DATE'05 variations.
pub fn table1(tech: &Technology) -> SensitivityTable {
    sensitivity_table(tech, &Variations::date05(), &TABLE1_GATES, &Load::fanout(2))
}

impl SensitivityTable {
    /// Renders the table as text, parameters as rows and gates as columns
    /// (the paper's layout).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(out, "{:>8}", "");
        for row in &self.rows {
            let _ = write!(out, "{:>10}", row.kind.to_string());
        }
        out.push('\n');
        for p in Param::ALL {
            let _ = write!(out, "{:>8}", p.symbol());
            for row in &self.rows {
                let _ = write!(out, "{:>8.3}ps", row.swing_ps.get(p));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_ordering_matches_paper() {
        // Paper: Leff dominates, then tox, then Vdd, with VTn and VTp an
        // order of magnitude below Leff — for every gate type.
        let t = table1(&Technology::cmos130());
        assert_eq!(t.rows.len(), 4);
        for row in &t.rows {
            let s = &row.swing_ps;
            assert!(s.get(Param::Leff) > s.get(Param::Tox), "{}", row.kind);
            assert!(s.get(Param::Tox) > s.get(Param::Vtn), "{}", row.kind);
            assert!(s.get(Param::Vdd) > s.get(Param::Vtn), "{}", row.kind);
            assert!(s.get(Param::Leff) > 8.0 * s.get(Param::Vtn), "{}", row.kind);
            assert!(s.get(Param::Leff) > 8.0 * s.get(Param::Vtp), "{}", row.kind);
        }
    }

    #[test]
    fn table1_magnitudes_near_paper() {
        // Paper values for 2-NAND: Leff 2.061 ps, tox 0.587 ps, Vdd
        // 0.360 ps. Allow a generous band — the exact capacitances differ.
        let t = table1(&Technology::cmos130());
        let nand = &t.rows[0];
        assert_eq!(nand.kind, GateKind::Nand(2));
        let leff = nand.swing_ps.get(Param::Leff);
        let tox = nand.swing_ps.get(Param::Tox);
        let vdd = nand.swing_ps.get(Param::Vdd);
        assert!((1.4..=2.9).contains(&leff), "Leff swing {leff}");
        assert!((0.35..=0.9).contains(&tox), "tox swing {tox}");
        assert!((0.15..=0.75).contains(&vdd), "Vdd swing {vdd}");
    }

    #[test]
    fn gate_column_ordering() {
        // Paper: NAND swings > XNOR > NOR > INV (they track the delays).
        let t = table1(&Technology::cmos130());
        let leff = |i: usize| t.rows[i].swing_ps.get(Param::Leff);
        assert!(leff(0) > leff(1), "NAND > NOR");
        assert!(leff(1) > leff(2), "NOR > INV");
        assert!(leff(3) > leff(2), "XNOR > INV");
    }

    #[test]
    fn render_contains_all_symbols() {
        let t = table1(&Technology::cmos130());
        let s = t.render();
        for p in Param::ALL {
            assert!(s.contains(p.symbol()), "missing {p}");
        }
        assert!(s.contains("2NAND"));
    }

    #[test]
    fn swing_scales_linearly_with_sigma() {
        let tech = Technology::cmos130();
        let base = sensitivity_table(
            &tech,
            &Variations::date05(),
            &[GateKind::Inv],
            &Load::fanout(2),
        );
        let doubled = sensitivity_table(
            &tech,
            &Variations::date05().scaled(2.0),
            &[GateKind::Inv],
            &Load::fanout(2),
        );
        for p in Param::ALL {
            let b = base.rows[0].swing_ps.get(p);
            let d = doubled.rows[0].swing_ps.get(p);
            assert!((d - 2.0 * b).abs() < 1e-9 * b.max(1e-12), "{p}");
        }
    }
}
