//! Technology constants and operating points.
//!
//! The paper evaluates on "130 nm technology nominal values". Exact
//! nominals are not printed, but they are pinned down by the paper's own
//! numbers (see `DESIGN.md` §6):
//!
//! * Table 1's Leff row gives `tp·σ_Leff/Leff = 2.061 ps` for a FO2 2-NAND,
//!   and its tox row gives `tp·σ_tox/tox = 0.587 ps`; together with the
//!   per-path delays of Table 2 these imply `Leff ≈ 90 nm`,
//!   `tox ≈ 3.2 nm` and `tp(2-NAND, FO2) ≈ 12.4 ps`.
//! * Table 2's worst-case column is almost exactly 2× the nominal critical
//!   delay, which the same nominals reproduce at a 3σ corner.
//!
//! Capacitances, mobilities and widths below are then calibrated so the
//! FO2 2-NAND nominal delay lands on 12.4 ps.

use crate::gate::{GateKind, Load};
use crate::param::{Param, PerParam};

/// Vacuum permittivity times the SiO₂ relative permittivity (F/m).
pub const EPS_OX: f64 = 3.9 * 8.854e-12;

/// The Elmore prefactor of the paper's eq. (2).
pub const ELMORE_K: f64 = 0.345;

/// Technology constants: nominal parameter values plus the capacitance,
/// mobility and width data that enter the α/β coefficients.
#[derive(Debug, Clone, PartialEq)]
pub struct Technology {
    /// Nominal gate-oxide thickness (m).
    pub tox: f64,
    /// Nominal effective channel length (m).
    pub leff: f64,
    /// Nominal supply voltage (V).
    pub vdd: f64,
    /// Nominal NMOS threshold voltage (V).
    pub vtn: f64,
    /// Nominal PMOS threshold-voltage magnitude (V).
    pub vtp: f64,
    /// Oxide permittivity (F/m).
    pub eps_ox: f64,
    /// Effective NMOS mobility (m²/V·s).
    pub mu_n: f64,
    /// Effective PMOS mobility (m²/V·s).
    pub mu_p: f64,
    /// NMOS channel width (m).
    pub w_n: f64,
    /// PMOS channel width (m).
    pub w_p: f64,
    /// Junction (drain) capacitance per transistor drain at a node (F).
    pub c_drain: f64,
    /// Input (gate) capacitance per fan-in pin (F).
    pub c_gate: f64,
    /// Default wire capacitance per output net (F).
    pub c_wire: f64,
}

impl Technology {
    /// The calibrated 130 nm technology used throughout the reproduction.
    pub fn cmos130() -> Self {
        Technology {
            tox: 3.2e-9,
            leff: 90e-9,
            vdd: 1.5,
            vtn: 0.40,
            vtp: 0.42,
            eps_ox: EPS_OX,
            // Effective (fitted) transport and capacitance constants; the
            // products µn·Wn = 1.2e-8 and µp·Wp = 3.0e-8 together with the
            // capacitances below put tp(2-NAND, FO2) at 12.4 ps and
            // reproduce the paper's Table 1 gate ratios
            // (INV/NOR/XNOR ≈ 0.38/0.63/0.90 of the 2-NAND swing).
            mu_n: 0.030,
            mu_p: 0.015,
            w_n: 0.4e-6,
            w_p: 2.0e-6,
            c_drain: 1.50e-15,
            c_gate: 1.97e-15,
            c_wire: 0.94e-15,
        }
    }

    /// Nominal operating point (the paper's `X_nominal`).
    pub fn nominal_point(&self) -> OperatingPoint {
        OperatingPoint {
            values: PerParam([self.tox, self.leff, self.vdd, self.vtn, self.vtp]),
        }
    }

    /// Nominal value of one parameter.
    pub fn nominal(&self, p: Param) -> f64 {
        match p {
            Param::Tox => self.tox,
            Param::Leff => self.leff,
            Param::Vdd => self.vdd,
            Param::Vtn => self.vtn,
            Param::Vtp => self.vtp,
        }
    }

    /// Total capacitance at a gate's output node: its own drain diffusion
    /// plus the fan-out pins' gate capacitance plus wire capacitance
    /// (the paper's `Cn`).
    pub fn output_cap(&self, kind: GateKind, load: &Load) -> f64 {
        let drains = kind.output_drains() as f64;
        drains * self.c_drain + load.fanout_pins as f64 * self.c_gate + load.wire_cap(self)
    }

    /// The α and β coefficients of the paper's eqs. (3)–(4) for `kind`
    /// driving `load`.
    ///
    /// * n-NAND (series NMOS stack): α carries the stack term
    ///   `CdN·FI·(FI−1) + FI·Cn`, β is the parallel-PMOS term `Cn`.
    /// * n-NOR is the dual (series PMOS stack).
    /// * Inverter: both terms are `Cn`.
    /// * XOR/XNOR-2: complex gate with both a series NMOS and a series
    ///   PMOS pair.
    /// * Composite kinds (AND, OR, BUF) are modeled as their two-stage
    ///   expansions; because each stage has the same functional form, the
    ///   coefficients simply add (the internal node sees one inverter pin).
    pub fn alpha_beta(&self, kind: GateKind, load: &Load) -> AlphaBeta {
        let cn = self.output_cap(kind, load);
        let fi = kind.fan_in() as f64;
        let (cd, mun_wn, mup_wp) = (self.c_drain, self.mu_n * self.w_n, self.mu_p * self.w_p);
        match kind {
            GateKind::Inv => AlphaBeta {
                alpha: cn / mun_wn,
                beta: cn / mup_wp,
            },
            GateKind::Nand(_) => AlphaBeta {
                alpha: (cd * fi * (fi - 1.0) + fi * cn) / mun_wn,
                beta: cn / mup_wp,
            },
            GateKind::Nor(_) => AlphaBeta {
                alpha: cn / mun_wn,
                beta: (cd * fi * (fi - 1.0) + fi * cn) / mup_wp,
            },
            // Symmetric complex gate: both networks see series pairs, with
            // an effective 1.5·Cn Elmore weight (transmission-gate-style
            // XOR). Calibrated so the XNOR delay is ≈0.90× the 2-NAND's,
            // the ratio implied by the paper's Table 1.
            GateKind::Xor2 | GateKind::Xnor2 => AlphaBeta {
                alpha: 1.5 * cn / mun_wn,
                beta: 1.5 * cn / mup_wp,
            },
            GateKind::Buf => {
                // Two cascaded inverters; the internal node drives one pin.
                let internal = self.internal_node_cap();
                AlphaBeta {
                    alpha: (internal + cn) / mun_wn,
                    beta: (internal + cn) / mup_wp,
                }
            }
            GateKind::And(n) => {
                let inner = self.alpha_beta(GateKind::Nand(n), &Load::internal());
                let outer = self.alpha_beta(GateKind::Inv, load);
                AlphaBeta {
                    alpha: inner.alpha + outer.alpha,
                    beta: inner.beta + outer.beta,
                }
            }
            GateKind::Or(n) => {
                let inner = self.alpha_beta(GateKind::Nor(n), &Load::internal());
                let outer = self.alpha_beta(GateKind::Inv, load);
                AlphaBeta {
                    alpha: inner.alpha + outer.alpha,
                    beta: inner.beta + outer.beta,
                }
            }
        }
    }

    /// Capacitance of an internal node between the stages of a composite
    /// gate: two drains plus one inverter input pin.
    fn internal_node_cap(&self) -> f64 {
        2.0 * self.c_drain + self.c_gate
    }
}

/// The lumped α and β coefficients of eqs. (3)–(4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlphaBeta {
    /// NMOS-side coefficient (multiplies `f(Vdd, VTn)`).
    pub alpha: f64,
    /// PMOS-side coefficient (multiplies `f(Vdd, |VTp|)`).
    pub beta: f64,
}

/// A full assignment of the five varying parameters (the paper's vector
/// `X`). `vtp` stores the magnitude `|VTp|`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingPoint {
    /// Parameter values in canonical order.
    pub values: PerParam,
}

impl OperatingPoint {
    /// Value of one parameter.
    #[inline]
    pub fn get(&self, p: Param) -> f64 {
        self.values.get(p)
    }

    /// Returns a copy with `p` set to `v`.
    pub fn with(&self, p: Param, v: f64) -> Self {
        let mut values = self.values;
        values.set(p, v);
        OperatingPoint { values }
    }

    /// Returns a copy with every parameter shifted by the corresponding
    /// entry of `delta`.
    pub fn shifted(&self, delta: &PerParam) -> Self {
        OperatingPoint {
            values: PerParam::from_fn(|p| self.values.get(p) + delta.get(p)),
        }
    }

    /// Convenience accessors in paper notation.
    #[inline]
    pub fn tox(&self) -> f64 {
        self.get(Param::Tox)
    }
    /// Effective channel length.
    #[inline]
    pub fn leff(&self) -> f64 {
        self.get(Param::Leff)
    }
    /// Supply voltage.
    #[inline]
    pub fn vdd(&self) -> f64 {
        self.get(Param::Vdd)
    }
    /// NMOS threshold.
    #[inline]
    pub fn vtn(&self) -> f64 {
        self.get(Param::Vtn)
    }
    /// PMOS threshold magnitude.
    #[inline]
    pub fn vtp(&self) -> f64 {
        self.get(Param::Vtp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_point_matches_tech() {
        let t = Technology::cmos130();
        let pt = t.nominal_point();
        assert_eq!(pt.tox(), t.tox);
        assert_eq!(pt.leff(), t.leff);
        assert_eq!(pt.vdd(), t.vdd);
        for p in Param::ALL {
            assert_eq!(pt.get(p), t.nominal(p));
        }
    }

    #[test]
    fn with_and_shifted() {
        let t = Technology::cmos130();
        let pt = t.nominal_point().with(Param::Vdd, 1.2);
        assert_eq!(pt.vdd(), 1.2);
        assert_eq!(pt.tox(), t.tox);
        let mut d = PerParam::default();
        d.set(Param::Leff, 1e-9);
        let pt2 = pt.shifted(&d);
        assert!((pt2.leff() - (t.leff + 1e-9)).abs() < 1e-18);
    }

    #[test]
    fn output_cap_scales_with_fanout() {
        let t = Technology::cmos130();
        let c1 = t.output_cap(GateKind::Nand(2), &Load::fanout(1));
        let c4 = t.output_cap(GateKind::Nand(2), &Load::fanout(4));
        assert!((c4 - c1 - 3.0 * t.c_gate).abs() < 1e-21);
    }

    #[test]
    fn nand_alpha_exceeds_inverter_alpha() {
        // The NMOS stack penalty makes the NAND pull-down coefficient
        // larger than the inverter's at equal load.
        let t = Technology::cmos130();
        let load = Load::fanout(2);
        let nand = t.alpha_beta(GateKind::Nand(2), &load);
        let inv = t.alpha_beta(GateKind::Inv, &load);
        assert!(nand.alpha > inv.alpha);
        // NAND output has more drains, so even β grows slightly via Cn.
        assert!(nand.beta > inv.beta);
    }

    #[test]
    fn nor_is_dual_of_nand() {
        let t = Technology::cmos130();
        let load = Load::fanout(2);
        let nand = t.alpha_beta(GateKind::Nand(3), &load);
        let nor = t.alpha_beta(GateKind::Nor(3), &load);
        // The stacked side swaps.
        assert!(nor.beta > nand.beta);
        assert!(nand.alpha > nor.alpha);
    }

    #[test]
    fn composite_gates_add_stages() {
        let t = Technology::cmos130();
        let load = Load::fanout(2);
        let and2 = t.alpha_beta(GateKind::And(2), &load);
        let nand2 = t.alpha_beta(GateKind::Nand(2), &load);
        assert!(and2.alpha > nand2.alpha * 0.9); // extra stage adds work
        let buf = t.alpha_beta(GateKind::Buf, &load);
        let inv = t.alpha_beta(GateKind::Inv, &load);
        assert!(buf.alpha > inv.alpha);
    }
}
