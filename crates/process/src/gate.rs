//! Gate kinds and output loads.
//!
//! The paper derives delay equations for the inverter, n-input NAND,
//! n-input NOR and 2-input XNOR, "the gates ... which constitute all
//! ISCAS85 benchmarks". The published ISCAS85 netlists additionally use
//! AND, OR, XOR and BUF cells; those are modeled as their canonical
//! two-stage expansions (NAND+INV, NOR+INV, XNOR+INV ≡ XOR, INV+INV),
//! which keeps every delay in the single functional form of eq. (2).

use crate::tech::Technology;
use std::fmt;

/// A combinational gate type with its fan-in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// Inverter.
    Inv,
    /// Non-inverting buffer (two cascaded inverters).
    Buf,
    /// n-input NAND, `n ≥ 2`.
    Nand(u8),
    /// n-input NOR, `n ≥ 2`.
    Nor(u8),
    /// n-input AND (NAND + INV), `n ≥ 2`.
    And(u8),
    /// n-input OR (NOR + INV), `n ≥ 2`.
    Or(u8),
    /// 2-input XOR.
    Xor2,
    /// 2-input XNOR.
    Xnor2,
}

impl GateKind {
    /// Number of logic inputs.
    pub fn fan_in(&self) -> usize {
        match *self {
            GateKind::Inv | GateKind::Buf => 1,
            GateKind::Nand(n) | GateKind::Nor(n) | GateKind::And(n) | GateKind::Or(n) => n as usize,
            GateKind::Xor2 | GateKind::Xnor2 => 2,
        }
    }

    /// Number of transistor drains on the output node, which sets the
    /// self-loading part of `Cn`.
    pub fn output_drains(&self) -> usize {
        match *self {
            GateKind::Inv | GateKind::Buf => 2,
            // n parallel devices plus the end of the series stack.
            GateKind::Nand(n) | GateKind::Nor(n) => n as usize + 1,
            // Composite gates present an inverter output.
            GateKind::And(_) | GateKind::Or(_) => 2,
            // Complex CMOS XOR/XNOR: two branch drains per network.
            GateKind::Xor2 | GateKind::Xnor2 => 4,
        }
    }

    /// Whether the cell logically inverts (affects logic value, not
    /// timing; provided for netlist utilities).
    pub fn inverting(&self) -> bool {
        matches!(
            *self,
            GateKind::Inv | GateKind::Nand(_) | GateKind::Nor(_) | GateKind::Xnor2
        )
    }

    /// Builds a kind from an ISCAS `.bench` function name and a fan-in
    /// count. Returns `None` for unknown names or unsupported arities.
    ///
    /// # Examples
    ///
    /// ```
    /// use statim_process::gate::GateKind;
    /// assert_eq!(GateKind::from_bench("NAND", 3), Some(GateKind::Nand(3)));
    /// assert_eq!(GateKind::from_bench("not", 1), Some(GateKind::Inv));
    /// assert_eq!(GateKind::from_bench("XOR", 2), Some(GateKind::Xor2));
    /// assert_eq!(GateKind::from_bench("XOR", 3), None);
    /// ```
    pub fn from_bench(name: &str, fan_in: usize) -> Option<GateKind> {
        let arity = |k: fn(u8) -> GateKind| {
            if (2..=9).contains(&fan_in) {
                Some(k(fan_in as u8))
            } else {
                None
            }
        };
        match name.to_ascii_uppercase().as_str() {
            "NOT" | "INV" if fan_in == 1 => Some(GateKind::Inv),
            "BUF" | "BUFF" if fan_in == 1 => Some(GateKind::Buf),
            "NAND" => arity(GateKind::Nand),
            "NOR" => arity(GateKind::Nor),
            "AND" => arity(GateKind::And),
            "OR" => arity(GateKind::Or),
            "XOR" if fan_in == 2 => Some(GateKind::Xor2),
            "XNOR" if fan_in == 2 => Some(GateKind::Xnor2),
            _ => None,
        }
    }

    /// The `.bench` function name of this kind.
    pub fn bench_name(&self) -> &'static str {
        match *self {
            GateKind::Inv => "NOT",
            GateKind::Buf => "BUFF",
            GateKind::Nand(_) => "NAND",
            GateKind::Nor(_) => "NOR",
            GateKind::And(_) => "AND",
            GateKind::Or(_) => "OR",
            GateKind::Xor2 => "XOR",
            GateKind::Xnor2 => "XNOR",
        }
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            GateKind::Nand(n) | GateKind::Nor(n) | GateKind::And(n) | GateKind::Or(n) => {
                write!(f, "{}{}", n, self.bench_name())
            }
            _ => f.write_str(self.bench_name()),
        }
    }
}

/// The load a gate drives: fan-out pins and wire capacitance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Load {
    /// Number of downstream gate input pins.
    pub fanout_pins: usize,
    /// Explicit wire capacitance in farads, or `None` to use the
    /// technology default.
    pub wire_cap_override: Option<f64>,
}

impl Load {
    /// A load of `pins` fan-out pins with the default wire capacitance.
    pub fn fanout(pins: usize) -> Self {
        Load {
            fanout_pins: pins,
            wire_cap_override: None,
        }
    }

    /// A load with explicit wire capacitance (farads).
    pub fn with_wire(pins: usize, wire_cap: f64) -> Self {
        Load {
            fanout_pins: pins,
            wire_cap_override: Some(wire_cap),
        }
    }

    /// The zero-wire single-pin load of an internal composite-gate node.
    pub(crate) fn internal() -> Self {
        Load {
            fanout_pins: 0,
            wire_cap_override: Some(0.0),
        }
    }

    /// Wire capacitance under `tech`.
    pub fn wire_cap(&self, tech: &Technology) -> f64 {
        self.wire_cap_override.unwrap_or(tech.c_wire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fan_in_counts() {
        assert_eq!(GateKind::Inv.fan_in(), 1);
        assert_eq!(GateKind::Nand(4).fan_in(), 4);
        assert_eq!(GateKind::Xnor2.fan_in(), 2);
        assert_eq!(GateKind::Buf.fan_in(), 1);
    }

    #[test]
    fn from_bench_parses_known() {
        assert_eq!(GateKind::from_bench("nand", 2), Some(GateKind::Nand(2)));
        assert_eq!(GateKind::from_bench("NOR", 5), Some(GateKind::Nor(5)));
        assert_eq!(GateKind::from_bench("BUFF", 1), Some(GateKind::Buf));
        assert_eq!(GateKind::from_bench("XNOR", 2), Some(GateKind::Xnor2));
        assert_eq!(GateKind::from_bench("AND", 8), Some(GateKind::And(8)));
    }

    #[test]
    fn from_bench_rejects_bad_arity() {
        assert_eq!(GateKind::from_bench("NOT", 2), None);
        assert_eq!(GateKind::from_bench("NAND", 1), None);
        assert_eq!(GateKind::from_bench("NAND", 25), None);
        assert_eq!(GateKind::from_bench("MUX", 3), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(GateKind::Nand(3).to_string(), "3NAND");
        assert_eq!(GateKind::Inv.to_string(), "NOT");
        assert_eq!(GateKind::Xor2.to_string(), "XOR");
    }

    #[test]
    fn inverting_flags() {
        assert!(GateKind::Inv.inverting());
        assert!(GateKind::Nand(2).inverting());
        assert!(!GateKind::And(2).inverting());
        assert!(!GateKind::Xor2.inverting());
        assert!(GateKind::Xnor2.inverting());
    }

    #[test]
    fn load_wire_default_and_override() {
        let t = Technology::cmos130();
        assert_eq!(Load::fanout(2).wire_cap(&t), t.c_wire);
        assert_eq!(Load::with_wire(2, 1e-15).wire_cap(&t), 1e-15);
        assert_eq!(Load::internal().wire_cap(&t), 0.0);
    }

    #[test]
    fn output_drains_reasonable() {
        assert_eq!(GateKind::Inv.output_drains(), 2);
        assert_eq!(GateKind::Nand(2).output_drains(), 3);
        assert_eq!(GateKind::Nor(4).output_drains(), 5);
        assert_eq!(GateKind::Xnor2.output_drains(), 4);
    }
}
