//! Property-based tests for the delay model: eq. (2) and its derivatives
//! over randomized (valid) operating points, loads and gate kinds.

use proptest::prelude::*;
use statim_process::delay::{gate_delay, voltage_kernel, CornerSpec};
use statim_process::deriv::{delay_gradient, delay_hessian_diag};
use statim_process::param::PerParam;
use statim_process::tech::OperatingPoint;
use statim_process::{GateKind, Load, Param, Technology, Variations};

fn arb_kind() -> impl Strategy<Value = GateKind> {
    prop::sample::select(vec![
        GateKind::Inv,
        GateKind::Buf,
        GateKind::Nand(2),
        GateKind::Nand(3),
        GateKind::Nand(4),
        GateKind::Nor(2),
        GateKind::Nor(3),
        GateKind::And(2),
        GateKind::Or(3),
        GateKind::Xor2,
        GateKind::Xnor2,
    ])
}

fn arb_load() -> impl Strategy<Value = Load> {
    (0usize..12).prop_map(Load::fanout)
}

/// A valid operating point: every transistor stays in its active region
/// (Vdd well above both thresholds).
fn arb_point() -> impl Strategy<Value = OperatingPoint> {
    (
        1.5e-9..6e-9f64,  // tox
        40e-9..200e-9f64, // leff
        1.1..2.0f64,      // vdd
        0.25..0.55f64,    // vtn
        0.25..0.55f64,    // vtp
    )
        .prop_map(|(tox, leff, vdd, vtn, vtp)| OperatingPoint {
            values: PerParam([tox, leff, vdd, vtn, vtp]),
        })
}

proptest! {
    #[test]
    fn delay_positive_and_finite(kind in arb_kind(), load in arb_load(), pt in arb_point()) {
        let tech = Technology::cmos130();
        let ab = tech.alpha_beta(kind, &load);
        let tp = gate_delay(&tech, &ab, &pt);
        prop_assert!(tp.is_finite());
        prop_assert!(tp > 0.0);
        prop_assert!(tp < 1e-9, "a single 130nm gate should be far below 1 ns, got {tp}");
    }

    #[test]
    fn delay_monotone_in_worst_directions(kind in arb_kind(), load in arb_load(), pt in arb_point(), frac in 0.001..0.05f64) {
        let tech = Technology::cmos130();
        let ab = tech.alpha_beta(kind, &load);
        let base = gate_delay(&tech, &ab, &pt);
        for p in Param::ALL {
            let bump = p.worst_direction() * pt.get(p) * frac;
            let shifted = pt.with(p, pt.get(p) + bump);
            let tp = gate_delay(&tech, &ab, &shifted);
            prop_assert!(tp > base, "{p}: moving in worst direction must slow the gate");
        }
    }

    #[test]
    fn gradient_matches_finite_difference(kind in arb_kind(), load in arb_load(), pt in arb_point()) {
        let tech = Technology::cmos130();
        let ab = tech.alpha_beta(kind, &load);
        let g = delay_gradient(&tech, &ab, &pt);
        for p in Param::ALL {
            let h = pt.get(p) * 1e-6;
            let up = gate_delay(&tech, &ab, &pt.with(p, pt.get(p) + h));
            let dn = gate_delay(&tech, &ab, &pt.with(p, pt.get(p) - h));
            let fd = (up - dn) / (2.0 * h);
            let an = g.get(p);
            prop_assert!(
                (an - fd).abs() <= 1e-4 * fd.abs().max(1e-30),
                "{p}: analytic {an:e} vs fd {fd:e}"
            );
        }
    }

    #[test]
    fn hessian_nonnegative_for_thresholds(kind in arb_kind(), pt in arb_point()) {
        // Delay is convex in both thresholds over the active region.
        let tech = Technology::cmos130();
        let ab = tech.alpha_beta(kind, &Load::fanout(2));
        let h = delay_hessian_diag(&tech, &ab, &pt);
        prop_assert!(h.get(Param::Vtn) >= 0.0);
        prop_assert!(h.get(Param::Vtp) >= 0.0);
        prop_assert_eq!(h.get(Param::Tox), 0.0);
        prop_assert_eq!(h.get(Param::Leff), 0.0);
    }

    #[test]
    fn delay_scales_linearly_in_geometry(kind in arb_kind(), pt in arb_point(), s in 0.5..2.0f64) {
        // tp ∝ tox·Leff exactly (eq. (2)).
        let tech = Technology::cmos130();
        let ab = tech.alpha_beta(kind, &Load::fanout(2));
        let base = gate_delay(&tech, &ab, &pt);
        let scaled = pt
            .with(Param::Tox, pt.tox() * s)
            .with(Param::Leff, pt.leff() * s);
        let tp = gate_delay(&tech, &ab, &scaled);
        prop_assert!((tp - base * s * s).abs() < 1e-9 * base.max(tp));
    }

    #[test]
    fn kernel_positive_and_decreasing_in_v(v in 1.0..2.0f64, t in 0.2..0.55f64) {
        prop_assume!(1.5 * v - 2.0 * t > 0.05);
        prop_assume!(v - t > 0.05);
        let f = voltage_kernel(v, t);
        prop_assert!(f.is_finite() && f > 0.0);
        let f_up = voltage_kernel(v + 1e-4, t);
        prop_assert!(f_up < f, "kernel must decrease with supply");
    }

    #[test]
    fn corners_bracket_nominal(kind in arb_kind(), load in arb_load(), k in 0.5..4.0f64) {
        let tech = Technology::cmos130();
        let vars = Variations::date05();
        let ab = tech.alpha_beta(kind, &load);
        let nominal = gate_delay(&tech, &ab, &tech.nominal_point());
        let corner = CornerSpec::sigma(k);
        let worst = gate_delay(&tech, &ab, &corner.worst_point(&tech, &vars));
        let best = gate_delay(&tech, &ab, &corner.best_point(&tech, &vars));
        prop_assert!(best < nominal);
        prop_assert!(nominal < worst);
        // A wider corner widens the bracket.
        let wider = CornerSpec::sigma(k * 1.5);
        prop_assert!(gate_delay(&tech, &ab, &wider.worst_point(&tech, &vars)) > worst);
    }

    #[test]
    fn fan_in_monotone_for_stacks(n in 2u8..8, load in arb_load(), pt in arb_point()) {
        // More stacked inputs ⇒ more series resistance ⇒ slower gate.
        let tech = Technology::cmos130();
        let small = tech.alpha_beta(GateKind::Nand(n), &load);
        let big = tech.alpha_beta(GateKind::Nand(n + 1), &load);
        prop_assert!(
            gate_delay(&tech, &big, &pt) > gate_delay(&tech, &small, &pt)
        );
    }

    #[test]
    fn heavier_load_is_slower(kind in arb_kind(), pins in 0usize..10, pt in arb_point()) {
        let tech = Technology::cmos130();
        let light = tech.alpha_beta(kind, &Load::fanout(pins));
        let heavy = tech.alpha_beta(kind, &Load::fanout(pins + 2));
        prop_assert!(gate_delay(&tech, &heavy, &pt) > gate_delay(&tech, &light, &pt));
    }
}
