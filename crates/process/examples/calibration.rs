//! Prints the calibrated nominal delays and one-sigma swings for the
//! paper's Table 1 gate set — a quick check that the technology constants
//! reproduce the published sensitivities.

use statim_process::deriv::delay_gradient;
use statim_process::{gate_delay, to_ps, GateKind, Load, Param, Technology, Variations};

fn main() {
    let tech = Technology::cmos130();
    let vars = Variations::date05();
    let load = Load::fanout(2);
    println!("gate      tp(ps)   |dtp/dx|*sigma per parameter (ps)");
    for kind in [
        GateKind::Nand(2),
        GateKind::Nor(2),
        GateKind::Inv,
        GateKind::Xnor2,
    ] {
        let ab = tech.alpha_beta(kind, &load);
        let tp = to_ps(gate_delay(&tech, &ab, &tech.nominal_point()));
        let g = delay_gradient(&tech, &ab, &tech.nominal_point());
        print!("{:>6}  {tp:7.3}  ", kind.to_string());
        for p in Param::ALL {
            print!("  {}={:.3}", p, to_ps((g.get(p) * vars.sigma.get(p)).abs()));
        }
        println!();
    }
}
