//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no crates.io access, so this workspace
//! vendors the slice of the criterion API its benches use: groups,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `Bencher::iter`
//! and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is deliberately simple: each benchmark is warmed up,
//! then timed over `sample_size` samples of an adaptively chosen batch
//! size, and the per-iteration median/mean/min are printed. There are
//! no statistical comparisons against saved baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Benchmark identifier: a function name and an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{parameter}", name.into()),
        }
    }

    /// Just the parameter (the group supplies the function name).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

/// Times closures under test.
pub struct Bencher {
    samples: usize,
    /// Collected per-iteration times, seconds.
    times: Vec<f64>,
}

impl Bencher {
    /// Runs `f` repeatedly and records per-iteration wall time.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Warm-up and batch sizing: aim for batches of at least ~1 ms so
        // the clock resolution doesn't dominate fast kernels.
        let t0 = Instant::now();
        std::hint::black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let batch =
            (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 10_000) as usize;
        self.times.clear();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            self.times.push(t0.elapsed().as_secs_f64() / batch as f64);
        }
    }

    fn report(&self, label: &str) {
        if self.times.is_empty() {
            println!("{label:<40} (no samples)");
            return;
        }
        let mut sorted = self.times.clone();
        sorted.sort_by(f64::total_cmp);
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        let min = sorted[0];
        println!(
            "{label:<40} median {:>12} mean {:>12} min {:>12} ({} samples)",
            fmt_time(median),
            fmt_time(mean),
            fmt_time(min),
            sorted.len()
        );
    }
}

fn fmt_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.1} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.3} s")
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f`.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            times: Vec::new(),
        };
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id.label));
        self
    }

    /// Benchmarks `f` against a fixed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            times: Vec::new(),
        };
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.label));
        self
    }

    /// Ends the group (printing is immediate, so this is a no-op kept
    /// for API compatibility).
    pub fn finish(self) {}
}

/// The harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        println!("== {name} ==");
        BenchmarkGroup {
            name,
            sample_size: 50,
        }
    }

    /// Benchmarks a single function outside a group.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut b = Bencher {
            samples: 50,
            times: Vec::new(),
        };
        f(&mut b);
        b.report(name);
        self
    }
}

/// Bundles benchmark functions under one name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($fun:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($fun(&mut criterion);)+
        }
    };
}

/// Generates `main` for one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        let mut ran = 0usize;
        group.bench_function("count", |b| {
            b.iter(|| ran += 1);
        });
        group.finish();
        assert!(
            ran > 5,
            "warm-up plus samples must run the closure, got {ran}"
        );
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("conv", 100).label, "conv/100");
        assert_eq!(BenchmarkId::from_parameter("x").label, "x");
    }

    #[test]
    fn time_formatting_scales() {
        assert!(fmt_time(5e-9).ends_with("ns"));
        assert!(fmt_time(5e-6).ends_with("µs"));
        assert!(fmt_time(5e-3).ends_with("ms"));
        assert!(fmt_time(5.0).ends_with("s"));
    }
}
