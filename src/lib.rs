//! **statim** — path-based statistical static timing analysis with
//! inter- and intra-die variations.
//!
//! A production-quality reproduction of *"On Statistical Timing Analysis
//! with Inter- and Intra-die Variations"* (Mangassarian & Anis, DATE
//! 2005). This facade crate re-exports the workspace:
//!
//! * [`stats`] — the discretized-PDF numerical engine;
//! * [`process`] — 130 nm device models, Elmore short-channel delays,
//!   variations, sensitivities;
//! * [`netlist`] — circuits, `.bench`/DEF-lite I/O, placement and the
//!   synthetic ISCAS85-equivalent generators;
//! * [`core`] — the SSTA methodology itself (timing graph, Bellman-Ford,
//!   near-critical enumeration, correlation layering, per-path PDFs,
//!   ranking, Monte-Carlo validation);
//! * [`server`] — the `statim serve` TCP daemon and client library over
//!   [`core::service::AnalysisService`].
//!
//! # Quickstart
//!
//! ```
//! use statim::core::engine::{SstaConfig, SstaEngine};
//! use statim::netlist::generators::iscas85::{self, Benchmark};
//! use statim::netlist::{Placement, PlacementStyle};
//!
//! let circuit = iscas85::generate(Benchmark::C432);
//! let placement = Placement::generate(&circuit, PlacementStyle::Levelized);
//! let report = SstaEngine::new(SstaConfig::date05())
//!     .run(&circuit, &placement)
//!     .expect("SSTA flow");
//! println!(
//!     "critical 3σ point: {:.1} ps ({} near-critical paths)",
//!     report.critical().analysis.confidence_point * 1e12,
//!     report.num_paths,
//! );
//! assert!(report.overestimation_pct > 25.0);
//! ```

#![forbid(unsafe_code)]

pub use statim_core as core;
pub use statim_netlist as netlist;
pub use statim_process as process;
pub use statim_server as server;
pub use statim_stats as stats;
