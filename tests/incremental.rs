//! Differential tests for the incremental ECO re-analysis engine.
//!
//! The contract under test: for any valid edit script, the incremental
//! engine's merged report is **byte-for-byte identical** (through
//! `deterministic_report`) to a from-scratch run of the edited netlist
//! under the same configuration — at every thread count, with the
//! kernel cache on or off, and on both convolution backends. The
//! incremental path may only change *which* work is done, never the
//! bytes that come out.

use statim::core::engine::{SstaConfig, SstaEngine};
use statim::core::report::deterministic_report;
use statim::core::{apply_edits, ConvolveBackend, EcoScript, IncrementalEngine};
use statim::netlist::generators::iscas85::{self, Benchmark};
use statim::netlist::{Circuit, Placement, PlacementStyle, Signal};
use statim::process::GateKind;

const LIMIT: usize = 25;

/// Coarse kernels keep the matrix fast; both sides of every comparison
/// use the same settings, so coarseness cannot mask a divergence.
fn config(threads: usize, cache: bool, backend: ConvolveBackend) -> SstaConfig {
    let mut c = SstaConfig::date05().with_threads(threads).with_cache(cache);
    c.quality_intra = 40;
    c.quality_inter = 20;
    c.backend = backend;
    c
}

/// The from-scratch reference: apply the script to a fresh copy of the
/// benchmark circuit and run the ordinary engine on the result.
fn fresh_report(bench: Benchmark, script: &EcoScript, cfg: SstaConfig) -> String {
    let mut circuit = iscas85::generate(bench);
    let placement = Placement::generate(&circuit, PlacementStyle::Levelized);
    apply_edits(&mut circuit, script).expect("reference apply");
    let report = SstaEngine::new(cfg)
        .run(&circuit, &placement)
        .expect("reference run");
    deterministic_report(&report, LIMIT)
}

fn incremental_report(bench: Benchmark, script: &EcoScript, cfg: SstaConfig) -> String {
    let circuit = iscas85::generate(bench);
    let placement = Placement::generate(&circuit, PlacementStyle::Levelized);
    let mut inc = IncrementalEngine::new(SstaEngine::new(cfg), circuit, placement)
        .expect("base incremental run");
    let outcome = inc.apply(script).expect("incremental apply");
    deterministic_report(&outcome.report, LIMIT)
}

/// One representative script per edit kind, derived from the circuit so
/// every target is valid on every benchmark: a mid-netlist gate for the
/// overlay edits, a structurally safe (low-id driver, high-id sink)
/// pair for the wire edits, and an arity-preserving kind swap.
fn scripts_by_kind(circuit: &Circuit) -> Vec<(&'static str, EcoScript)> {
    let gates = circuit.gates();
    let mid = gates[gates.len() / 2].name.clone();
    let early = gates[2].name.clone();
    let late = gates[gates.len() - 1].name.clone();
    let (swap_gate, swap_kind) = gates
        .iter()
        .find_map(|g| {
            if g.inputs.len() != 2 {
                return None;
            }
            let to = if g.kind == GateKind::Nor(2) {
                "nand2"
            } else {
                "nor2"
            };
            Some((g.name.clone(), to))
        })
        .expect("every benchmark has a 2-input gate");
    let parse = |text: String| EcoScript::parse(&text).expect("derived script parses");
    vec![
        ("resize", parse(format!("resize {mid} 0.5"))),
        ("retime", parse(format!("retime {mid} 1.5e-12"))),
        ("swap", parse(format!("swap {swap_gate} {swap_kind}"))),
        ("addwire", parse(format!("addwire {early} {late} 0"))),
        ("rmwire", parse(format!("rmwire {late} 0"))),
    ]
}

#[test]
fn every_edit_kind_matches_from_scratch_on_every_benchmark() {
    for bench in [Benchmark::C432, Benchmark::C499, Benchmark::C880] {
        let circuit = iscas85::generate(bench);
        for (kind, script) in scripts_by_kind(&circuit) {
            let cfg = config(1, true, ConvolveBackend::Grid);
            assert_eq!(
                incremental_report(bench, &script, cfg.clone()),
                fresh_report(bench, &script, cfg),
                "{}: `{kind}` incremental report diverged from from-scratch",
                bench.name()
            );
        }
    }
}

#[test]
fn thread_cache_backend_matrix_is_byte_identical() {
    // A mixed script touching overlays and structure at once, on c432.
    let circuit = iscas85::generate(Benchmark::C432);
    let gates = circuit.gates();
    let text = format!(
        "resize {} 0.5\nretime {} 2e-12\nrmwire {} 0",
        gates[gates.len() / 2].name,
        gates[10].name,
        gates[gates.len() - 1].name
    );
    let script = EcoScript::parse(&text).expect("script");

    // The reference is computed once per backend (thread count and
    // cache state must not change the reference bytes either — that is
    // the engine's own determinism contract, re-checked here).
    for backend in [ConvolveBackend::Grid, ConvolveBackend::Fft] {
        let reference = fresh_report(Benchmark::C432, &script, config(1, true, backend));
        for threads in [1usize, 2, 4] {
            for cache in [true, false] {
                let cfg = config(threads, cache, backend);
                assert_eq!(
                    fresh_report(Benchmark::C432, &script, cfg.clone()),
                    reference,
                    "{backend:?}/t{threads}/cache={cache}: fresh run not deterministic"
                );
                assert_eq!(
                    incremental_report(Benchmark::C432, &script, cfg),
                    reference,
                    "{backend:?}/t{threads}/cache={cache}: incremental diverged"
                );
            }
        }
    }
}

#[test]
fn sequential_edits_rebase_correctly() {
    // Apply two scripts in sequence: the second incremental pass runs on
    // the re-based state and must match a from-scratch run of the
    // doubly-edited circuit.
    let bench = Benchmark::C499;
    let circuit = iscas85::generate(bench);
    let gates = circuit.gates();
    let first = EcoScript::parse(&format!("resize {} 0.7", gates[20].name)).expect("first");
    let second = EcoScript::parse(&format!(
        "swap {} {}\nretime {} 1e-12",
        {
            let g = gates
                .iter()
                .find(|g| g.inputs.len() == 2)
                .expect("2-input gate");
            &g.name
        },
        {
            let g = gates
                .iter()
                .find(|g| g.inputs.len() == 2)
                .expect("2-input gate");
            if g.kind == GateKind::Nor(2) {
                "nand2"
            } else {
                "nor2"
            }
        },
        gates[40].name
    ))
    .expect("second");

    let cfg = config(2, true, ConvolveBackend::Grid);
    let placement = Placement::generate(&circuit, PlacementStyle::Levelized);
    let mut inc = IncrementalEngine::new(SstaEngine::new(cfg.clone()), circuit.clone(), placement)
        .expect("base run");
    inc.apply(&first).expect("first apply");
    let outcome = inc.apply(&second).expect("second apply");

    let mut reference = circuit;
    apply_edits(&mut reference, &first).expect("ref first");
    apply_edits(&mut reference, &second).expect("ref second");
    let placement = Placement::generate(&iscas85::generate(bench), PlacementStyle::Levelized);
    let report = SstaEngine::new(cfg)
        .run(&reference, &placement)
        .expect("ref run");
    assert_eq!(
        deterministic_report(&outcome.report, LIMIT),
        deterministic_report(&report, LIMIT),
        "second incremental pass diverged from the doubly-edited fresh run"
    );
}

#[test]
fn emitted_bench_round_trip_preserves_the_edited_analysis() {
    // The CI smoke path in one test: apply edits incrementally, write
    // the edited circuit as .bench (overlay directives included), parse
    // it back, and check the clean re-analysis of the round-tripped
    // netlist matches the incremental report byte-for-byte.
    let bench = Benchmark::C432;
    let circuit = iscas85::generate(bench);
    let gates = circuit.gates();
    let script = EcoScript::parse(&format!(
        "resize {} 0.5\nretime {} 2e-12",
        gates[gates.len() / 2].name,
        gates[10].name
    ))
    .expect("script");

    let cfg = config(1, true, ConvolveBackend::Grid);
    let placement = Placement::generate(&circuit, PlacementStyle::Levelized);
    let mut inc = IncrementalEngine::new(SstaEngine::new(cfg.clone()), circuit, placement.clone())
        .expect("base run");
    let outcome = inc.apply(&script).expect("apply");

    let text = statim::netlist::bench_format::write(inc.circuit());
    let round_tripped =
        statim::netlist::bench_format::parse("c432", &text).expect("round-trip parse");
    // The placement is structural, so the original one still applies.
    let report = SstaEngine::new(cfg)
        .run(&round_tripped, &placement)
        .expect("round-trip run");
    assert_eq!(
        deterministic_report(&outcome.report, LIMIT),
        deterministic_report(&report, LIMIT),
        ".bench round-trip of the edited circuit changed the analysis"
    );
}

#[test]
fn reuse_actually_happens_on_small_edits() {
    // Not just correctness: a 1-gate edit off the critical cone must
    // retain most path analyses, or the incremental engine is silently
    // doing full work. Pick a gate that drives no one (a sink) so its
    // fanout cone is minimal.
    let bench = Benchmark::C880;
    let circuit = iscas85::generate(bench);
    let placement = Placement::generate(&circuit, PlacementStyle::Levelized);
    let cfg = config(1, true, ConvolveBackend::Grid);
    let mut inc =
        IncrementalEngine::new(SstaEngine::new(cfg.clone()), circuit, placement).expect("base run");

    // A sink gate: drives no other gate, so only wire-load coupling can
    // dirty anything beyond itself.
    let sink = {
        let c = inc.circuit();
        let mut driven = vec![false; c.gate_count()];
        for g in c.gates() {
            for s in &g.inputs {
                if let Signal::Gate(src) = s {
                    driven[src.index()] = true;
                }
            }
        }
        c.gates()
            .iter()
            .enumerate()
            .rev()
            .find(|(i, _)| !driven[*i])
            .map(|(_, g)| g.name.clone())
            .expect("some gate drives only outputs")
    };
    let script = EcoScript::parse(&format!("retime {sink} 5e-12")).expect("script");
    let outcome = inc.apply(&script).expect("apply");
    let stats = &outcome.stats;
    assert!(
        stats.reused_paths >= stats.recomputed_paths,
        "1-gate sink edit should reuse most paths: {}",
        stats.summary_line()
    );
    assert_eq!(
        deterministic_report(&outcome.report, LIMIT),
        fresh_report(bench, &script, cfg),
        "sink edit diverged from from-scratch"
    );
}
