//! Cross-backend accuracy suite: the FFT convolution backend against
//! the exact grid backend, end-to-end through the engine.
//!
//! The contract under test: `--backend fft` is a *numerical* fast path.
//! It is validated to tolerance against the grid backend (per-path
//! moments and quantiles within 1e-9 relative), against closed-form
//! moment addition, and against the exact Monte-Carlo model — while
//! remaining run-to-run and thread-count deterministic on its own.

use statim::core::analyze::{analyze_path, AnalysisSettings};
use statim::core::characterize::characterize_placed;
use statim::core::engine::{SstaConfig, SstaEngine, SstaReport};
use statim::core::longest_path::{critical_path, topo_labels};
use statim::core::monte_carlo::mc_path_distribution;
use statim::core::report::deterministic_report;
use statim::netlist::generators::iscas85::{self, Benchmark};
use statim::netlist::{Placement, PlacementStyle};
use statim::process::Technology;
use statim::stats::ConvolveBackend;

/// The benchmarks the suite sweeps (the smallest built-ins).
const BENCHES: &[Benchmark] = &[Benchmark::C432, Benchmark::C499, Benchmark::C880];

fn run(bench: Benchmark, backend: ConvolveBackend, threads: Option<usize>) -> SstaReport {
    let circuit = iscas85::generate(bench);
    let placement = Placement::generate(&circuit, PlacementStyle::Levelized);
    let mut config = SstaConfig::date05().with_backend(backend);
    config.threads = threads;
    SstaEngine::new(config)
        .run(&circuit, &placement)
        .expect("engine run")
}

fn rel(a: f64, b: f64) -> f64 {
    (a - b).abs() / b.abs().max(f64::MIN_POSITIVE)
}

#[test]
fn backends_agree_per_path_to_1e9() {
    for &bench in BENCHES {
        let grid = run(bench, ConvolveBackend::Grid, None);
        let fft = run(bench, ConvolveBackend::Fft, None);
        assert_eq!(grid.num_paths, fft.num_paths, "{bench:?}");
        // Match paths by their gate sequence: a 1e-9 agreement means the
        // ranking cannot differ, but the pairing must not assume it.
        let by_gates: std::collections::HashMap<_, _> = fft
            .paths
            .iter()
            .map(|p| (p.analysis.gates.clone(), &p.analysis))
            .collect();
        for p in &grid.paths {
            let g = &p.analysis;
            let f = by_gates[&g.gates];
            assert!(rel(g.mean, f.mean) < 1e-9, "{bench:?} mean");
            assert!(rel(g.sigma, f.sigma) < 1e-9, "{bench:?} sigma");
            assert!(
                rel(g.confidence_point, f.confidence_point) < 1e-9,
                "{bench:?} confidence point"
            );
            for p in [0.001, 0.5, 0.999] {
                let qg = g.total_pdf.quantile(p).expect("quantile");
                let qf = f.total_pdf.quantile(p).expect("quantile");
                assert!(rel(qg, qf) < 1e-9, "{bench:?} quantile({p}): {qg} vs {qf}");
            }
        }
    }
}

#[test]
fn both_backends_match_closed_form_moment_addition() {
    // total = intra ⊛ inter, so the closed-form Gaussian ⊕ Gaussian
    // rules apply to the moments. The convolution itself adds means
    // exactly; the final resample onto the output grid leaks ~1e-6
    // relative (measured ~6e-7 on c432), so the gate sits at 1e-5.
    // Variances add up to the quantization leakage of the resample.
    for backend in [ConvolveBackend::Grid, ConvolveBackend::Fft] {
        let report = run(Benchmark::C432, backend, None);
        for p in &report.paths {
            let a = &p.analysis;
            let mean_sum = a.intra_pdf.mean() + a.inter_pdf.mean();
            assert!(
                (a.total_pdf.mean() - mean_sum).abs() < 1e-5 * a.mean.abs(),
                "{backend}: mean not additive"
            );
            let var_sum = a.intra_sigma.powi(2) + a.inter_sigma.powi(2);
            assert!(
                rel(a.sigma.powi(2), var_sum) < 0.05,
                "{backend}: sigma² {} vs intra²+inter² {}",
                a.sigma.powi(2),
                var_sum
            );
        }
    }
}

#[test]
fn fft_backend_matches_monte_carlo_on_c499() {
    // The accuracy.rs Monte-Carlo cross-check, re-run with the spectral
    // kernel: the exact non-linear MC model neither knows nor cares how
    // the analytic convolution was computed.
    let circuit = iscas85::generate(Benchmark::C499);
    let placement = Placement::generate(&circuit, PlacementStyle::Levelized);
    let tech = Technology::cmos130();
    let timing = characterize_placed(&circuit, &tech, &placement).expect("characterize");
    let labels = topo_labels(&circuit, &timing).expect("labels");
    let path = critical_path(&circuit, &timing, &labels).expect("critical path");
    let mut settings = AnalysisSettings::date05();
    settings.backend = ConvolveBackend::Fft;
    let analytic = analyze_path(&path, &timing, &placement, &tech, &settings).expect("analyze");
    let mc = mc_path_distribution(
        &path,
        &timing,
        &placement,
        &tech,
        &settings.vars,
        &settings.layers,
        15_000,
        100,
        99,
    )
    .expect("mc");
    assert!(rel(analytic.mean, mc.mean) < 0.01);
    assert!(rel(analytic.sigma, mc.sigma) < 0.08);
    assert!(rel(analytic.confidence_point, mc.sigma_point(3.0)) < 0.02);
    let ks = analytic.total_pdf.ks_distance(&mc.pdf);
    assert!(ks < 0.05, "KS distance {ks}");
}

#[test]
fn fft_reports_are_run_to_run_deterministic() {
    // Tolerance-validated does not mean noisy: the FFT backend is a
    // pure function with a fixed evaluation order, so two runs must be
    // bytewise equal, down to the confidence-point bit pattern.
    let first = run(Benchmark::C432, ConvolveBackend::Fft, None);
    let second = run(Benchmark::C432, ConvolveBackend::Fft, None);
    assert_eq!(
        deterministic_report(&first, 10),
        deterministic_report(&second, 10)
    );
    for (a, b) in first.paths.iter().zip(&second.paths) {
        assert_eq!(
            a.analysis.confidence_point.to_bits(),
            b.analysis.confidence_point.to_bits()
        );
    }
}

#[test]
fn both_backends_are_thread_count_invariant() {
    for backend in [ConvolveBackend::Grid, ConvolveBackend::Fft] {
        let reference = deterministic_report(&run(Benchmark::C432, backend, Some(1)), 10);
        for threads in [2usize, 4] {
            let got = deterministic_report(&run(Benchmark::C432, backend, Some(threads)), 10);
            assert_eq!(got, reference, "{backend} at {threads} threads");
        }
    }
}
