//! Determinism regression tests for the parallel execution layer.
//!
//! The engine's per-path fan-out and the Monte-Carlo chunking are both
//! specified to be **bit-identical for any thread count** — parallelism
//! may only change wall time. The kernel cache extends the contract:
//! exact-bits keys mean a hit returns precisely what a recompute would,
//! so reports are also bit-identical with the cache on or off. These
//! tests pin both contracts on C432 and C499 for
//! `threads ∈ {1, 2, 4, 8}` × `cache ∈ {off, on}`.

use statim::core::characterize::characterize_placed;
use statim::core::engine::{SstaConfig, SstaEngine, SstaReport};
use statim::core::longest_path::{critical_path, topo_labels};
use statim::core::monte_carlo::{mc_path_criticality_threaded, mc_path_distribution_threaded};
use statim::core::LayerModel;
use statim::netlist::generators::iscas85::{self, Benchmark};
use statim::netlist::{Placement, PlacementStyle};
use statim::process::{Technology, Variations};
use statim::stats::Marginal;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn run_with(bench: Benchmark, threads: usize, cache: bool) -> SstaReport {
    let circuit = iscas85::generate(bench);
    let placement = Placement::generate(&circuit, PlacementStyle::Levelized);
    let config = SstaConfig::date05().with_threads(threads).with_cache(cache);
    SstaEngine::new(config)
        .run(&circuit, &placement)
        .expect("SSTA flow")
}

/// Every numeric field of the report (timing fields excluded — those
/// legitimately vary run to run) must match to the bit.
fn assert_reports_identical(a: &SstaReport, b: &SstaReport, label: &str) {
    assert_eq!(a.circuit, b.circuit, "{label}: circuit");
    assert_eq!(a.gate_count, b.gate_count, "{label}: gate_count");
    assert_eq!(
        a.det_critical_delay.to_bits(),
        b.det_critical_delay.to_bits(),
        "{label}: det_critical_delay"
    );
    assert_eq!(
        a.worst_case_delay.to_bits(),
        b.worst_case_delay.to_bits(),
        "{label}: worst_case_delay"
    );
    assert_eq!(
        a.overestimation_pct.to_bits(),
        b.overestimation_pct.to_bits(),
        "{label}: overestimation_pct"
    );
    assert_eq!(a.sigma_c.to_bits(), b.sigma_c.to_bits(), "{label}: sigma_c");
    assert_eq!(a.num_paths, b.num_paths, "{label}: num_paths");
    assert_eq!(a.label_sweeps, b.label_sweeps, "{label}: label_sweeps");
    assert_eq!(a.paths.len(), b.paths.len(), "{label}: path count");
    for (i, (pa, pb)) in a.paths.iter().zip(&b.paths).enumerate() {
        assert_eq!(pa.prob_rank, pb.prob_rank, "{label}: path {i} prob_rank");
        assert_eq!(pa.det_rank, pb.det_rank, "{label}: path {i} det_rank");
        assert_eq!(
            pa.analysis.gates, pb.analysis.gates,
            "{label}: path {i} gates"
        );
        for (name, x, y) in [
            ("det_delay", pa.analysis.det_delay, pb.analysis.det_delay),
            ("mean", pa.analysis.mean, pb.analysis.mean),
            ("sigma", pa.analysis.sigma, pb.analysis.sigma),
            (
                "inter_sigma",
                pa.analysis.inter_sigma,
                pb.analysis.inter_sigma,
            ),
            (
                "intra_sigma",
                pa.analysis.intra_sigma,
                pb.analysis.intra_sigma,
            ),
            (
                "confidence_point",
                pa.analysis.confidence_point,
                pb.analysis.confidence_point,
            ),
        ] {
            assert_eq!(x.to_bits(), y.to_bits(), "{label}: path {i} {name}");
        }
    }
}

#[test]
fn engine_report_bit_identical_across_thread_counts_and_cache_c432() {
    let base = run_with(Benchmark::C432, THREAD_COUNTS[0], false);
    for &threads in &THREAD_COUNTS {
        for cache in [false, true] {
            if threads == THREAD_COUNTS[0] && !cache {
                continue;
            }
            let r = run_with(Benchmark::C432, threads, cache);
            assert_reports_identical(&base, &r, &format!("c432 threads={threads} cache={cache}"));
        }
    }
}

#[test]
fn engine_report_bit_identical_across_thread_counts_and_cache_c499() {
    let base = run_with(Benchmark::C499, THREAD_COUNTS[0], false);
    for &threads in &THREAD_COUNTS {
        for cache in [false, true] {
            if threads == THREAD_COUNTS[0] && !cache {
                continue;
            }
            let r = run_with(Benchmark::C499, threads, cache);
            assert_reports_identical(&base, &r, &format!("c499 threads={threads} cache={cache}"));
        }
    }
}

#[test]
fn mc_results_bit_identical_across_thread_counts() {
    for bench in [Benchmark::C432, Benchmark::C499] {
        let circuit = iscas85::generate(bench);
        let placement = Placement::generate(&circuit, PlacementStyle::Levelized);
        let tech = Technology::cmos130();
        let timing = characterize_placed(&circuit, &tech, &placement).expect("characterize");
        let labels = topo_labels(&circuit, &timing).expect("labels");
        let path = critical_path(&circuit, &timing, &labels).expect("critical path");
        let vars = Variations::date05();
        let layers = LayerModel::date05();
        // 2.5 chunks' worth of samples: exercises both full and partial
        // chunks.
        let samples = 10_000;
        let base = mc_path_distribution_threaded(
            &path,
            &timing,
            &placement,
            &tech,
            &vars,
            &layers,
            Marginal::Gaussian,
            samples,
            80,
            42,
            1,
        )
        .expect("mc");
        for &threads in &THREAD_COUNTS[1..] {
            let mc = mc_path_distribution_threaded(
                &path,
                &timing,
                &placement,
                &tech,
                &vars,
                &layers,
                Marginal::Gaussian,
                samples,
                80,
                42,
                threads,
            )
            .expect("mc");
            // McResult derives PartialEq over pdf + moments, no timing
            // fields — exact equality is the contract.
            assert_eq!(base, mc, "{bench}: threads={threads}");
        }
    }
}

#[test]
fn mc_criticality_bit_identical_across_thread_counts() {
    let circuit = iscas85::generate(Benchmark::C432);
    let placement = Placement::generate(&circuit, PlacementStyle::Levelized);
    let tech = Technology::cmos130();
    let timing = characterize_placed(&circuit, &tech, &placement).expect("characterize");
    let labels = topo_labels(&circuit, &timing).expect("labels");
    let delay = labels.critical_delay(&circuit).expect("delay");
    let set = statim::core::enumerate::near_critical_paths(
        &circuit,
        &timing,
        &labels,
        delay * 0.97,
        10_000,
    )
    .expect("enumerate");
    let vars = Variations::date05();
    let layers = LayerModel::date05();
    let base = mc_path_criticality_threaded(
        &circuit, &set.paths, &timing, &placement, &tech, &vars, &layers, 6_000, 9, 1,
    )
    .expect("criticality");
    for &threads in &THREAD_COUNTS[1..] {
        let crit = mc_path_criticality_threaded(
            &circuit, &set.paths, &timing, &placement, &tech, &vars, &layers, 6_000, 9, threads,
        )
        .expect("criticality");
        for (i, (a, b)) in base.iter().zip(&crit).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "path {i} threads={threads}");
        }
    }
}
