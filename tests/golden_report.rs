//! Golden-file regression test: Table-2-style report fields for C432 and
//! C499 at the paper configuration, compared against checked-in JSON
//! snapshots with per-field tolerances.
//!
//! The snapshots live in `tests/golden/*.json` (flat JSON written and
//! parsed by this file — no serde in the offline dependency set). To
//! regenerate after an intentional model change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_report
//! ```

use statim::core::engine::{SstaConfig, SstaEngine, SstaReport};
use statim::netlist::generators::iscas85::{self, Benchmark};
use statim::netlist::{Placement, PlacementStyle};
use std::collections::BTreeMap;
use std::path::PathBuf;

/// The snapshotted fields, all in display units (ps / percent / counts).
fn report_fields(r: &SstaReport) -> BTreeMap<String, f64> {
    let crit = r.critical();
    BTreeMap::from([
        ("gate_count".to_string(), r.gate_count as f64),
        ("num_paths".to_string(), r.num_paths as f64),
        (
            "det_critical_delay_ps".to_string(),
            r.det_critical_delay * 1e12,
        ),
        ("worst_case_delay_ps".to_string(), r.worst_case_delay * 1e12),
        ("overestimation_pct".to_string(), r.overestimation_pct),
        ("sigma_c_ps".to_string(), r.sigma_c * 1e12),
        ("crit_mean_ps".to_string(), crit.analysis.mean * 1e12),
        ("crit_sigma_ps".to_string(), crit.analysis.sigma * 1e12),
        (
            "crit_3sigma_point_ps".to_string(),
            crit.analysis.confidence_point * 1e12,
        ),
        ("crit_gates".to_string(), crit.analysis.gates.len() as f64),
        ("crit_det_rank".to_string(), crit.det_rank as f64),
    ])
}

/// Per-field tolerance: `(relative, absolute)` — a comparison passes if
/// either bound holds. Structural fields are exact.
fn tolerance(field: &str) -> (f64, f64) {
    match field {
        "gate_count" | "num_paths" | "crit_gates" | "crit_det_rank" => (0.0, 0.0),
        // Percent field: absolute band of half a point.
        "overestimation_pct" => (0.0, 0.5),
        // σ-like quantities carry discretization error.
        "sigma_c_ps" | "crit_sigma_ps" => (0.02, 1e-6),
        // Means and delay points are tight.
        _ => (0.005, 1e-6),
    }
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.json"))
}

fn write_golden(name: &str, fields: &BTreeMap<String, f64>) {
    let body: Vec<String> = fields
        .iter()
        .map(|(k, v)| format!("  \"{k}\": {v:.9}"))
        .collect();
    let text = format!("{{\n{}\n}}\n", body.join(",\n"));
    let path = golden_path(name);
    std::fs::create_dir_all(path.parent().unwrap()).expect("golden dir");
    std::fs::write(&path, text).expect("write golden");
}

/// Parses the flat `{"key": number, ...}` JSON this file writes.
fn read_golden(name: &str) -> BTreeMap<String, f64> {
    let path = golden_path(name);
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run UPDATE_GOLDEN=1 cargo test --test golden_report",
            path.display()
        )
    });
    let mut fields = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some(rest) = line.strip_prefix('"') else {
            continue;
        };
        let Some((key, value)) = rest.split_once("\":") else {
            continue;
        };
        let value: f64 = value
            .trim()
            .parse()
            .unwrap_or_else(|e| panic!("bad number for {key} in {}: {e}", path.display()));
        fields.insert(key.to_string(), value);
    }
    fields
}

fn check(bench: Benchmark) {
    let circuit = iscas85::generate(bench);
    let placement = Placement::generate(&circuit, PlacementStyle::Levelized);
    let report = SstaEngine::new(SstaConfig::date05())
        .run(&circuit, &placement)
        .expect("SSTA flow");
    let got = report_fields(&report);
    let name = bench.name();

    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        write_golden(name, &got);
        eprintln!("updated {}", golden_path(name).display());
        return;
    }

    let want = read_golden(name);
    assert_eq!(
        got.keys().collect::<Vec<_>>(),
        want.keys().collect::<Vec<_>>(),
        "{name}: snapshot fields drifted — regenerate with UPDATE_GOLDEN=1"
    );
    let mut failures = Vec::new();
    for (field, &expect) in &want {
        let actual = got[field];
        let (rel, abs) = tolerance(field);
        let diff = (actual - expect).abs();
        let ok = diff <= abs || diff <= rel * expect.abs();
        if !ok {
            failures.push(format!(
                "  {field}: got {actual}, golden {expect} (tol rel {rel}, abs {abs})"
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "{name}: report drifted from golden snapshot:\n{}",
        failures.join("\n")
    );
}

#[test]
fn c432_report_matches_golden() {
    check(Benchmark::C432);
}

#[test]
fn c499_report_matches_golden() {
    check(Benchmark::C499);
}
