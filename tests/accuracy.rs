//! Cross-crate accuracy tests: the analytic machinery against the exact
//! non-linear Monte-Carlo model, and the QUALITY-discretization
//! convergence study of the paper's §4.

use statim::core::analyze::{analyze_path, AnalysisSettings};
use statim::core::characterize::characterize_placed;
use statim::core::engine::{SstaConfig, SstaEngine};
use statim::core::longest_path::{critical_path, topo_labels};
use statim::core::monte_carlo::mc_path_distribution;
use statim::netlist::generators::iscas85::{self, Benchmark};
use statim::netlist::{Placement, PlacementStyle};
use statim::process::Technology;

#[test]
fn analytic_matches_monte_carlo_on_c499() {
    let circuit = iscas85::generate(Benchmark::C499);
    let placement = Placement::generate(&circuit, PlacementStyle::Levelized);
    let tech = Technology::cmos130();
    let timing = characterize_placed(&circuit, &tech, &placement).expect("characterize");
    let labels = topo_labels(&circuit, &timing).expect("labels");
    let path = critical_path(&circuit, &timing, &labels).expect("critical path");
    let settings = AnalysisSettings::date05();
    let analytic = analyze_path(&path, &timing, &placement, &tech, &settings).expect("analyze");
    let mc = mc_path_distribution(
        &path,
        &timing,
        &placement,
        &tech,
        &settings.vars,
        &settings.layers,
        15_000,
        100,
        99,
    )
    .expect("mc");
    let rel = |a: f64, b: f64| (a - b).abs() / b;
    assert!(rel(analytic.mean, mc.mean) < 0.01);
    assert!(rel(analytic.sigma, mc.sigma) < 0.08);
    assert!(rel(analytic.confidence_point, mc.sigma_point(3.0)) < 0.02);
    // Full-distribution agreement, not just moments: the KS distance
    // between the analytic PDF and the exact empirical one stays small
    // (sampling noise at 15k samples is ~0.011 alone).
    let ks = analytic.total_pdf.ks_distance(&mc.pdf);
    assert!(ks < 0.05, "KS distance {ks}");
}

#[test]
fn quality_discretization_converges() {
    // The paper's §4 trade-off study: the 3σ point converges
    // monotonically (in error) toward the finest grid.
    let circuit = iscas85::generate(Benchmark::C499);
    let placement = Placement::generate(&circuit, PlacementStyle::Levelized);
    let point = |qi: usize, qe: usize| {
        let mut config = SstaConfig::date05();
        config.quality_intra = qi;
        config.quality_inter = qe;
        SstaEngine::new(config)
            .run(&circuit, &placement)
            .expect("flow")
            .critical()
            .analysis
            .confidence_point
    };
    let finest = point(300, 100);
    let coarse = (point(12, 6) - finest).abs() / finest;
    let medium = (point(50, 25) - finest).abs() / finest;
    let paper_choice = (point(100, 50) - finest).abs() / finest;
    assert!(coarse > medium, "coarse err {coarse} vs medium {medium}");
    assert!(
        medium > paper_choice,
        "medium {medium} vs (100,50) {paper_choice}"
    );
    // The paper's operating point is accurate to well under a percent.
    assert!(paper_choice < 0.01, "(100,50) error {paper_choice}");
}

#[test]
fn sensitivity_table_feeds_variance_ordering() {
    // Cross-crate sanity: Leff dominates the per-gate sensitivities
    // (process crate), so it must also dominate the path-level intra
    // variance (core crate). Verify by zeroing Leff's σ.
    use statim::process::{Param, Variations};
    let circuit = iscas85::generate(Benchmark::C432);
    let placement = Placement::generate(&circuit, PlacementStyle::Levelized);
    let full = SstaEngine::new(SstaConfig::date05())
        .run(&circuit, &placement)
        .expect("full");
    let mut config = SstaConfig::date05();
    let mut vars = Variations::date05();
    vars.sigma.set(Param::Leff, 1e-15); // effectively zero
    config.vars = vars;
    let no_leff = SstaEngine::new(config)
        .run(&circuit, &placement)
        .expect("no leff");
    let s_full = full.critical().analysis.sigma;
    let s_cut = no_leff.critical().analysis.sigma;
    assert!(
        s_cut < 0.6 * s_full,
        "removing Leff must collapse most of the variance: {s_cut} vs {s_full}"
    );
}
