//! Property tests for the `statim-stats` kernels the SSTA flow leans
//! on hardest: resampled convolution, normalization preservation and the
//! Kolmogorov–Smirnov distance.

use proptest::prelude::*;
use statim::stats::convolve::{sum_pdf, sum_pdf_resampled};
use statim::stats::gaussian::gaussian_pdf;
use statim::stats::{Grid, Pdf};

/// Strategy: a valid normalized PDF on a random grid.
fn arb_pdf() -> impl Strategy<Value = Pdf> {
    (
        -1e3..1e3f64,  // lo
        0.01..10.0f64, // step
        4usize..48,    // cells
        proptest::collection::vec(0.0..1e3f64, 48),
    )
        .prop_filter_map("needs positive mass", |(lo, step, n, raw)| {
            let grid = Grid::new(lo, step, n).ok()?;
            Pdf::new(grid, raw[..n].to_vec()).ok()
        })
}

fn arb_gaussian() -> impl Strategy<Value = Pdf> {
    (-500.0..500.0f64, 0.5..50.0f64, 30usize..120)
        .prop_map(|(mean, sigma, q)| gaussian_pdf(mean, sigma, 6.0, q))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // --- sum_pdf_resampled: moment additivity -------------------------

    #[test]
    fn resampled_convolution_adds_means(
        a in arb_pdf(),
        b in arb_pdf(),
        quality in 32usize..128,
    ) {
        let s = sum_pdf_resampled(&a, &b, quality).unwrap();
        // Independent sum: E[X+Y] = E[X] + E[Y], up to the coarser
        // grid's cell width on each side.
        let tol = a.grid().step() + b.grid().step() + s.grid().step();
        let expect = a.mean() + b.mean();
        prop_assert!(
            (s.mean() - expect).abs() <= tol,
            "mean {} vs {expect}, tol {tol}", s.mean()
        );
    }

    #[test]
    fn resampled_convolution_adds_variances(
        a in arb_pdf(),
        b in arb_pdf(),
        quality in 32usize..128,
    ) {
        let s = sum_pdf_resampled(&a, &b, quality).unwrap();
        // Var[X+Y] = Var[X] + Var[Y] for independent X, Y. Discretizing
        // onto cells of width h adds O(h²) per histogramming step, and
        // the shifted-impulse convolution can smear one source cell
        // across the span of the other, so allow a grid-scale band.
        let expect = a.variance() + b.variance();
        let h = a.grid().step().max(b.grid().step()).max(s.grid().step());
        let tol = 2.0 * h * h + 0.05 * expect + 1e-9;
        prop_assert!(
            (s.variance() - expect).abs() <= tol,
            "variance {} vs {expect}, tol {tol}", s.variance()
        );
    }

    // --- normalization is preserved by the pipeline stages ------------

    #[test]
    fn convolution_preserves_mass(
        // sum_pdf requires equal grid steps, so draw one step for both.
        pair in (
            -1e3..1e3f64,
            -1e3..1e3f64,
            0.01..10.0f64,
            4usize..48,
            4usize..48,
            proptest::collection::vec(0.0..1e3f64, 96),
        )
            .prop_filter_map("needs positive mass", |(lo_a, lo_b, step, na, nb, raw)| {
                let a = Pdf::new(Grid::new(lo_a, step, na).ok()?, raw[..na].to_vec()).ok()?;
                let b = Pdf::new(Grid::new(lo_b, step, nb).ok()?, raw[48..48 + nb].to_vec()).ok()?;
                Some((a, b))
            }),
    ) {
        let (a, b) = pair;
        let s = sum_pdf(&a, &b).unwrap();
        prop_assert!((s.mass() - 1.0).abs() < 1e-9, "mass {}", s.mass());
        // Exact moment additivity on the common grid — sum_pdf's
        // midpoint assignment keeps mean and variance exact.
        prop_assert!((s.mean() - (a.mean() + b.mean())).abs() < 1e-6 * (1.0 + a.mean().abs() + b.mean().abs()));
    }

    #[test]
    fn resampled_convolution_preserves_mass(
        a in arb_pdf(),
        b in arb_pdf(),
        quality in 16usize..96,
    ) {
        let s = sum_pdf_resampled(&a, &b, quality).unwrap();
        prop_assert!((s.mass() - 1.0).abs() < 1e-9, "mass {}", s.mass());
        prop_assert_eq!(s.len(), quality);
    }

    #[test]
    fn resampling_preserves_mass(pdf in arb_pdf(), quality in 4usize..200) {
        let r = pdf.with_quality(quality).unwrap();
        prop_assert!((r.mass() - 1.0).abs() < 1e-9, "mass {}", r.mass());
        prop_assert_eq!(r.len(), quality);
    }

    // --- Kolmogorov–Smirnov distance ----------------------------------

    #[test]
    fn ks_distance_symmetric_and_bounded(a in arb_pdf(), b in arb_pdf()) {
        let ab = a.ks_distance(&b);
        let ba = b.ks_distance(&a);
        prop_assert!((0.0..=1.0).contains(&ab), "ks {ab}");
        prop_assert!((ab - ba).abs() < 1e-9, "asymmetric: {ab} vs {ba}");
    }

    #[test]
    fn ks_distance_zero_on_self(pdf in arb_pdf()) {
        prop_assert!(pdf.ks_distance(&pdf) < 1e-12);
    }

    #[test]
    fn ks_distance_separates_disjoint_supports(mean in -100.0..100.0f64, sigma in 0.5..5.0f64) {
        // Two Gaussians far apart: the CDFs separate almost completely.
        let a = gaussian_pdf(mean, sigma, 6.0, 80);
        let b = gaussian_pdf(mean + 1000.0 * sigma, sigma, 6.0, 80);
        prop_assert!(a.ks_distance(&b) > 0.99);
    }

    #[test]
    fn ks_distance_small_between_gaussian_discretizations(g in arb_gaussian()) {
        // The same distribution at a finer discretization stays close in
        // KS distance — one cell's worth of CDF shift.
        let fine = g.with_quality(g.len() * 2).unwrap();
        let step_mass = 1.5 / g.len() as f64;
        prop_assert!(g.ks_distance(&fine) <= step_mass, "ks {}", g.ks_distance(&fine));
    }
}
