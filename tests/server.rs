//! End-to-end tests of the analysis daemon: a real `TcpListener` bound
//! to an ephemeral port, driven through the blocking client (and, for
//! the protocol corpus, a raw socket).
//!
//! The central claim is the serving-mode determinism contract: a report
//! served over the wire — fresh, from the result store, or at a
//! different thread count — is **bit-for-bit identical** to the same
//! analysis run in one shot.

use statim::core::engine::{SstaConfig, SstaEngine};
use statim::core::report::deterministic_report;
use statim::core::service::ServiceConfig;
use statim::core::store::ResultLog;
use statim::core::ErrorClass;
use statim::netlist::generators::iscas85::{self, Benchmark};
use statim::netlist::{Placement, PlacementStyle};
use statim::server::{daemon, Client, ClientError, DaemonHandle, ErrorCode, Request, GREETING};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Keep the tests quick: coarse kernels, same on both sides of every
/// comparison.
const QUALITY: &[(&str, &str)] = &[("quality-intra", "40"), ("quality-inter", "20")];

const WAIT: Duration = Duration::from_secs(120);

fn spawn_daemon(config: ServiceConfig) -> DaemonHandle {
    daemon::spawn("127.0.0.1:0", config).expect("bind ephemeral port")
}

/// A fresh store directory under the system temp dir (removed first, so
/// a crashed previous run cannot leak state into this one).
fn tmp_store(name: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("statim-server-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

/// Polls `open_connections` until it reaches `want` — registry pruning
/// happens on the owning worker's next tick, not synchronously with the
/// socket close, so the observation needs a bounded grace window.
fn wait_for_open_connections(handle: &DaemonHandle, want: usize) -> usize {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let open = handle.open_connections();
        if open == want || Instant::now() >= deadline {
            return open;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn connect(handle: &DaemonHandle) -> Client {
    Client::connect(&handle.addr().to_string()).expect("connect")
}

fn opts(extra: &[(&str, &str)]) -> Vec<(String, String)> {
    QUALITY
        .iter()
        .chain(extra)
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

/// The one-shot reference: the same engine run the daemon performs,
/// rendered through the same deterministic report.
fn batch_report(bench: Benchmark, top: usize) -> String {
    let circuit = iscas85::generate(bench);
    let placement = Placement::generate(&circuit, PlacementStyle::Levelized);
    let mut config = SstaConfig::date05();
    config.quality_intra = 40;
    config.quality_inter = 20;
    let report = SstaEngine::new(config)
        .run(&circuit, &placement)
        .expect("batch run");
    deterministic_report(&report, top)
}

#[test]
fn served_reports_are_bit_identical_to_batch() {
    let handle = spawn_daemon(ServiceConfig::default());
    let mut client = connect(&handle);

    for (bench, source) in [(Benchmark::C432, "@c432"), (Benchmark::C499, "@c499")] {
        let (id, from_store) = client.submit(source, &opts(&[])).expect("submit");
        assert!(
            !from_store,
            "{source}: first submission cannot hit the store"
        );
        let state = client.wait(id, WAIT).expect("wait");
        assert_eq!(state, "done", "{source}");
        let served = client.result(id, Some(5)).expect("result");
        assert_eq!(
            served,
            batch_report(bench, 5),
            "{source}: served report differs from the one-shot run"
        );
    }

    client.shutdown().expect("shutdown");
    handle.join();
}

/// The one-shot sequential reference: the same run the daemon's
/// executor performs for a register netlist, rendered through the same
/// deterministic report.
fn batch_sequential_report(name: &str, top: usize) -> String {
    use statim::core::report::deterministic_sequential_report;
    use statim::core::{SequentialConfig, SequentialEngine};
    let circuit = statim::netlist::generators::sequential::from_name(name).expect("generator");
    let placement = Placement::generate(&circuit, PlacementStyle::Levelized);
    let mut ssta = SstaConfig::date05();
    ssta.quality_intra = 40;
    ssta.quality_inter = 20;
    let config = SequentialConfig {
        ssta,
        ..SequentialConfig::date05()
    };
    let report = SequentialEngine::new(config)
        .run(&circuit, &placement)
        .expect("batch sequential run");
    deterministic_sequential_report(&report, top)
}

#[test]
fn sequential_submission_serves_the_setup_hold_report() {
    let handle = spawn_daemon(ServiceConfig::default());
    let mut client = connect(&handle);

    // A register netlist goes through SUBMIT unchanged: the executor
    // routes it to the sequential flow, and RESULT serves the
    // setup/hold check report byte-identical to a one-shot run.
    let (id, from_store) = client.submit("@s27", &opts(&[])).expect("submit");
    assert!(!from_store, "first sequential submission cannot hit");
    assert_eq!(client.wait(id, WAIT).expect("wait"), "done");
    let served = client.result(id, Some(10)).expect("result");
    assert_eq!(served, batch_sequential_report("s27", 10));
    assert!(served.contains("timing checks"), "report:\n{served}");
    assert!(served.contains("setup"), "report:\n{served}");
    assert!(served.contains("hold"), "report:\n{served}");

    // An identical resubmission is answered from the result store with
    // the identical bytes — sequential results are fingerprinted and
    // cached like combinational ones.
    let (second, from_store) = client.submit("@s27", &opts(&[])).expect("resubmit");
    assert!(from_store, "sequential resubmission must hit the store");
    assert_eq!(client.result(second, None).expect("stored"), served);

    client.shutdown().expect("shutdown");
    handle.join();
}

#[test]
fn duplicate_submission_is_served_from_the_result_store() {
    let handle = spawn_daemon(ServiceConfig::default());
    let mut client = connect(&handle);

    let (first, _) = client.submit("@c432", &opts(&[])).expect("submit");
    client.wait(first, WAIT).expect("wait");
    let fresh = client.result(first, None).expect("result");

    // Identical submission: answered from the store, no second run.
    let (second, from_store) = client.submit("@c432", &opts(&[])).expect("resubmit");
    assert!(
        from_store,
        "identical resubmission must hit the result store"
    );
    assert_ne!(first, second, "store hits still get their own job id");
    let stored = client.result(second, None).expect("stored result");
    assert_eq!(stored, fresh, "store must serve the identical bytes");

    // Wall-time-only knobs (threads here) are excluded from the job
    // fingerprint: a resubmission that only changes them hits too, and
    // the bytes still match — the thread-count determinism contract.
    let (third, from_store) = client
        .submit("@c432", &opts(&[("threads", "2")]))
        .expect("resubmit threads=2");
    assert!(from_store, "thread count must not defeat the result store");
    assert_eq!(client.result(third, None).expect("result"), fresh);

    // A semantically different run (other confidence) must NOT hit.
    let (fourth, from_store) = client
        .submit("@c432", &opts(&[("confidence", "0.2")]))
        .expect("submit confidence=0.2");
    assert!(!from_store, "different settings must miss the result store");
    client.wait(fourth, WAIT).expect("wait");

    let stats = client.stats().expect("stats");
    assert!(stats.contains("store-hits: 2"), "stats:\n{stats}");

    client.shutdown().expect("shutdown");
    handle.join();
}

#[test]
fn backend_option_selects_kernel_and_keys_the_store() {
    let handle = spawn_daemon(ServiceConfig::default());
    let mut client = connect(&handle);

    // backend=grid is the default spelled out: same fingerprint, store hit.
    let (grid, _) = client.submit("@c432", &opts(&[])).expect("submit");
    client.wait(grid, WAIT).expect("wait");
    let grid_bytes = client.result(grid, None).expect("result");
    let (explicit, from_store) = client
        .submit("@c432", &opts(&[("backend", "grid")]))
        .expect("submit backend=grid");
    assert!(from_store, "backend=grid must fingerprint like the default");
    assert_eq!(client.result(explicit, None).expect("result"), grid_bytes);

    // backend=fft is a different kernel: distinct fingerprint, own run.
    let (fft, from_store) = client
        .submit("@c432", &opts(&[("backend", "fft")]))
        .expect("submit backend=fft");
    assert!(!from_store, "fft must not reuse grid results");
    client.wait(fft, WAIT).expect("wait");

    // Junk gets a typed CONFIG error, and the connection survives.
    let err = client
        .submit("@c432", &opts(&[("backend", "warp")]))
        .expect_err("unknown backend");
    match err {
        ClientError::Server { code, message } => {
            assert_eq!(code, ErrorCode::Config);
            assert!(message.contains("warp"), "{message}");
        }
        other => panic!("{other:?}"),
    }
    let stats = client.stats().expect("stats after rejected submit");
    assert!(stats.contains("store-hits: 1"), "stats:\n{stats}");

    client.shutdown().expect("shutdown");
    handle.join();
}

#[test]
fn daemon_default_backend_applies_to_bare_submissions() {
    let config = ServiceConfig {
        default_backend: statim::stats::ConvolveBackend::Fft,
        ..ServiceConfig::default()
    };
    let handle = spawn_daemon(config);
    let mut client = connect(&handle);

    // A bare submit runs under the daemon default (fft)…
    let (bare, _) = client.submit("@c432", &opts(&[])).expect("submit");
    client.wait(bare, WAIT).expect("wait");
    // …so an explicit backend=fft resubmission is the same job.
    let (explicit, from_store) = client
        .submit("@c432", &opts(&[("backend", "fft")]))
        .expect("submit backend=fft");
    assert!(
        from_store,
        "daemon default must land in the job fingerprint"
    );
    assert_eq!(
        client.result(explicit, None).expect("result"),
        client.result(bare, None).expect("result")
    );
    // …and backend=grid is a different job.
    let (grid, from_store) = client
        .submit("@c432", &opts(&[("backend", "grid")]))
        .expect("submit backend=grid");
    assert!(!from_store, "grid must not reuse the fft default's result");
    client.wait(grid, WAIT).expect("wait");

    client.shutdown().expect("shutdown");
    handle.join();
}

#[test]
fn edit_verb_reanalyzes_the_edited_circuit_bit_identically() {
    let handle = spawn_daemon(ServiceConfig::default());
    let mut client = connect(&handle);

    let (base, _) = client.submit("@c432", &opts(&[])).expect("submit");
    assert_eq!(client.wait(base, WAIT).expect("wait"), "done");

    // EDIT derives a new job from the base spec; its served report must
    // be bit-identical to a one-shot run of the *edited* circuit under
    // the base job's placement and options.
    let script = "resize:g113:0.5;retime:g115:2e-12";
    let (edited, from_store) = client.edit(base, script).expect("edit");
    assert!(!from_store, "first edited run cannot hit the store");
    assert_ne!(base, edited, "EDIT must mint a new job");
    assert_eq!(client.wait(edited, WAIT).expect("wait edited"), "done");
    let served = client.result(edited, Some(5)).expect("result");

    let circuit = iscas85::generate(Benchmark::C432);
    let placement = Placement::generate(&circuit, PlacementStyle::Levelized);
    let mut reference = circuit.clone();
    let eco = statim::core::EcoScript::parse_compact(script).expect("script");
    statim::core::apply_edits(&mut reference, &eco).expect("apply");
    let mut config = SstaConfig::date05();
    config.quality_intra = 40;
    config.quality_inter = 20;
    let report = SstaEngine::new(config)
        .run(&reference, &placement)
        .expect("reference run");
    assert_eq!(
        served,
        deterministic_report(&report, 5),
        "served EDIT report differs from the one-shot edited run"
    );

    // Repeating the same edit fingerprints identically: a store hit —
    // and specs are retained even for store-served jobs, so the hit
    // itself can be edited again.
    let (again, from_store) = client.edit(base, script).expect("re-edit");
    assert!(from_store, "identical edit must hit the result store");
    assert_eq!(
        client.result(again, None).expect("stored result"),
        client.result(edited, None).expect("full result"),
        "store must serve the identical edited bytes"
    );
    let (chained, _) = client
        .edit(again, "retime:g115:0")
        .expect("edit a store-served job");
    assert_eq!(client.wait(chained, WAIT).expect("wait chained"), "done");

    // Script errors come back typed, with the 1-based edit position.
    match client.edit(base, "resize:nosuch:2.0") {
        Err(ClientError::Server { code, message }) => {
            assert_eq!(code, ErrorCode::Config, "{message}");
            assert!(message.contains("nosuch"), "{message}");
        }
        other => panic!("expected CONFIG error, got {other:?}"),
    }
    match client.edit(base, "resize:g113") {
        Err(ClientError::Server { code, message }) => {
            assert_eq!(code, ErrorCode::Parse, "{message}");
            assert!(message.contains("line 1"), "{message}");
        }
        other => panic!("expected PARSE error, got {other:?}"),
    }

    client.shutdown().expect("shutdown");
    handle.join();
}

#[test]
fn edit_verb_is_gated_on_the_negotiated_minor() {
    let handle = spawn_daemon(ServiceConfig::default());

    // A v1.0 connection has EDIT refused with a pointer at the minor.
    let stream = TcpStream::connect(handle.addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    let mut read_line = move || {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read");
        line.trim_end().to_string()
    };
    assert_eq!(read_line(), GREETING);
    writeln!(writer, "HELLO 1").expect("write");
    assert_eq!(read_line(), "OK HELLO 1");
    writeln!(writer, "EDIT job-0 resize:g1:2.0").expect("write");
    let reply = read_line();
    assert!(
        reply.starts_with("ERR PROTOCOL") && reply.contains("1.1"),
        "v1.0 EDIT must be refused naming the needed minor, got `{reply}`"
    );
    // The refusal does not kill the connection.
    writeln!(writer, "STATUS job-0").expect("write");
    assert!(read_line().starts_with("ERR NOTFOUND"));
    writeln!(writer, "SHUTDOWN").expect("write");
    assert_eq!(read_line(), "OK SHUTDOWN draining");

    // On a 1.1 connection an unknown base job is NOTFOUND, not a gate.
    handle.join();
    let handle = spawn_daemon(ServiceConfig::default());
    let mut client = connect(&handle);
    assert_eq!(client.minor(), 1);
    match client.edit("job-99".parse().expect("id"), "resize:g1:2.0") {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::NotFound),
        other => panic!("expected NOTFOUND, got {other:?}"),
    }
    client.shutdown().expect("shutdown");
    handle.join();
}

#[test]
fn full_queue_rejects_with_busy() {
    // A zero-capacity queue turns admission control all the way up:
    // every submission bounces with BUSY and the daemon stays healthy.
    let config = ServiceConfig {
        max_queue: 0,
        ..ServiceConfig::default()
    };
    let handle = spawn_daemon(config);
    let mut client = connect(&handle);

    match client.submit("@c432", &opts(&[])) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::Busy),
        other => panic!("expected BUSY, got {other:?}"),
    }
    // The connection survives the rejection.
    let stats = client.stats().expect("stats after BUSY");
    assert!(stats.contains("rejected: 1"), "stats:\n{stats}");

    client.shutdown().expect("shutdown");
    handle.join();
}

#[test]
fn cancel_mid_run_leaves_the_daemon_serving() {
    let handle = spawn_daemon(ServiceConfig::default());
    let mut client = connect(&handle);

    // A heavy job (wide window on the larger c1355) so the cancel has a
    // running target; if it is still queued the cancel is just
    // immediate instead, and the assertions below hold either way.
    let heavy = opts(&[("confidence", "0.3")]);
    let (id, _) = client.submit("@c1355", &heavy).expect("submit heavy");
    client.cancel(id).expect("cancel");
    let state = client.wait(id, WAIT).expect("wait");
    assert_eq!(state, "cancelled");

    // Cancelled jobs never reach the result store, and asking for
    // their result surfaces the recorded cancellation (a Resource-class
    // failure), not a hang.
    match client.result(id, None) {
        Err(ClientError::Server { code, message }) => {
            assert_eq!(code, ErrorCode::Resource, "{message}");
            assert!(message.contains("cancelled"), "{message}");
        }
        other => panic!("expected RESOURCE error, got {other:?}"),
    }

    // The daemon keeps serving clean work afterwards.
    let (next, _) = client
        .submit("@c432", &opts(&[]))
        .expect("submit after cancel");
    assert_eq!(client.wait(next, WAIT).expect("wait"), "done");

    client.shutdown().expect("shutdown");
    handle.join();
}

#[cfg(feature = "fault-injection")]
#[test]
fn panicking_job_leaves_the_daemon_serving() {
    let handle = spawn_daemon(ServiceConfig::default());
    let mut client = connect(&handle);

    // Inject a panic into path 0 with no retries: the supervised run
    // degrades that path and the job lands `degraded`, while the daemon
    // itself never notices.
    let (id, _) = client
        .submit(
            "@c432",
            &opts(&[("fault-plan", "panic-path@0"), ("retries", "0")]),
        )
        .expect("submit faulted");
    let state = client.wait(id, WAIT).expect("wait");
    assert_eq!(
        state, "degraded",
        "panicking path must only degrade its job"
    );

    // Degraded results are poll-able but never cached: resubmitting the
    // clean variant runs fresh and comes back bit-identical to batch.
    let (clean, from_store) = client.submit("@c432", &opts(&[])).expect("submit clean");
    assert!(!from_store, "degraded run must not seed the result store");
    assert_eq!(client.wait(clean, WAIT).expect("wait"), "done");
    assert_eq!(
        client.result(clean, Some(5)).expect("result"),
        batch_report(Benchmark::C432, 5)
    );

    client.shutdown().expect("shutdown");
    handle.join();
}

#[test]
fn shutdown_drains_queued_work_and_closes() {
    let handle = spawn_daemon(ServiceConfig::default());
    let mut client = connect(&handle);

    let (id, _) = client.submit("@c432", &opts(&[])).expect("submit");
    client.shutdown().expect("shutdown");

    // Draining: new submissions bounce with a typed SHUTDOWN error.
    match client.submit("@c499", &opts(&[])) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::Shutdown),
        other => panic!("expected SHUTDOWN error, got {other:?}"),
    }

    // The queued job stays pollable while the drain lasts; once it
    // completes the daemon force-closes lingering connections and
    // exits, so the poll ends in `done` or in a clean close — never in
    // a dropped job or a hang. (`AnalysisService` unit tests pin down
    // that draining always finishes queued work.)
    match client.wait(id, WAIT) {
        Ok(state) => assert_eq!(state, "done"),
        Err(ClientError::Protocol(m)) => assert!(m.contains("closed"), "{m}"),
        Err(ClientError::Io(_)) => {}
        Err(other) => panic!("unexpected wait failure: {other}"),
    }
    handle.join();
}

// ---------------------------------------------------------------------
// Connection lifecycle: the registry is bounded under churn, WAIT is
// gated on the negotiated minor, pipelined batches reply in order.
// ---------------------------------------------------------------------

#[test]
fn connection_churn_leaves_the_registry_empty() {
    let handle = spawn_daemon(ServiceConfig::default());

    // Raw connect/disconnect cycles, including sockets dropped before
    // the daemon even greets them and half-written request lines.
    for i in 0..48 {
        let mut stream = TcpStream::connect(handle.addr()).expect("connect");
        if i % 3 == 1 {
            let _ = stream.write_all(b"HELLO");
        }
        drop(stream);
    }
    // Full handshakes dropped without SHUTDOWN leak just as easily.
    for _ in 0..8 {
        drop(connect(&handle));
    }

    assert_eq!(
        wait_for_open_connections(&handle, 0),
        0,
        "closed connections must be pruned from the registry"
    );

    // The daemon is still healthy after the churn.
    let mut client = connect(&handle);
    let (id, _) = client.submit("@c432", &opts(&[])).expect("submit");
    assert_eq!(client.wait(id, WAIT).expect("wait"), "done");
    client.shutdown().expect("shutdown");
    handle.join();
}

#[test]
fn wait_verb_is_gated_on_the_negotiated_minor() {
    let handle = spawn_daemon(ServiceConfig::default());

    let raw = |hello: &str| {
        let stream = TcpStream::connect(handle.addr()).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut writer = stream;
        let mut read_line = move || {
            let mut line = String::new();
            reader.read_line(&mut line).expect("read");
            line.trim_end().to_string()
        };
        assert_eq!(read_line(), GREETING);
        writeln!(writer, "{hello}").expect("write");
        (writer, read_line)
    };

    // A v1.0 connection has WAIT refused with a pointer at the minor…
    let (mut writer, mut read_line) = raw("HELLO 1");
    assert_eq!(read_line(), "OK HELLO 1");
    writeln!(writer, "WAIT job-0").expect("write");
    let reply = read_line();
    assert!(
        reply.starts_with("ERR PROTOCOL") && reply.contains("1.1"),
        "v1.0 WAIT must be refused naming the needed minor, got `{reply}`"
    );
    // …and the refusal does not kill the connection.
    writeln!(writer, "STATUS job-0").expect("write");
    assert!(read_line().starts_with("ERR NOTFOUND"));

    // A negotiated 1.1 connection gets the verb (NOTFOUND, not a gate).
    let (mut writer, mut read_line) = raw("HELLO 1.1");
    assert_eq!(read_line(), "OK HELLO 1.1");
    writeln!(writer, "WAIT job-99").expect("write");
    assert!(read_line().starts_with("ERR NOTFOUND"));

    // The library client negotiates 1.1 against this daemon.
    let mut client = connect(&handle);
    assert_eq!(client.minor(), 1);
    client.shutdown().expect("shutdown");
    handle.join();
}

#[test]
fn wait_timeouts_are_typed_and_huge_timeouts_do_not_panic() {
    let handle = spawn_daemon(ServiceConfig::default());
    let mut client = connect(&handle);

    // A heavy job so the short wait below reliably expires first.
    let heavy = opts(&[("confidence", "0.3")]);
    let (slow, _) = client.submit("@c1355", &heavy).expect("submit heavy");
    match client.wait(slow, Duration::from_millis(50)) {
        Err(ClientError::Timeout { id, last_state }) => {
            assert_eq!(id, slow);
            assert!(
                matches!(last_state.as_str(), "queued" | "running"),
                "live job, got state `{last_state}`"
            );
        }
        other => panic!("expected a typed timeout, got {other:?}"),
    }
    // A zero timeout expires immediately but stays typed.
    match client.wait(slow, Duration::ZERO) {
        Err(ClientError::Timeout { .. }) => {}
        other => panic!("expected a typed timeout, got {other:?}"),
    }
    client.cancel(slow).expect("cancel");
    client.wait(slow, WAIT).expect("wait cancelled");

    // The `--wait` CLI path passes an astronomically large timeout; it
    // must saturate to "wait forever", not panic in `Instant` math.
    let (quick, _) = client.submit("@c432", &opts(&[])).expect("submit");
    let state = client
        .wait(quick, Duration::from_secs(u64::MAX / 4))
        .expect("huge timeout waits");
    assert_eq!(state, "done");

    client.shutdown().expect("shutdown");
    handle.join();
}

#[test]
fn pipelined_batch_replies_arrive_in_submission_order() {
    let handle = spawn_daemon(ServiceConfig::default());
    let mut client = connect(&handle);

    // One write burst: two good jobs around a bad one. The bad job's
    // CONFIG error must land in its own slot without shifting the rest.
    let jobs: Vec<(String, Vec<(String, String)>)> = vec![
        ("@c432".to_string(), opts(&[])),
        ("@c432".to_string(), opts(&[("backend", "warp")])),
        ("@c499".to_string(), opts(&[])),
    ];
    let receipts = client.submit_batch(&jobs).expect("batch");
    assert_eq!(receipts.len(), 3);
    let (first, _) = *receipts[0].as_ref().expect("first job queued");
    match &receipts[1] {
        Err(ClientError::Server { code, message }) => {
            assert_eq!(*code, ErrorCode::Config);
            assert!(message.contains("warp"), "{message}");
        }
        other => panic!("expected CONFIG error in slot 1, got {other:?}"),
    }
    let (third, _) = *receipts[2].as_ref().expect("third job queued");
    assert_ne!(first, third);

    // Byte-identity to the per-benchmark batch run proves the replies
    // were not swapped: c432 and c499 reports differ.
    client.wait(first, WAIT).expect("wait first");
    client.wait(third, WAIT).expect("wait third");
    assert_eq!(
        client.result(first, Some(5)).expect("result first"),
        batch_report(Benchmark::C432, 5)
    );
    assert_eq!(
        client.result(third, Some(5)).expect("result third"),
        batch_report(Benchmark::C499, 5)
    );

    client.shutdown().expect("shutdown");
    handle.join();
}

// ---------------------------------------------------------------------
// Persistence: a restarted daemon serves prior results byte-identically,
// surviving concurrent connection churn and a SIGTERM-style stop; a
// corrupt store log is a typed Parse error, never a wrong report.
// ---------------------------------------------------------------------

#[test]
fn restarted_daemon_serves_stored_results_bit_identically() {
    let dir = tmp_store("restart");
    let config = || ServiceConfig {
        store_dir: Some(dir.clone()),
        ..ServiceConfig::default()
    };

    let handle = spawn_daemon(config());
    let mut client = connect(&handle);
    let (id, from_store) = client.submit("@c432", &opts(&[])).expect("submit");
    assert!(!from_store, "empty store cannot hit");
    assert_eq!(client.wait(id, WAIT).expect("wait"), "done");
    let before = client.result(id, Some(5)).expect("result");
    client.shutdown().expect("shutdown");
    handle.join();

    // A brand-new daemon over the same directory: the resubmission is
    // answered from disk, byte-identical to the pre-restart serving and
    // to the one-shot run.
    let handle = spawn_daemon(config());
    let mut client = connect(&handle);
    let (id, from_store) = client.submit("@c432", &opts(&[])).expect("resubmit");
    assert!(from_store, "restart must replay the persistent store");
    let after = client.result(id, Some(5)).expect("stored result");
    assert_eq!(after, before, "restart changed the served bytes");
    assert_eq!(after, batch_report(Benchmark::C432, 5));

    client.shutdown().expect("shutdown");
    handle.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn soak_churn_with_kill_and_restart_preserves_results() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let dir = tmp_store("soak");
    let config = || ServiceConfig {
        store_dir: Some(dir.clone()),
        ..ServiceConfig::default()
    };
    let handle = spawn_daemon(config());

    // Background churn: three threads hammering connect/disconnect —
    // some raw drops, some full handshakes — while real work runs.
    let stop = Arc::new(AtomicBool::new(false));
    let addr = handle.addr();
    let churners: Vec<_> = (0..3)
        .map(|t| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut cycles = 0u32;
                while !stop.load(Ordering::Relaxed) && cycles < 200 {
                    if let Ok(mut s) = TcpStream::connect(addr) {
                        if (cycles + t).is_multiple_of(2) {
                            let _ = s.write_all(b"HELLO 1\n");
                        }
                        drop(s);
                    }
                    cycles += 1;
                    std::thread::sleep(Duration::from_millis(1));
                }
            })
        })
        .collect();

    let mut client = connect(&handle);
    let mut before = Vec::new();
    for source in ["@c432", "@c499"] {
        let (id, _) = client.submit(source, &opts(&[])).expect("submit");
        assert_eq!(client.wait(id, WAIT).expect("wait"), "done", "{source}");
        before.push(client.result(id, Some(5)).expect("result"));
    }

    stop.store(true, Ordering::Relaxed);
    for t in churners {
        t.join().expect("churn thread");
    }
    // Only the live client may remain registered once churn settles.
    assert_eq!(
        wait_for_open_connections(&handle, 1),
        1,
        "churned connections must not accumulate"
    );

    // SIGTERM-style stop: no client SHUTDOWN, just the process hook.
    drop(client);
    handle.shutdown();
    handle.join();

    // The restarted daemon serves both results from disk, byte-identical.
    let handle = spawn_daemon(config());
    let mut client = connect(&handle);
    for (source, want) in ["@c432", "@c499"].iter().zip(&before) {
        let (id, from_store) = client.submit(source, &opts(&[])).expect("resubmit");
        assert!(from_store, "{source}: must be served from the store");
        assert_eq!(
            &client.result(id, Some(5)).expect("stored result"),
            want,
            "{source}: restart changed the served bytes"
        );
    }
    client.shutdown().expect("shutdown");
    handle.join();
    let _ = std::fs::remove_dir_all(&dir);
}

fn store_corpus() -> Vec<PathBuf> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus/store");
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("store corpus dir")
        .map(|e| e.expect("corpus entry").path())
        .collect();
    files.sort();
    assert!(files.len() >= 5, "store corpus unexpectedly small");
    files
}

/// Hard failures: the header itself is wrong, so no byte of the log
/// can be trusted and recovery never applies.
const CORPUS_HARD: &[&str] = &["bad_magic.log", "bad_version.log"];
/// Recoverable tails: a clean header with damage confined to the
/// unsnapshotted tail — open() truncates back to the last
/// checksum-valid boundary instead of failing.
const CORPUS_RECOVERABLE: &[&str] = &[
    "bad_checksum.log",
    "bad_float.log",
    "not_a_record.log",
    "torn_tail.log",
    "truncated_record.log",
];
/// Valid logs that merely exercise replay rules (duplicate fingerprints
/// keep the latest record).
const CORPUS_CLEAN: &[&str] = &["duplicate_fp.log"];

/// Copies a corpus log into a fresh store dir, optionally with an index
/// snapshot acknowledging the full byte length (which makes any tail
/// damage "below the snapshot" and therefore unrecoverable).
fn stage_corpus(file: &Path, label: &str, with_idx: bool) -> PathBuf {
    let dir = tmp_store(&format!("corpus-{label}"));
    std::fs::create_dir_all(&dir).expect("store dir");
    std::fs::copy(file, dir.join("results.log")).expect("copy corpus log");
    if with_idx {
        let len = std::fs::metadata(file).expect("corpus metadata").len();
        std::fs::write(
            dir.join("results.idx"),
            format!("statim-store-idx v1\nlog_len {len}\nrecords 0\n"),
        )
        .expect("write idx");
    }
    dir
}

#[test]
fn corrupt_store_logs_split_into_hard_and_recoverable_sets() {
    for file in store_corpus() {
        let name = file
            .file_name()
            .expect("name")
            .to_string_lossy()
            .to_string();
        let label = name.replace('.', "-");
        if CORPUS_HARD.contains(&name.as_str()) {
            let dir = stage_corpus(&file, &label, false);
            let err = ResultLog::open(&dir).expect_err(&name);
            assert_eq!(err.class, ErrorClass::Parse, "{name}: {err}");
            assert!(err.line.is_some(), "{name}: wants the offending line");
            let _ = std::fs::remove_dir_all(&dir);
        } else if CORPUS_RECOVERABLE.contains(&name.as_str()) {
            // Without a snapshot the damage is all tail: open truncates
            // back to the last checksum-valid boundary and serves what
            // survived.
            let dir = stage_corpus(&file, &label, false);
            let (log, records) = ResultLog::open(&dir).expect(&name);
            assert!(log.recovered_bytes() > 0, "{name}: recovery must report");
            assert_eq!(records.len(), log.len(), "{name}");
            // The same bytes under a full-length snapshot are
            // acknowledged data: recovery is forbidden and open fails
            // with the typed Parse error.
            let _ = std::fs::remove_dir_all(&dir);
            let dir = stage_corpus(&file, &format!("{label}-idx"), true);
            let err = ResultLog::open(&dir).expect_err(&name);
            assert_eq!(err.class, ErrorClass::Parse, "{name}: {err}");
            assert!(err.line.is_some(), "{name}: wants the offending line");
            let _ = std::fs::remove_dir_all(&dir);
        } else if CORPUS_CLEAN.contains(&name.as_str()) {
            let dir = stage_corpus(&file, &label, false);
            let (log, records) = ResultLog::open(&dir).expect(&name);
            assert_eq!(log.recovered_bytes(), 0, "{name}: nothing to recover");
            // Replay yields both raw records; the fingerprint set (and
            // any map built in replay order) collapses to one entry.
            assert_eq!(records.len(), 2, "{name}");
            assert_eq!(log.len(), 1, "{name}: duplicate fp is one entry");
            let _ = std::fs::remove_dir_all(&dir);
        } else {
            panic!("unclassified corpus entry {name}: add it to a set");
        }
    }
}

#[test]
fn duplicate_fingerprint_replay_keeps_the_latest_record() {
    let file = store_corpus()
        .into_iter()
        .find(|f| f.file_name().is_some_and(|n| n == "duplicate_fp.log"))
        .expect("duplicate_fp.log in corpus");
    let dir = stage_corpus(&file, "dup-latest", false);
    let (_, records) = ResultLog::open(&dir).expect("open");
    assert!(records.iter().all(|(fp, _)| *fp == 5));
    // Records replay in file order, so a latest-wins map keeps the
    // second one — which changes det_critical_delay to 2.0e-9.
    let (_, latest) = records.last().expect("records");
    assert_eq!(latest.det_critical_delay, 2.0e-9);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn daemon_refuses_to_start_over_a_corrupt_store() {
    // The same corruption through the front door: `spawn` with a store
    // whose snapshot acknowledges bytes that no longer parse is a typed
    // startup failure, not a daemon that silently serves wrong bytes.
    let file = store_corpus()
        .into_iter()
        .find(|f| f.file_name().is_some_and(|n| n == "bad_checksum.log"))
        .expect("bad_checksum.log in corpus");
    let dir = stage_corpus(&file, "corrupt-spawn", true);
    let err = match daemon::spawn(
        "127.0.0.1:0",
        ServiceConfig {
            store_dir: Some(dir.clone()),
            ..ServiceConfig::default()
        },
    ) {
        Err(err) => err,
        Ok(_) => panic!("spawn over a corrupt store must fail"),
    };
    assert_eq!(err.class, ErrorClass::Parse, "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn daemon_recovers_a_torn_store_tail_and_serves() {
    // A torn trailing record — the crash-mid-append shape — must not
    // keep the daemon down: open truncates the tail and serving resumes
    // with the surviving records intact.
    let file = store_corpus()
        .into_iter()
        .find(|f| f.file_name().is_some_and(|n| n == "torn_tail.log"))
        .expect("torn_tail.log in corpus");
    let dir = stage_corpus(&file, "torn-spawn", false);
    let handle = daemon::spawn(
        "127.0.0.1:0",
        ServiceConfig {
            store_dir: Some(dir.clone()),
            ..ServiceConfig::default()
        },
    )
    .expect("spawn over a torn store tail");
    let mut client = connect(&handle);
    let stats = client.stats().expect("stats");
    assert!(stats.contains("store-entries: 1"), "{stats}");
    client.shutdown().expect("shutdown");
    handle.join();
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Protocol corpus: every malformed request line is a typed PROTOCOL
// error — parse-level and against a live daemon — and never kills the
// connection.
// ---------------------------------------------------------------------

fn protocol_corpus() -> Vec<String> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus/protocol");
    let mut lines = Vec::new();
    for entry in std::fs::read_dir(&path).expect("corpus dir") {
        let file = entry.expect("corpus entry").path();
        let text = std::fs::read_to_string(&file).expect("corpus file");
        lines.extend(text.lines().filter(|l| !l.is_empty()).map(str::to_string));
    }
    assert!(lines.len() >= 20, "corpus unexpectedly small");
    lines
}

#[test]
fn corpus_lines_fail_request_parse() {
    for line in protocol_corpus() {
        assert!(
            Request::parse(&line).is_err(),
            "`{line}` must not parse as a request"
        );
    }
}

#[test]
fn corpus_lines_get_err_replies_and_the_connection_survives() {
    let handle = spawn_daemon(ServiceConfig::default());

    // Raw socket: greeting, handshake, then the whole corpus.
    let stream = TcpStream::connect(handle.addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    let mut read_line = move || {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read");
        line.trim_end().to_string()
    };

    assert_eq!(read_line(), GREETING);

    // Requests before the handshake are themselves protocol errors.
    writeln!(writer, "STATS").expect("write");
    assert!(read_line().starts_with("ERR PROTOCOL"), "handshake gate");
    writeln!(writer, "HELLO 99").expect("write");
    assert!(read_line().starts_with("ERR PROTOCOL"), "version gate");
    writeln!(writer, "HELLO 1").expect("write");
    assert_eq!(read_line(), "OK HELLO 1");

    for line in protocol_corpus() {
        writeln!(writer, "{line}").expect("write");
        let reply = read_line();
        assert!(
            reply.starts_with("ERR PROTOCOL"),
            "`{line}` must get ERR PROTOCOL, got `{reply}`"
        );
    }

    // After all that abuse the connection still works.
    writeln!(writer, "STATS").expect("write");
    let header = read_line();
    let n: usize = header
        .strip_prefix("OK STATS ")
        .expect("stats header")
        .parse()
        .expect("stats count");
    for _ in 0..n {
        read_line();
    }
    writeln!(writer, "SHUTDOWN").expect("write");
    assert_eq!(read_line(), "OK SHUTDOWN draining");
    handle.join();
}

// ---------------------------------------------------------------------
// Overload defenses: fragmentation tolerance, per-client admission,
// queue deadlines, slowloris reaping, connection shedding — the
// serving-mode robustness contract.
// ---------------------------------------------------------------------

/// Opens a raw socket, returning (writer, line reader) past the
/// greeting.
fn raw_conn(handle: &DaemonHandle) -> (TcpStream, impl FnMut() -> String) {
    let stream = TcpStream::connect(handle.addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut read_line = move || {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read");
        line.trim_end().to_string()
    };
    assert_eq!(read_line(), GREETING);
    (stream, read_line)
}

#[test]
fn pipelined_submit_batch_survives_any_byte_split() {
    // A store-backed daemon so repeat submissions are instant hits —
    // the test's subject is framing, not analysis throughput.
    let dir = tmp_store("frag");
    let handle = spawn_daemon(ServiceConfig {
        store_dir: Some(dir.clone()),
        ..ServiceConfig::default()
    });
    {
        let mut client = connect(&handle);
        let (id, _) = client.submit("@c432", &opts(&[])).expect("warm submit");
        client.wait(id, WAIT).expect("warm wait");
    }

    // One pipelined burst: handshake plus two submits. Splitting it at
    // every byte boundary must never change the replies — the daemon
    // reassembles lines from arbitrary TCP fragmentation.
    let session = "HELLO 1.1 client=frag\n\
                   SUBMIT @c432 quality-intra=40 quality-inter=20\n\
                   SUBMIT @c432 quality-intra=40 quality-inter=20\n";
    let bytes = session.as_bytes();
    for cut in 1..bytes.len() {
        let (mut writer, mut read_line) = raw_conn(&handle);
        writer.set_nodelay(true).expect("nodelay");
        writer.write_all(&bytes[..cut]).expect("first half");
        writer.flush().expect("flush");
        std::thread::sleep(Duration::from_millis(1));
        writer.write_all(&bytes[cut..]).expect("second half");
        writer.flush().expect("flush");
        assert_eq!(read_line(), "OK HELLO 1.1", "cut at byte {cut}");
        for slot in 0..2 {
            let reply = read_line();
            assert!(
                reply.starts_with("OK SUBMIT job-") && reply.ends_with(" stored"),
                "cut at byte {cut}, slot {slot}: `{reply}`"
            );
        }
    }

    let mut client = connect(&handle);
    client.shutdown().expect("shutdown");
    handle.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn throttled_submits_are_typed_and_deterministic_across_thread_counts() {
    // The same pipelined script must shed the same submissions whether
    // one worker or four poll the connections: admission decisions key
    // on arrival order, never on scheduling.
    let mut outcomes = Vec::new();
    for workers in [1usize, 4] {
        let handle = daemon::spawn_tuned(
            "127.0.0.1:0",
            ServiceConfig {
                max_per_client: Some(1),
                ..ServiceConfig::default()
            },
            daemon::DaemonTuning {
                workers,
                ..daemon::DaemonTuning::default()
            },
        )
        .expect("spawn");
        let mut client =
            Client::connect_tagged(&handle.addr().to_string(), "sizer-7").expect("connect");
        let jobs: Vec<(String, Vec<(String, String)>)> =
            (0..3).map(|_| ("@c432".to_string(), opts(&[]))).collect();
        let receipts = client.submit_batch(&jobs).expect("batch");
        let pattern: Vec<bool> = receipts.iter().map(|r| r.is_ok()).collect();
        assert_eq!(pattern, [true, false, false], "workers={workers}");
        for lost in &receipts[1..] {
            match lost {
                Err(ClientError::Throttled {
                    retry_after,
                    message,
                }) => {
                    assert_eq!(*retry_after, Duration::from_millis(100), "{message}");
                    assert!(message.contains("client"), "{message}");
                }
                other => panic!("workers={workers}: expected Throttled, got {other:?}"),
            }
        }
        let (id, _) = *receipts[0].as_ref().expect("first admitted");
        client.wait(id, WAIT).expect("wait");
        let stats = client.stats().expect("stats");
        assert!(stats.contains("throttled: 2"), "workers={workers}: {stats}");
        assert!(stats.contains("clients: 1"), "workers={workers}: {stats}");
        outcomes.push(pattern);
        client.shutdown().expect("shutdown");
        handle.join();
    }
    assert_eq!(outcomes[0], outcomes[1], "shed set depends on thread count");
}

#[test]
fn queue_deadlines_expire_jobs_over_the_wire() {
    let handle = spawn_daemon(ServiceConfig::default());
    let mut client = connect(&handle);

    // A heavy job pins the single executor; the victim's 1 ms queue
    // deadline is long past when the drain reaches it.
    let (heavy, _) = client
        .submit("@c1355", &opts(&[("confidence", "0.3")]))
        .expect("heavy");
    let (victim, _) = client
        .submit("@c432", &opts(&[("deadline", "1")]))
        .expect("victim");

    client.wait(heavy, WAIT).expect("heavy completes");
    let deadline = Instant::now() + WAIT;
    loop {
        let (state, _, _) = client.status(victim).expect("status");
        if state == "expired" {
            break;
        }
        assert!(Instant::now() < deadline, "victim stuck in `{state}`");
        std::thread::sleep(Duration::from_millis(5));
    }
    match client.result(victim, None) {
        Err(ClientError::Server { code, message }) => {
            assert_eq!(code, ErrorCode::Resource, "{message}");
            assert!(message.contains("expired"), "{message}");
        }
        other => panic!("expected RESOURCE expired, got {other:?}"),
    }
    let stats = client.stats().expect("stats");
    assert!(stats.contains("expired: 1"), "{stats}");
    // The heavy job was untouched by its neighbor's expiry.
    assert_eq!(
        client.result(heavy, Some(5)).expect("heavy result").len(),
        client.result(heavy, Some(5)).expect("stable").len()
    );

    client.shutdown().expect("shutdown");
    handle.join();
}

#[test]
fn stalled_connections_are_reaped_but_idle_clients_survive() {
    let handle = daemon::spawn_tuned(
        "127.0.0.1:0",
        ServiceConfig::default(),
        daemon::DaemonTuning {
            io_timeout: Some(Duration::from_millis(100)),
            ..daemon::DaemonTuning::default()
        },
    )
    .expect("spawn");

    // A well-behaved idle client: greeted, nothing owed in either
    // direction. The progress deadline must never touch it.
    let mut idle = connect(&handle);

    // A slowloris: never greets (conn A), or freezes mid-line (conn B).
    let (_conn_a, mut read_a) = raw_conn(&handle);
    let (mut conn_b, mut read_b) = raw_conn(&handle);
    writeln!(conn_b, "HELLO 1.1").expect("greet");
    assert_eq!(read_b(), "OK HELLO 1.1");
    write!(conn_b, "SUBM").expect("half a verb, no newline");
    conn_b.flush().expect("flush");

    let deadline = Instant::now() + Duration::from_secs(10);
    while handle.reaped_connections() < 2 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(handle.reaped_connections(), 2, "both stalls reaped");
    let reason = read_a();
    assert!(
        reason.starts_with("ERR RESOURCE") && reason.contains("reaped"),
        "{reason}"
    );
    let reason = read_b();
    assert!(
        reason.starts_with("ERR RESOURCE") && reason.contains("reaped"),
        "{reason}"
    );
    assert_eq!(wait_for_open_connections(&handle, 1), 1, "idle survives");

    let stats = idle.stats().expect("idle client still served");
    assert!(stats.contains("reaped-connections: 2"), "{stats}");
    idle.shutdown().expect("shutdown");
    handle.join();
}

#[test]
fn connections_over_the_registry_bound_get_a_typed_refusal() {
    let handle = daemon::spawn_tuned(
        "127.0.0.1:0",
        ServiceConfig::default(),
        daemon::DaemonTuning {
            max_conns: 1,
            workers: 1,
            ..daemon::DaemonTuning::default()
        },
    )
    .expect("spawn");
    let mut holder = connect(&handle);

    // The refusal is a parseable RESOURCE error with a retry hint, not
    // a silent close.
    let stream = TcpStream::connect(handle.addr()).expect("connect");
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).expect("read refusal");
    let line = line.trim_end();
    assert!(
        line.starts_with("ERR RESOURCE retry-after=") && line.contains("connection limit"),
        "{line}"
    );
    let mut rest = String::new();
    reader.read_line(&mut rest).expect("eof");
    assert!(rest.is_empty(), "refused connection closes after the line");

    assert_eq!(handle.shed_connections(), 1);
    let stats = holder.stats().expect("stats");
    assert!(stats.contains("shed-connections: 1"), "{stats}");
    holder.shutdown().expect("shutdown");
    handle.join();
}

#[test]
fn idle_daemon_stays_prompt_after_backoff() {
    // The idle poll backs off to 8 ms; a burst of fresh connections
    // after a long quiet spell must still be served promptly (churn
    // latency is bounded by the backoff cap, not the quiet duration).
    let handle = spawn_daemon(ServiceConfig::default());
    std::thread::sleep(Duration::from_millis(200));
    let start = Instant::now();
    for _ in 0..20 {
        let mut client = connect(&handle);
        client.stats().expect("stats");
    }
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "churn after idle took {:?}",
        start.elapsed()
    );
    assert_eq!(wait_for_open_connections(&handle, 0), 0);
    let mut client = connect(&handle);
    client.shutdown().expect("shutdown");
    handle.join();
}

// ---------------------------------------------------------------------
// Property: parse ∘ render == id over the request grammar.
// ---------------------------------------------------------------------

mod roundtrip {
    use super::*;
    use proptest::prelude::*;
    use statim::core::JobId;

    /// A wire-safe token: no spaces (the field separator), nonempty.
    fn token(with_eq: bool) -> impl Strategy<Value = String> {
        let mut chars: Vec<char> = "abcXYZ019@._/-,".chars().collect();
        if with_eq {
            chars.push('=');
        }
        proptest::collection::vec(proptest::sample::select(chars), 1..10)
            .prop_map(|cs| cs.into_iter().collect())
    }

    fn arb_request() -> impl Strategy<Value = Request> {
        (
            0usize..8,
            (0u32..1000, 0u32..4),
            0u64..10_000,
            proptest::collection::vec((token(false), token(true)), 0..4),
            token(false),
            // Encodes Option<usize> (values past 99 mean `top`/`timeout`
            // absent) and Option<String> (the tag applies when the flag
            // is 0).
            (0usize..200, (0usize..2, token(false))),
        )
            .prop_map(
                |(variant, (version, minor), id, options, source, (top, (tagged, tag)))| {
                    let id: JobId = format!("job-{id}").parse().expect("job id");
                    match variant {
                        0 => Request::Hello {
                            version,
                            minor,
                            client: (tagged == 0).then_some(tag),
                        },
                        1 => Request::Submit { source, options },
                        2 => Request::Status { id },
                        3 => Request::Result {
                            id,
                            top: (top < 100).then_some(top),
                        },
                        4 => Request::Cancel { id },
                        5 => Request::Wait {
                            id,
                            timeout_ms: (top < 100).then_some(top as u64 * 37),
                        },
                        6 => Request::Stats,
                        _ => Request::Shutdown,
                    }
                },
            )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn request_parse_render_roundtrips(req in arb_request()) {
            let line = req.render();
            prop_assert_eq!(Request::parse(&line).expect("rendered requests parse"), req);
        }
    }
}
