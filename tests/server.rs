//! End-to-end tests of the analysis daemon: a real `TcpListener` bound
//! to an ephemeral port, driven through the blocking client (and, for
//! the protocol corpus, a raw socket).
//!
//! The central claim is the serving-mode determinism contract: a report
//! served over the wire — fresh, from the result store, or at a
//! different thread count — is **bit-for-bit identical** to the same
//! analysis run in one shot.

use statim::core::engine::{SstaConfig, SstaEngine};
use statim::core::report::deterministic_report;
use statim::core::service::ServiceConfig;
use statim::netlist::generators::iscas85::{self, Benchmark};
use statim::netlist::{Placement, PlacementStyle};
use statim::server::{daemon, Client, ClientError, DaemonHandle, ErrorCode, Request, GREETING};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::Path;
use std::time::Duration;

/// Keep the tests quick: coarse kernels, same on both sides of every
/// comparison.
const QUALITY: &[(&str, &str)] = &[("quality-intra", "40"), ("quality-inter", "20")];

const WAIT: Duration = Duration::from_secs(120);

fn spawn_daemon(config: ServiceConfig) -> DaemonHandle {
    daemon::spawn("127.0.0.1:0", config).expect("bind ephemeral port")
}

fn connect(handle: &DaemonHandle) -> Client {
    Client::connect(&handle.addr().to_string()).expect("connect")
}

fn opts(extra: &[(&str, &str)]) -> Vec<(String, String)> {
    QUALITY
        .iter()
        .chain(extra)
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

/// The one-shot reference: the same engine run the daemon performs,
/// rendered through the same deterministic report.
fn batch_report(bench: Benchmark, top: usize) -> String {
    let circuit = iscas85::generate(bench);
    let placement = Placement::generate(&circuit, PlacementStyle::Levelized);
    let mut config = SstaConfig::date05();
    config.quality_intra = 40;
    config.quality_inter = 20;
    let report = SstaEngine::new(config)
        .run(&circuit, &placement)
        .expect("batch run");
    deterministic_report(&report, top)
}

#[test]
fn served_reports_are_bit_identical_to_batch() {
    let handle = spawn_daemon(ServiceConfig::default());
    let mut client = connect(&handle);

    for (bench, source) in [(Benchmark::C432, "@c432"), (Benchmark::C499, "@c499")] {
        let (id, from_store) = client.submit(source, &opts(&[])).expect("submit");
        assert!(
            !from_store,
            "{source}: first submission cannot hit the store"
        );
        let state = client.wait(id, WAIT).expect("wait");
        assert_eq!(state, "done", "{source}");
        let served = client.result(id, Some(5)).expect("result");
        assert_eq!(
            served,
            batch_report(bench, 5),
            "{source}: served report differs from the one-shot run"
        );
    }

    client.shutdown().expect("shutdown");
    handle.join();
}

#[test]
fn duplicate_submission_is_served_from_the_result_store() {
    let handle = spawn_daemon(ServiceConfig::default());
    let mut client = connect(&handle);

    let (first, _) = client.submit("@c432", &opts(&[])).expect("submit");
    client.wait(first, WAIT).expect("wait");
    let fresh = client.result(first, None).expect("result");

    // Identical submission: answered from the store, no second run.
    let (second, from_store) = client.submit("@c432", &opts(&[])).expect("resubmit");
    assert!(
        from_store,
        "identical resubmission must hit the result store"
    );
    assert_ne!(first, second, "store hits still get their own job id");
    let stored = client.result(second, None).expect("stored result");
    assert_eq!(stored, fresh, "store must serve the identical bytes");

    // Wall-time-only knobs (threads here) are excluded from the job
    // fingerprint: a resubmission that only changes them hits too, and
    // the bytes still match — the thread-count determinism contract.
    let (third, from_store) = client
        .submit("@c432", &opts(&[("threads", "2")]))
        .expect("resubmit threads=2");
    assert!(from_store, "thread count must not defeat the result store");
    assert_eq!(client.result(third, None).expect("result"), fresh);

    // A semantically different run (other confidence) must NOT hit.
    let (fourth, from_store) = client
        .submit("@c432", &opts(&[("confidence", "0.2")]))
        .expect("submit confidence=0.2");
    assert!(!from_store, "different settings must miss the result store");
    client.wait(fourth, WAIT).expect("wait");

    let stats = client.stats().expect("stats");
    assert!(stats.contains("store-hits: 2"), "stats:\n{stats}");

    client.shutdown().expect("shutdown");
    handle.join();
}

#[test]
fn backend_option_selects_kernel_and_keys_the_store() {
    let handle = spawn_daemon(ServiceConfig::default());
    let mut client = connect(&handle);

    // backend=grid is the default spelled out: same fingerprint, store hit.
    let (grid, _) = client.submit("@c432", &opts(&[])).expect("submit");
    client.wait(grid, WAIT).expect("wait");
    let grid_bytes = client.result(grid, None).expect("result");
    let (explicit, from_store) = client
        .submit("@c432", &opts(&[("backend", "grid")]))
        .expect("submit backend=grid");
    assert!(from_store, "backend=grid must fingerprint like the default");
    assert_eq!(client.result(explicit, None).expect("result"), grid_bytes);

    // backend=fft is a different kernel: distinct fingerprint, own run.
    let (fft, from_store) = client
        .submit("@c432", &opts(&[("backend", "fft")]))
        .expect("submit backend=fft");
    assert!(!from_store, "fft must not reuse grid results");
    client.wait(fft, WAIT).expect("wait");

    // Junk gets a typed CONFIG error, and the connection survives.
    let err = client
        .submit("@c432", &opts(&[("backend", "warp")]))
        .expect_err("unknown backend");
    match err {
        ClientError::Server { code, message } => {
            assert_eq!(code, ErrorCode::Config);
            assert!(message.contains("warp"), "{message}");
        }
        other => panic!("{other:?}"),
    }
    let stats = client.stats().expect("stats after rejected submit");
    assert!(stats.contains("store-hits: 1"), "stats:\n{stats}");

    client.shutdown().expect("shutdown");
    handle.join();
}

#[test]
fn daemon_default_backend_applies_to_bare_submissions() {
    let config = ServiceConfig {
        default_backend: statim::stats::ConvolveBackend::Fft,
        ..ServiceConfig::default()
    };
    let handle = spawn_daemon(config);
    let mut client = connect(&handle);

    // A bare submit runs under the daemon default (fft)…
    let (bare, _) = client.submit("@c432", &opts(&[])).expect("submit");
    client.wait(bare, WAIT).expect("wait");
    // …so an explicit backend=fft resubmission is the same job.
    let (explicit, from_store) = client
        .submit("@c432", &opts(&[("backend", "fft")]))
        .expect("submit backend=fft");
    assert!(
        from_store,
        "daemon default must land in the job fingerprint"
    );
    assert_eq!(
        client.result(explicit, None).expect("result"),
        client.result(bare, None).expect("result")
    );
    // …and backend=grid is a different job.
    let (grid, from_store) = client
        .submit("@c432", &opts(&[("backend", "grid")]))
        .expect("submit backend=grid");
    assert!(!from_store, "grid must not reuse the fft default's result");
    client.wait(grid, WAIT).expect("wait");

    client.shutdown().expect("shutdown");
    handle.join();
}

#[test]
fn full_queue_rejects_with_busy() {
    // A zero-capacity queue turns admission control all the way up:
    // every submission bounces with BUSY and the daemon stays healthy.
    let config = ServiceConfig {
        max_queue: 0,
        ..ServiceConfig::default()
    };
    let handle = spawn_daemon(config);
    let mut client = connect(&handle);

    match client.submit("@c432", &opts(&[])) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::Busy),
        other => panic!("expected BUSY, got {other:?}"),
    }
    // The connection survives the rejection.
    let stats = client.stats().expect("stats after BUSY");
    assert!(stats.contains("rejected: 1"), "stats:\n{stats}");

    client.shutdown().expect("shutdown");
    handle.join();
}

#[test]
fn cancel_mid_run_leaves_the_daemon_serving() {
    let handle = spawn_daemon(ServiceConfig::default());
    let mut client = connect(&handle);

    // A heavy job (wide window on the larger c1355) so the cancel has a
    // running target; if it is still queued the cancel is just
    // immediate instead, and the assertions below hold either way.
    let heavy = opts(&[("confidence", "0.3")]);
    let (id, _) = client.submit("@c1355", &heavy).expect("submit heavy");
    client.cancel(id).expect("cancel");
    let state = client.wait(id, WAIT).expect("wait");
    assert_eq!(state, "cancelled");

    // Cancelled jobs never reach the result store, and asking for
    // their result surfaces the recorded cancellation (a Resource-class
    // failure), not a hang.
    match client.result(id, None) {
        Err(ClientError::Server { code, message }) => {
            assert_eq!(code, ErrorCode::Resource, "{message}");
            assert!(message.contains("cancelled"), "{message}");
        }
        other => panic!("expected RESOURCE error, got {other:?}"),
    }

    // The daemon keeps serving clean work afterwards.
    let (next, _) = client
        .submit("@c432", &opts(&[]))
        .expect("submit after cancel");
    assert_eq!(client.wait(next, WAIT).expect("wait"), "done");

    client.shutdown().expect("shutdown");
    handle.join();
}

#[cfg(feature = "fault-injection")]
#[test]
fn panicking_job_leaves_the_daemon_serving() {
    let handle = spawn_daemon(ServiceConfig::default());
    let mut client = connect(&handle);

    // Inject a panic into path 0 with no retries: the supervised run
    // degrades that path and the job lands `degraded`, while the daemon
    // itself never notices.
    let (id, _) = client
        .submit(
            "@c432",
            &opts(&[("fault-plan", "panic-path@0"), ("retries", "0")]),
        )
        .expect("submit faulted");
    let state = client.wait(id, WAIT).expect("wait");
    assert_eq!(
        state, "degraded",
        "panicking path must only degrade its job"
    );

    // Degraded results are poll-able but never cached: resubmitting the
    // clean variant runs fresh and comes back bit-identical to batch.
    let (clean, from_store) = client.submit("@c432", &opts(&[])).expect("submit clean");
    assert!(!from_store, "degraded run must not seed the result store");
    assert_eq!(client.wait(clean, WAIT).expect("wait"), "done");
    assert_eq!(
        client.result(clean, Some(5)).expect("result"),
        batch_report(Benchmark::C432, 5)
    );

    client.shutdown().expect("shutdown");
    handle.join();
}

#[test]
fn shutdown_drains_queued_work_and_closes() {
    let handle = spawn_daemon(ServiceConfig::default());
    let mut client = connect(&handle);

    let (id, _) = client.submit("@c432", &opts(&[])).expect("submit");
    client.shutdown().expect("shutdown");

    // Draining: new submissions bounce with a typed SHUTDOWN error.
    match client.submit("@c499", &opts(&[])) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::Shutdown),
        other => panic!("expected SHUTDOWN error, got {other:?}"),
    }

    // The queued job stays pollable while the drain lasts; once it
    // completes the daemon force-closes lingering connections and
    // exits, so the poll ends in `done` or in a clean close — never in
    // a dropped job or a hang. (`AnalysisService` unit tests pin down
    // that draining always finishes queued work.)
    match client.wait(id, WAIT) {
        Ok(state) => assert_eq!(state, "done"),
        Err(ClientError::Protocol(m)) => assert!(m.contains("closed"), "{m}"),
        Err(ClientError::Io(_)) => {}
        Err(other) => panic!("unexpected wait failure: {other}"),
    }
    handle.join();
}

// ---------------------------------------------------------------------
// Protocol corpus: every malformed request line is a typed PROTOCOL
// error — parse-level and against a live daemon — and never kills the
// connection.
// ---------------------------------------------------------------------

fn protocol_corpus() -> Vec<String> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus/protocol");
    let mut lines = Vec::new();
    for entry in std::fs::read_dir(&path).expect("corpus dir") {
        let file = entry.expect("corpus entry").path();
        let text = std::fs::read_to_string(&file).expect("corpus file");
        lines.extend(text.lines().filter(|l| !l.is_empty()).map(str::to_string));
    }
    assert!(lines.len() >= 20, "corpus unexpectedly small");
    lines
}

#[test]
fn corpus_lines_fail_request_parse() {
    for line in protocol_corpus() {
        assert!(
            Request::parse(&line).is_err(),
            "`{line}` must not parse as a request"
        );
    }
}

#[test]
fn corpus_lines_get_err_replies_and_the_connection_survives() {
    let handle = spawn_daemon(ServiceConfig::default());

    // Raw socket: greeting, handshake, then the whole corpus.
    let stream = TcpStream::connect(handle.addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    let mut read_line = move || {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read");
        line.trim_end().to_string()
    };

    assert_eq!(read_line(), GREETING);

    // Requests before the handshake are themselves protocol errors.
    writeln!(writer, "STATS").expect("write");
    assert!(read_line().starts_with("ERR PROTOCOL"), "handshake gate");
    writeln!(writer, "HELLO 99").expect("write");
    assert!(read_line().starts_with("ERR PROTOCOL"), "version gate");
    writeln!(writer, "HELLO 1").expect("write");
    assert_eq!(read_line(), "OK HELLO 1");

    for line in protocol_corpus() {
        writeln!(writer, "{line}").expect("write");
        let reply = read_line();
        assert!(
            reply.starts_with("ERR PROTOCOL"),
            "`{line}` must get ERR PROTOCOL, got `{reply}`"
        );
    }

    // After all that abuse the connection still works.
    writeln!(writer, "STATS").expect("write");
    let header = read_line();
    let n: usize = header
        .strip_prefix("OK STATS ")
        .expect("stats header")
        .parse()
        .expect("stats count");
    for _ in 0..n {
        read_line();
    }
    writeln!(writer, "SHUTDOWN").expect("write");
    assert_eq!(read_line(), "OK SHUTDOWN draining");
    handle.join();
}

// ---------------------------------------------------------------------
// Property: parse ∘ render == id over the request grammar.
// ---------------------------------------------------------------------

mod roundtrip {
    use super::*;
    use proptest::prelude::*;
    use statim::core::JobId;

    /// A wire-safe token: no spaces (the field separator), nonempty.
    fn token(with_eq: bool) -> impl Strategy<Value = String> {
        let mut chars: Vec<char> = "abcXYZ019@._/-,".chars().collect();
        if with_eq {
            chars.push('=');
        }
        proptest::collection::vec(proptest::sample::select(chars), 1..10)
            .prop_map(|cs| cs.into_iter().collect())
    }

    fn arb_request() -> impl Strategy<Value = Request> {
        (
            0usize..7,
            0u32..1000,
            0u64..10_000,
            proptest::collection::vec((token(false), token(true)), 0..4),
            token(false),
            // Encodes Option<usize>: values past 99 mean `top` absent.
            0usize..200,
        )
            .prop_map(|(variant, version, id, options, source, top)| {
                let id: JobId = format!("job-{id}").parse().expect("job id");
                match variant {
                    0 => Request::Hello { version },
                    1 => Request::Submit { source, options },
                    2 => Request::Status { id },
                    3 => Request::Result {
                        id,
                        top: (top < 100).then_some(top),
                    },
                    4 => Request::Cancel { id },
                    5 => Request::Stats,
                    _ => Request::Shutdown,
                }
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn request_parse_render_roundtrips(req in arb_request()) {
            let line = req.render();
            prop_assert_eq!(Request::parse(&line).expect("rendered requests parse"), req);
        }
    }
}
