//! Property fuzzing of the incremental ECO engine.
//!
//! For random sequences of 1–20 *valid* edits on random seed circuits,
//! after **every prefix** the incremental engine's report must be
//! byte-identical to a from-scratch run of the same edited circuit.
//! The vendored proptest has no shrinking, so failures go through a
//! hand-written greedy minimizer first: the panic message prints the
//! smallest edit script that still reproduces the divergence.

use proptest::prelude::*;
use statim::core::engine::{SstaConfig, SstaEngine};
use statim::core::report::deterministic_report;
use statim::core::{apply_edits, EcoEdit, EcoScript, IncrementalEngine};
use statim::netlist::generators::iscas85::{self, Benchmark};
use statim::netlist::{Circuit, Placement, PlacementStyle};
use statim::process::GateKind;

const LIMIT: usize = 25;

fn config() -> SstaConfig {
    let mut c = SstaConfig::date05();
    c.quality_intra = 30;
    c.quality_inter = 15;
    c
}

/// SplitMix64 — deterministic, dependency-free stream for edit choices.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len())]
    }
}

/// Gate kinds admissible for an `inputs.len()`-preserving swap. Arity
/// is invariant under every edit kind (swap checks it, the wire edits
/// rewire pins in place), so validity never depends on edit order —
/// which is what lets the minimizer drop edits freely.
fn kinds_for_arity(n: usize) -> Vec<GateKind> {
    match n {
        1 => vec![GateKind::Inv, GateKind::Buf],
        2 => vec![
            GateKind::Nand(2),
            GateKind::Nor(2),
            GateKind::And(2),
            GateKind::Or(2),
            GateKind::Xor2,
            GateKind::Xnor2,
        ],
        n => {
            let n = u8::try_from(n).expect("gate arity fits u8");
            vec![
                GateKind::Nand(n),
                GateKind::Nor(n),
                GateKind::And(n),
                GateKind::Or(n),
            ]
        }
    }
}

/// One random valid edit against the (structurally fixed) circuit.
fn random_edit(rng: &mut Rng, circuit: &Circuit) -> EcoEdit {
    let gates = circuit.gates();
    let any_gate = |rng: &mut Rng| gates[rng.below(gates.len())].name.clone();
    match rng.below(5) {
        0 => EcoEdit::ResizeGate {
            gate: any_gate(rng),
            drive: *rng.pick(&[0.5, 0.8, 1.25, 2.0]),
        },
        1 => EcoEdit::RetimeGate {
            gate: any_gate(rng),
            pad: *rng.pick(&[0.0, 1e-12, 5e-12]),
        },
        2 => {
            let g = &gates[rng.below(gates.len())];
            let kinds = kinds_for_arity(g.inputs.len());
            EcoEdit::SwapGateType {
                gate: g.name.clone(),
                kind: *rng.pick(&kinds),
            }
        }
        3 => {
            // Cycle guard: the driver must have a strictly lower id
            // than the sink, so pick the sink from the upper half.
            let sink_idx = gates.len() / 2 + rng.below(gates.len() - gates.len() / 2);
            let sink = &gates[sink_idx];
            EcoEdit::AddWire {
                driver: gates[rng.below(sink_idx)].name.clone(),
                sink: sink.name.clone(),
                pin: rng.below(sink.inputs.len()),
            }
        }
        _ => {
            let g = &gates[rng.below(gates.len())];
            EcoEdit::RemoveWire {
                sink: g.name.clone(),
                pin: rng.below(g.inputs.len()),
            }
        }
    }
}

fn script_of(edits: &[EcoEdit]) -> EcoScript {
    EcoScript {
        edits: edits
            .iter()
            .enumerate()
            .map(|(i, e)| (i + 1, e.clone()))
            .collect(),
    }
}

/// Applies `edits` one at a time to a single incremental engine and
/// checks every prefix against a from-scratch run. Returns the first
/// divergence (prefix length + detail) instead of panicking, so the
/// minimizer can re-drive it.
fn check_prefixes(bench: Benchmark, edits: &[EcoEdit]) -> Result<(), String> {
    let circuit = iscas85::generate(bench);
    let placement = Placement::generate(&circuit, PlacementStyle::Levelized);
    let mut inc = IncrementalEngine::new(SstaEngine::new(config()), circuit.clone(), placement)
        .map_err(|e| format!("base run failed: {e}"))?;
    let mut reference = circuit;
    for (i, edit) in edits.iter().enumerate() {
        let step = script_of(std::slice::from_ref(edit));
        let outcome = inc
            .apply(&step)
            .map_err(|e| format!("incremental apply of edit {} failed: {e}", i + 1))?;
        apply_edits(&mut reference, &step)
            .map_err(|e| format!("reference apply of edit {} failed: {e}", i + 1))?;
        let fresh_placement =
            Placement::generate(&iscas85::generate(bench), PlacementStyle::Levelized);
        let fresh = SstaEngine::new(config())
            .run(&reference, &fresh_placement)
            .map_err(|e| format!("fresh run after edit {} failed: {e}", i + 1))?;
        let got = deterministic_report(&outcome.report, LIMIT);
        let want = deterministic_report(&fresh, LIMIT);
        if got != want {
            return Err(format!(
                "prefix of {} edit(s) diverged from from-scratch ({})",
                i + 1,
                outcome.stats.summary_line()
            ));
        }
    }
    Ok(())
}

/// Greedy minimization: repeatedly try dropping single edits while the
/// failure persists. Edit validity is order-independent (arity is
/// invariant, targets are static names), so any subsequence of a valid
/// sequence is valid — dropping can only lose the bug, never create a
/// spurious apply error that masks it.
fn minimize(bench: Benchmark, edits: &[EcoEdit]) -> (Vec<EcoEdit>, String) {
    let mut kept: Vec<EcoEdit> = edits.to_vec();
    let mut detail = check_prefixes(bench, &kept).expect_err("minimize needs a failing input");
    let mut progress = true;
    while progress && kept.len() > 1 {
        progress = false;
        for i in 0..kept.len() {
            let mut trial = kept.clone();
            trial.remove(i);
            if let Err(d) = check_prefixes(bench, &trial) {
                kept = trial;
                detail = d;
                progress = true;
                break;
            }
        }
    }
    (kept, detail)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn random_edit_sequences_match_from_scratch_at_every_prefix(
        bench_pick in 0usize..3,
        seed in 0u64..u64::MAX,
        len in 1usize..21,
    ) {
        let bench = [Benchmark::C432, Benchmark::C499, Benchmark::C880][bench_pick];
        let circuit = iscas85::generate(bench);
        let mut rng = Rng(seed);
        let edits: Vec<EcoEdit> =
            (0..len).map(|_| random_edit(&mut rng, &circuit)).collect();

        if let Err(first) = check_prefixes(bench, &edits) {
            let (minimal, detail) = minimize(bench, &edits);
            panic!(
                "incremental != from-scratch on {} (seed {seed}): {detail}\n\
                 first failure: {first}\n\
                 minimal edit script ({} of {} edits):\n{}",
                bench.name(),
                minimal.len(),
                edits.len(),
                script_of(&minimal).render()
            );
        }
    }
}
