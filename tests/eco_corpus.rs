//! Malformed-ECO-script corpus: every file under `tests/corpus/eco/`
//! must fail with a **typed** error — `Parse` for text the script
//! grammar rejects, `Config` for well-formed edits the circuit cannot
//! apply — carrying the 1-based script line, and must never panic.
//! The table below is sync-checked against the directory so a new bad
//! script cannot silently skip classification.

use statim::core::{apply_edits, EcoScript, ErrorClass, StatimError};
use statim::netlist::generators::iscas85::{self, Benchmark};
use std::fs;
use std::path::Path;

/// filename → (expected class, expected 1-based line, message fragment).
const CORPUS: &[(&str, ErrorClass, usize, &str)] = &[
    ("unknown_gate.eco", ErrorClass::Config, 2, "nosuch"),
    ("unknown_verb.eco", ErrorClass::Parse, 1, "frobnicate"),
    ("bad_float.eco", ErrorClass::Parse, 1, "fast"),
    ("negative_drive.eco", ErrorClass::Config, 2, ""),
    ("missing_operand.eco", ErrorClass::Parse, 1, "resize"),
    ("extra_operand.eco", ErrorClass::Parse, 1, "retime"),
    ("dangling_wire.eco", ErrorClass::Config, 3, "ghost"),
    ("cyclic_add.eco", ErrorClass::Config, 3, ""),
    ("bad_pin.eco", ErrorClass::Config, 1, ""),
    ("input_as_gate.eco", ErrorClass::Config, 1, "primary input"),
    ("bad_arity_swap.eco", ErrorClass::Config, 1, ""),
    ("truncated.eco", ErrorClass::Parse, 2, "swap"),
    ("bad_kind.eco", ErrorClass::Parse, 1, "frob"),
];

fn corpus_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus/eco")
}

/// Parse, then — for scripts the grammar accepts — apply against c432.
/// Both stages fold into the [`StatimError`] taxonomy the CLI and
/// daemon report through.
fn run_script(text: &str) -> Result<(), StatimError> {
    let script = EcoScript::parse(text).map_err(StatimError::from)?;
    let mut circuit = iscas85::generate(Benchmark::C432);
    apply_edits(&mut circuit, &script).map_err(StatimError::from)?;
    Ok(())
}

#[test]
fn every_eco_corpus_file_fails_typed_with_its_line() {
    for &(file, class, line, fragment) in CORPUS {
        let path = corpus_dir().join(file);
        let text = fs::read_to_string(&path).unwrap_or_else(|e| panic!("{file}: {e}"));
        let err = run_script(&text).expect_err(&format!("{file}: malformed script must fail"));
        assert_eq!(err.class, class, "{file}: {err}");
        assert_eq!(
            err.line,
            Some(line),
            "{file}: expected 1-based line {line}, got {err}"
        );
        // The rendered form names the line for the user.
        assert!(
            err.to_string().contains(&format!("line {line}")),
            "{file}: `{err}` should point at line {line}"
        );
        if !fragment.is_empty() {
            assert!(
                err.to_string().contains(fragment),
                "{file}: `{err}` should name `{fragment}`"
            );
        }
    }
}

#[test]
fn eco_corpus_and_table_stay_in_sync() {
    let mut on_disk: Vec<String> = fs::read_dir(corpus_dir())
        .expect("eco corpus dir")
        .map(|e| e.expect("entry").file_name().into_string().expect("utf-8"))
        .collect();
    on_disk.sort();
    let mut listed: Vec<String> = CORPUS.iter().map(|&(f, ..)| f.to_string()).collect();
    listed.sort();
    assert_eq!(on_disk, listed);
    assert!(listed.len() >= 10, "eco corpus shrank below 10 files");
}

#[test]
fn well_formed_scripts_still_apply() {
    // Control: the full verb surface on real gates, both script forms.
    let text = "# a well-formed script\n\
                resize g10 2.0\n\
                retime g11 1e-12\n\
                swap g1 nor2\n\
                addwire g1 g50 0\n\
                rmwire g50 1\n";
    let script = EcoScript::parse(text).expect("parse");
    let compact = EcoScript::parse_compact(&script.render_compact()).expect("compact round-trip");
    assert_eq!(
        script.edits.iter().map(|(_, e)| e).collect::<Vec<_>>(),
        compact.edits.iter().map(|(_, e)| e).collect::<Vec<_>>()
    );
    let mut circuit = iscas85::generate(Benchmark::C432);
    let touched = apply_edits(&mut circuit, &script).expect("apply");
    assert!(!touched.is_empty());
}
