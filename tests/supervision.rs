//! Supervision-layer integration tests: run budgets, panic quarantine,
//! deterministic retry and Monte-Carlo checkpoint/resume.
//!
//! The contract under test is ISSUE 4's: a supervised run either
//! completes, degrades visibly (quarantine, `budget_exhausted`), or
//! fails with a typed error — and every deterministic scenario is
//! bit-identical at any thread count. Fault-dependent scenarios live in
//! the `faulted` module (needs `--features fault-injection`).

use statim::core::engine::{SstaConfig, SstaEngine, SstaReport};
use statim::core::monte_carlo::{
    mc_fingerprint, mc_path_distribution_supervised, McOutcome, McSupervision,
};
use statim::core::parallel::MC_CHUNK;
use statim::core::supervise::{BudgetKind, McCheckpoint, McCheckpointer, RunBudget, Supervisor};
use statim::core::{characterize::characterize_placed, CoreError, ErrorClass, LayerModel};
use statim::netlist::generators::iscas85::{self, Benchmark};
use statim::netlist::{Placement, PlacementStyle};
use statim::process::{Technology, Variations};
use statim::stats::Marginal;
use std::path::PathBuf;

const MC_QUALITY: usize = 50;
const MC_SEED: u64 = 0x5EED;

/// A unique temp-file path per test so parallel test threads never
/// collide on a sidecar.
fn temp_ckpt(name: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("statim-supervision-{}-{name}", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

/// Everything a supervised MC call needs, derived once from a benchmark.
struct McFixture {
    placement: Placement,
    timing: statim::core::CircuitTiming,
    gates: Vec<statim::netlist::GateId>,
    tech: Technology,
    vars: Variations,
    layers: LayerModel,
}

fn mc_fixture() -> McFixture {
    let circuit = iscas85::generate(Benchmark::C432);
    let placement = Placement::generate(&circuit, PlacementStyle::Levelized);
    let tech = Technology::cmos130();
    let timing = characterize_placed(&circuit, &tech, &placement).expect("characterization");
    let report = SstaEngine::new(SstaConfig::date05())
        .run(&circuit, &placement)
        .expect("flow succeeds");
    McFixture {
        placement,
        timing,
        gates: report.critical().analysis.gates.clone(),
        tech,
        vars: Variations::date05(),
        layers: LayerModel::date05(),
    }
}

impl McFixture {
    fn run(&self, samples: usize, threads: usize, ctx: McSupervision<'_>) -> McOutcome {
        mc_path_distribution_supervised(
            &self.gates,
            &self.timing,
            &self.placement,
            &self.tech,
            &self.vars,
            &self.layers,
            Marginal::Gaussian,
            samples,
            MC_QUALITY,
            MC_SEED,
            threads,
            ctx,
        )
        .expect("supervised mc run")
    }

    fn fingerprint(&self) -> u64 {
        mc_fingerprint(
            &self.gates,
            &self.vars,
            &self.layers,
            Marginal::Gaussian,
            MC_QUALITY,
        )
        .expect("fingerprint")
    }
}

fn stat_bits(out: &McOutcome) -> (u64, u64) {
    let r = out.result.as_ref().expect("mc result present");
    (r.mean.to_bits(), r.sigma.to_bits())
}

fn engine_run(budget: RunBudget, threads: usize) -> Result<SstaReport, CoreError> {
    let circuit = iscas85::generate(Benchmark::C432);
    let placement = Placement::generate(&circuit, PlacementStyle::Levelized);
    let config = SstaConfig::date05()
        .with_confidence(0.5)
        .with_threads(threads)
        .with_budget(budget);
    SstaEngine::new(config).run(&circuit, &placement)
}

#[test]
fn path_budget_yields_flagged_partial_report_thread_invariantly() {
    let full = engine_run(RunBudget::none(), 1).expect("unbudgeted run");
    let budget = RunBudget {
        max_paths: Some(3),
        ..RunBudget::none()
    };
    let one = engine_run(budget, 1).expect("budgeted run, 1 thread");
    let four = engine_run(budget, 4).expect("budgeted run, 4 threads");
    for r in [&one, &four] {
        assert_eq!(r.budget_exhausted, Some(BudgetKind::Paths));
        assert_eq!(r.num_paths, 3);
        assert_eq!(r.skipped_paths, full.num_paths - 3);
    }
    // The analyzed prefix is keyed on enumeration index, so the partial
    // report is bit-identical at any thread count.
    let bits = |r: &SstaReport| {
        r.paths
            .iter()
            .map(|p| (p.analysis.gates.clone(), p.analysis.mean.to_bits()))
            .collect::<Vec<_>>()
    };
    assert_eq!(bits(&one), bits(&four));
    // A healthy run carries no supervision flags.
    assert_eq!(full.budget_exhausted, None);
    assert_eq!(full.skipped_paths, 0);
}

#[test]
fn wall_budget_exhausted_before_any_result_is_typed() {
    let budget = RunBudget {
        max_wall_secs: Some(0.0),
        ..RunBudget::none()
    };
    let err = engine_run(budget, 1).expect_err("zero wall budget cannot produce results");
    assert!(
        matches!(&err, CoreError::BudgetExhausted { budget } if budget == "wall"),
        "{err:?}"
    );
    assert_eq!(err.classify(), ErrorClass::Resource);
}

#[test]
fn mc_sample_budget_flags_partial_outcome() {
    let fix = mc_fixture();
    let samples = 2 * MC_CHUNK + 100;
    let budget = RunBudget {
        max_mc_samples: Some(MC_CHUNK),
        ..RunBudget::none()
    };
    let sup = Supervisor::new(budget, 1);
    let out = fix.run(samples, 1, McSupervision::new(&sup));
    assert_eq!(out.exhausted, Some(BudgetKind::McSamples));
    assert_eq!(out.chunks_done, 1);
    assert_eq!(out.chunks_total, 3);
    // The partial result is exactly the clean run over the same prefix.
    let clean_sup = Supervisor::unlimited();
    let clean = fix.run(MC_CHUNK, 1, McSupervision::new(&clean_sup));
    assert_eq!(stat_bits(&out), stat_bits(&clean));
}

#[test]
fn checkpoint_kill_resume_is_bitwise_equal_to_uninterrupted() {
    let fix = mc_fixture();
    let samples = 2 * MC_CHUNK + 100;
    let fp = fix.fingerprint();

    // Baseline: one uninterrupted run.
    let sup = Supervisor::unlimited();
    let baseline = fix.run(samples, 1, McSupervision::new(&sup));

    // "Kill" mid-run: a sample budget stops the run after one of three
    // chunks, with a checkpointer persisting the completed chunk.
    let path = temp_ckpt("kill-resume.ckpt");
    let budget = RunBudget {
        max_mc_samples: Some(MC_CHUNK),
        ..RunBudget::none()
    };
    let killed_sup = Supervisor::new(budget, 1);
    let ck = McCheckpointer::new(&path, McCheckpoint::new(fp, MC_SEED, samples), 1);
    let killed = fix.run(
        samples,
        1,
        McSupervision::new(&killed_sup).with_checkpoint(&ck),
    );
    assert_eq!(killed.exhausted, Some(BudgetKind::McSamples));
    assert_eq!(killed.chunks_done, 1);

    // Resume from the sidecar: restored chunks are reused verbatim, the
    // rest re-sampled, and the merge is in chunk order — bit-identical
    // to the uninterrupted run, at 1 and 4 threads.
    let ckpt = McCheckpoint::load(&path).expect("sidecar readable");
    ckpt.validate_for(fp, MC_SEED, samples)
        .expect("sidecar matches this run");
    for threads in [1, 4] {
        let resume_sup = Supervisor::unlimited();
        let resumed = fix.run(
            samples,
            threads,
            McSupervision::new(&resume_sup).with_resume(&ckpt),
        );
        assert_eq!(resumed.chunks_resumed, 1, "threads={threads}");
        assert_eq!(resumed.chunks_done, 3, "threads={threads}");
        assert_eq!(
            stat_bits(&resumed),
            stat_bits(&baseline),
            "threads={threads}"
        );
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn corrupted_and_mismatched_checkpoints_fail_typed() {
    // Garbage file: typed parse error, not a panic.
    let garbage = temp_ckpt("garbage.ckpt");
    std::fs::write(&garbage, "not a checkpoint\n").expect("write temp file");
    let err = McCheckpoint::load(&garbage).expect_err("garbage must not parse");
    assert!(
        matches!(err, CoreError::CheckpointParse { line: 1, .. }),
        "{err:?}"
    );
    assert_eq!(err.classify(), ErrorClass::Parse);

    // Version bump: rejected with the version named on line 1.
    let good = McCheckpoint::new(7, 11, MC_CHUNK).render();
    let versioned = temp_ckpt("version.ckpt");
    std::fs::write(&versioned, good.replacen("v1", "v9", 1)).expect("write temp file");
    let err = McCheckpoint::load(&versioned).expect_err("future version must not parse");
    assert!(
        matches!(&err, CoreError::CheckpointParse { line: 1, message } if message.contains("v9")),
        "{err:?}"
    );

    // Truncated sample payload: the offending line is identified.
    let truncated = temp_ckpt("truncated.ckpt");
    std::fs::write(&truncated, format!("{good}chunk 0 2 deadbeef\n")).expect("write temp file");
    let err = McCheckpoint::load(&truncated).expect_err("short chunk must not parse");
    assert!(matches!(err, CoreError::CheckpointParse { .. }), "{err:?}");

    // Wrong identity: a well-formed checkpoint from another run is
    // refused at validation, before any sampling happens.
    let other = McCheckpoint::new(7, 11, MC_CHUNK);
    let err = other
        .validate_for(8, 11, MC_CHUNK)
        .expect_err("foreign fingerprint must be refused");
    assert!(matches!(err, CoreError::InvalidConfig { .. }), "{err:?}");
    assert_eq!(err.classify(), ErrorClass::Config);

    // Missing file: a resource error, also typed.
    let missing = temp_ckpt("missing.ckpt");
    let err = McCheckpoint::load(&missing).expect_err("missing file must error");
    assert!(matches!(err, CoreError::CheckpointIo { .. }), "{err:?}");
    assert_eq!(err.classify(), ErrorClass::Resource);

    for p in [garbage, versioned, truncated] {
        let _ = std::fs::remove_file(p);
    }
}

#[cfg(feature = "fault-injection")]
mod faulted {
    use super::*;
    use statim::core::FaultPlan;
    use std::sync::Arc;

    fn plan(spec: &str) -> FaultPlan {
        spec.parse().expect("valid fault plan")
    }

    #[test]
    fn panic_path_quarantine_is_bit_identical_across_threads() {
        let circuit = iscas85::generate(Benchmark::C432);
        let placement = Placement::generate(&circuit, PlacementStyle::Levelized);
        let run = |threads: usize| {
            let mut config = SstaConfig::date05()
                .with_confidence(0.5)
                .with_threads(threads);
            config.faults = Some(Arc::new(plan("panic-path@1")));
            SstaEngine::new(config)
                .run(&circuit, &placement)
                .expect("quarantined run completes")
        };
        let baseline = run(1);
        assert_eq!(baseline.degraded.len(), 1);
        assert_eq!(baseline.degraded[0].index, 1);
        assert_eq!(baseline.degraded[0].class, ErrorClass::Numeric);
        assert!(baseline.degraded[0].reason.contains("panic-path@1"));
        // Default retries = 1, so the persistent fault panics twice.
        assert_eq!(baseline.profile.retries, 1);
        assert_eq!(baseline.profile.panics, 2);
        let bits = |r: &SstaReport| {
            r.paths
                .iter()
                .map(|p| {
                    (
                        p.analysis.gates.clone(),
                        p.analysis.mean.to_bits(),
                        p.analysis.sigma.to_bits(),
                        p.analysis.confidence_point.to_bits(),
                    )
                })
                .collect::<Vec<_>>()
        };
        for threads in [2, 4, 8] {
            let r = run(threads);
            assert_eq!(bits(&r), bits(&baseline), "threads={threads}");
            assert_eq!(r.degraded[0].index, 1, "threads={threads}");
        }
    }

    #[test]
    fn retried_chunk_matches_clean_run_bitwise() {
        let fix = mc_fixture();
        let samples = 2 * MC_CHUNK;
        let clean_sup = Supervisor::unlimited();
        let clean = fix.run(samples, 1, McSupervision::new(&clean_sup));

        // The fault disarms after one firing; the retry re-derives the
        // chunk's RNG from (seed, chunk index) and must reproduce the
        // clean run exactly.
        let fault = plan("panic-chunk@0:1");
        let sup = Supervisor::new(RunBudget::none(), 1);
        let out = fix.run(samples, 1, McSupervision::new(&sup).with_faults(&fault));
        assert_eq!(out.retries, 1);
        assert_eq!(out.quarantined_chunks, 0);
        assert_eq!(out.chunks_done, 2);
        assert_eq!(stat_bits(&out), stat_bits(&clean));
    }

    #[test]
    fn persistent_panic_chunk_quarantines_thread_invariantly() {
        let fix = mc_fixture();
        let samples = 3 * MC_CHUNK;
        let run = |threads: usize| {
            let fault = plan("panic-chunk@1");
            let sup = Supervisor::new(RunBudget::none(), 1);
            fix.run(
                samples,
                threads,
                McSupervision::new(&sup).with_faults(&fault),
            )
        };
        let one = run(1);
        assert_eq!(one.quarantined_chunks, 1);
        assert_eq!(one.chunks_done, 2);
        assert_eq!(one.retries, 1);
        assert!(one.result.is_some(), "surviving chunks still summarize");
        let four = run(4);
        assert_eq!(stat_bits(&one), stat_bits(&four));
        assert_eq!(four.quarantined_chunks, 1);
    }
}
