module nothing ();
endmodule
