module broken (a, b, x);
  input a, b;
  output x;
  nand g1 (x, a, b;
endmodule
