module broken (a, x);
  input a;
  output x;
  nand g1 (x, a, phantom);
endmodule
