module broken (a, b, c, x);
  input a, b, c;
  output x;
  majority g1 (x, a, b, c);
endmodule
