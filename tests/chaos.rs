//! Network-chaos integration tests: a stock daemon behind the
//! [`ChaosProxy`] fault relay, driven by hostile wire behavior —
//! byte-chopped writes, mid-line stalls, abrupt disconnects,
//! half-closed clients, connect floods. The invariant under every plan:
//! the daemon never wedges (`open_connections` returns to zero), and a
//! fresh clean client afterwards is served **byte-identically** to a
//! one-shot batch run.
//!
//! Gated on `--features fault-injection`, like `tests/faults.rs`.
#![cfg(feature = "fault-injection")]

use statim::core::engine::{SstaConfig, SstaEngine};
use statim::core::report::deterministic_report;
use statim::core::service::ServiceConfig;
use statim::netlist::generators::iscas85::{self, Benchmark};
use statim::netlist::{Placement, PlacementStyle};
use statim::server::{daemon, ChaosPlan, ChaosProxy, Client, DaemonHandle, GREETING};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

const QUALITY: &[(&str, &str)] = &[("quality-intra", "40"), ("quality-inter", "20")];
const WAIT: Duration = Duration::from_secs(120);

fn opts(extra: &[(&str, &str)]) -> Vec<(String, String)> {
    QUALITY
        .iter()
        .chain(extra)
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

fn batch_report(bench: Benchmark, top: usize) -> String {
    let circuit = iscas85::generate(bench);
    let placement = Placement::generate(&circuit, PlacementStyle::Levelized);
    let mut config = SstaConfig::date05();
    config.quality_intra = 40;
    config.quality_inter = 20;
    let report = SstaEngine::new(config)
        .run(&circuit, &placement)
        .expect("batch run");
    deterministic_report(&report, top)
}

fn proxy(handle: &DaemonHandle, plan: &str) -> ChaosProxy {
    let plan: ChaosPlan = plan.parse().expect("chaos plan");
    ChaosProxy::spawn(&handle.addr().to_string(), plan).expect("spawn proxy")
}

/// Polls `open_connections` down to `want` with a bounded grace window.
fn wait_for_open_connections(handle: &DaemonHandle, want: usize) -> usize {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let open = handle.open_connections();
        if open == want || Instant::now() >= deadline {
            return open;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// The post-chaos health check: registry drained, and a fresh direct
/// client is served byte-identically to the batch reference.
fn assert_daemon_clean(handle: &DaemonHandle) {
    assert_eq!(
        wait_for_open_connections(handle, 0),
        0,
        "registry must drain after chaos"
    );
    let mut client = Client::connect(&handle.addr().to_string()).expect("clean connect");
    let (id, _) = client.submit("@c432", &opts(&[])).expect("clean submit");
    client.wait(id, WAIT).expect("clean wait");
    assert_eq!(
        client.result(id, Some(5)).expect("clean result"),
        batch_report(Benchmark::C432, 5),
        "served bytes drifted after chaos"
    );
}

#[test]
fn chopped_and_stalled_sessions_serve_byte_identical_reports() {
    let handle = daemon::spawn("127.0.0.1:0", ServiceConfig::default()).expect("spawn");
    // 1-byte writes with a 30 ms freeze mid-greeting: maximal
    // fragmentation plus a slow client, on one connection.
    let mut chaos = proxy(&handle, "seed=3;chop@1;stall@14:30");
    let mut client = Client::connect(&chaos.addr().to_string()).expect("connect via proxy");
    let (id, from_store) = client.submit("@c432", &opts(&[])).expect("submit");
    assert!(!from_store);
    client.wait(id, WAIT).expect("wait");
    assert_eq!(
        client.result(id, Some(5)).expect("result"),
        batch_report(Benchmark::C432, 5),
        "chopped session must serve the exact batch bytes"
    );
    drop(client);
    chaos.shutdown();
    assert_daemon_clean(&handle);
    let mut client = Client::connect(&handle.addr().to_string()).expect("connect");
    client.shutdown().expect("shutdown");
    handle.join();
}

#[test]
fn seeded_random_chopping_replays_identically() {
    let handle = daemon::spawn("127.0.0.1:0", ServiceConfig::default()).expect("spawn");
    for round in 0..2 {
        let mut chaos = proxy(&handle, "seed=11;chop-random@5");
        let mut client = Client::connect(&chaos.addr().to_string()).expect("connect");
        let (id, _) = client.submit("@c499", &opts(&[])).expect("submit");
        client.wait(id, WAIT).expect("wait");
        assert_eq!(
            client.result(id, Some(5)).expect("result"),
            batch_report(Benchmark::C499, 5),
            "round {round}"
        );
        drop(client);
        chaos.shutdown();
    }
    assert_daemon_clean(&handle);
    let mut client = Client::connect(&handle.addr().to_string()).expect("connect");
    client.shutdown().expect("shutdown");
    handle.join();
}

#[test]
fn mid_request_disconnects_never_wedge_the_daemon() {
    let handle = daemon::spawn("127.0.0.1:0", ServiceConfig::default()).expect("spawn");
    let session = b"HELLO 1.1\nSUBMIT @c432 quality-intra=40 quality-inter=20\n";
    // Kill mid-greeting, mid-verb, and one byte before the final
    // newline — every cut lands inside a line.
    for cut in [4usize, 16, session.len() - 1] {
        let mut chaos = proxy(&handle, &format!("rst@{cut}"));
        let mut stream = TcpStream::connect(chaos.addr()).expect("connect");
        let _ = stream.write_all(session);
        let _ = stream.flush();
        // Drain whatever survived the cut; the proxy kills the relay at
        // exactly `cut` bytes, so the daemon saw a torn request.
        let mut sink = Vec::new();
        let _ = std::io::Read::read_to_end(&mut stream, &mut sink);
        drop(stream);
        chaos.shutdown();
        assert_eq!(
            wait_for_open_connections(&handle, 0),
            0,
            "cut at byte {cut} wedged the registry"
        );
    }
    assert_daemon_clean(&handle);
    let mut client = Client::connect(&handle.addr().to_string()).expect("connect");
    client.shutdown().expect("shutdown");
    handle.join();
}

#[test]
fn half_closed_clients_still_get_their_replies() {
    let handle = daemon::spawn("127.0.0.1:0", ServiceConfig::default()).expect("spawn");
    let session = "HELLO 1.1\nSUBMIT @c432 quality-intra=40 quality-inter=20\n";
    // FIN exactly after the last request byte: the daemon must process
    // the complete pipeline and deliver both replies to the half-closed
    // peer before closing.
    let mut chaos = proxy(&handle, &format!("half-close@{}", session.len()));
    let stream = TcpStream::connect(chaos.addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    let mut read_line = move || {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read");
        line.trim_end().to_string()
    };
    assert_eq!(read_line(), GREETING);
    writer.write_all(session.as_bytes()).expect("write");
    writer.flush().expect("flush");
    assert_eq!(read_line(), "OK HELLO 1.1");
    let reply = read_line();
    assert!(
        reply.starts_with("OK SUBMIT job-") && reply.ends_with(" queued"),
        "{reply}"
    );
    let id: statim::core::JobId = reply
        .split_whitespace()
        .nth(2)
        .expect("job id")
        .parse()
        .expect("job id parses");
    drop(writer);
    chaos.shutdown();

    // The job a half-closed client queued still runs to completion.
    let mut client = Client::connect(&handle.addr().to_string()).expect("connect");
    client.wait(id, WAIT).expect("wait");
    assert_eq!(
        client.result(id, Some(5)).expect("result"),
        batch_report(Benchmark::C432, 5)
    );
    drop(client);
    assert_daemon_clean(&handle);
    let mut client = Client::connect(&handle.addr().to_string()).expect("connect");
    client.shutdown().expect("shutdown");
    handle.join();
}

#[test]
fn connect_floods_shed_cleanly_and_recover() {
    let handle = daemon::spawn_tuned(
        "127.0.0.1:0",
        ServiceConfig::default(),
        daemon::DaemonTuning {
            max_conns: 4,
            io_timeout: Some(Duration::from_millis(100)),
            ..daemon::DaemonTuning::default()
        },
    )
    .expect("spawn");

    // 16 silent connections against 4 slots: the overflow is shed with
    // typed refusals, the squatters are reaped by the progress
    // deadline, and every one is accounted for.
    let mut chaos = proxy(&handle, "flood@16");
    let deadline = Instant::now() + Duration::from_secs(10);
    while handle.shed_connections() + handle.reaped_connections() < 16 && Instant::now() < deadline
    {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(
        handle.shed_connections() + handle.reaped_connections(),
        16,
        "shed {} + reaped {} must cover the whole flood",
        handle.shed_connections(),
        handle.reaped_connections()
    );
    assert!(handle.shed_connections() >= 12, "most of the flood is shed");
    chaos.shutdown();
    assert_daemon_clean(&handle);
    let mut client = Client::connect(&handle.addr().to_string()).expect("connect");
    client.shutdown().expect("shutdown");
    handle.join();
}

#[test]
fn mini_soak_slowloris_and_flood_leave_daemon_clean() {
    // Sustained abuse: every round hits the daemon with a flood, a
    // slowloris, and a mid-request disconnect while a clean client
    // keeps demanding byte-identical store hits. Rounds repeat until
    // the soak budget (STATIM_SOAK_SECS, default 2) is spent — CI runs
    // the long version.
    let secs: u64 = std::env::var("STATIM_SOAK_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    let dir = std::env::temp_dir().join(format!("statim-chaos-soak-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let handle = daemon::spawn_tuned(
        "127.0.0.1:0",
        ServiceConfig {
            store_dir: Some(dir.clone()),
            ..ServiceConfig::default()
        },
        daemon::DaemonTuning {
            max_conns: 32,
            io_timeout: Some(Duration::from_millis(100)),
            ..daemon::DaemonTuning::default()
        },
    )
    .expect("spawn");
    let reference = {
        let mut client = Client::connect(&handle.addr().to_string()).expect("connect");
        let (id, _) = client.submit("@c432", &opts(&[])).expect("warm");
        client.wait(id, WAIT).expect("warm wait");
        client.result(id, Some(5)).expect("warm result")
    };
    assert_eq!(reference, batch_report(Benchmark::C432, 5));

    let deadline = Instant::now() + Duration::from_secs(secs);
    let mut rounds = 0u64;
    while Instant::now() < deadline {
        rounds += 1;
        let mut flood = proxy(&handle, "flood@8");
        let mut cutter = proxy(&handle, "rst@20");
        // Slowloris: greet, then freeze mid-verb until reaped.
        let slow = TcpStream::connect(handle.addr()).expect("slow connect");
        {
            let mut slow = slow.try_clone().expect("clone");
            slow.write_all(b"HELLO 1.1\nSTA").expect("partial");
            slow.flush().expect("flush");
        }
        // Mid-request disconnect through the cutting proxy.
        {
            let mut s = TcpStream::connect(cutter.addr()).expect("connect");
            let _ = s.write_all(b"HELLO 1.1\nSUBMIT @c432 quality-intra=40\n");
            let _ = s.flush();
        }
        // The clean client, in the thick of it, gets exact bytes.
        let mut client =
            Client::connect_tagged(&handle.addr().to_string(), "soak-clean").expect("connect");
        let (id, from_store) = client.submit("@c432", &opts(&[])).expect("submit");
        assert!(from_store, "round {rounds}: store hit expected");
        assert_eq!(
            client.result(id, Some(5)).expect("result"),
            reference,
            "round {rounds}: served bytes drifted mid-chaos"
        );
        drop(client);
        drop(slow);
        cutter.shutdown();
        flood.shutdown();
    }
    assert!(rounds >= 1, "soak budget too small to run a round");
    assert_daemon_clean(&handle);
    let mut client = Client::connect(&handle.addr().to_string()).expect("connect");
    let stats = client.stats().expect("stats");
    assert!(stats.contains("shed-connections:"), "{stats}");
    client.shutdown().expect("shutdown");
    handle.join();
    let _ = std::fs::remove_dir_all(&dir);
}
