//! Integration tests of the analysis-kernel cache: property-style
//! bit-identity of hits against fresh recomputes, and counter sanity on
//! a real benchmark run (the bushy c499 path set, where hit rates are
//! high by construction).

use proptest::prelude::*;
use statim::core::analyze::AnalysisSettings;
use statim::core::cache::AnalysisCache;
use statim::core::engine::{SstaConfig, SstaEngine, SstaReport};
use statim::core::{inter, intra};
use statim::netlist::generators::iscas85::{self, Benchmark};
use statim::netlist::{Placement, PlacementStyle};
use statim::process::tech::AlphaBeta;
use statim::process::Technology;
use statim::stats::Pdf;

fn assert_bits_identical(a: &Pdf, b: &Pdf, label: &str) {
    assert_eq!(
        a.grid().lo().to_bits(),
        b.grid().lo().to_bits(),
        "{label}: grid lo"
    );
    assert_eq!(
        a.grid().step().to_bits(),
        b.grid().step().to_bits(),
        "{label}: grid step"
    );
    assert_eq!(a.density().len(), b.density().len(), "{label}: cells");
    for (i, (x, y)) in a.density().iter().zip(b.density()).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{label}: density[{i}]");
    }
}

/// Small discretizations keep the property-test kernels fast; the cache
/// logic is identical at any quality.
fn fast_settings() -> AnalysisSettings {
    let mut s = AnalysisSettings::date05();
    s.quality_intra = 24;
    s.quality_inter = 12;
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // A cached inter-die PDF hit is bit-for-bit the PDF a fresh
    // recompute produces, for arbitrary summed (A, B) coefficients.
    #[test]
    fn inter_hit_bits_equal_fresh_recompute(
        alpha_scale in 0.5..40.0f64,
        beta_scale in 0.5..40.0f64,
    ) {
        let tech = Technology::cmos130();
        let s = fast_settings();
        let one = tech.alpha_beta(
            statim::process::GateKind::Nand(2),
            &statim::process::Load::fanout(2),
        );
        let ab = AlphaBeta {
            alpha: one.alpha * alpha_scale,
            beta: one.beta * beta_scale,
        };
        let compute = || {
            inter::inter_pdf(&ab, &tech, &s.vars, &s.layers, s.marginal, s.quality_inter)
        };
        let cache = AnalysisCache::new(&tech, &s);
        let first = cache.inter_pdf(&ab, compute).unwrap();
        let hit = cache
            .inter_pdf(&ab, || panic!("hit must not recompute"))
            .unwrap();
        let fresh = compute().unwrap();
        assert_bits_identical(&hit, &first, "hit vs first");
        assert_bits_identical(&hit, &fresh, "hit vs fresh");
    }

    // Same property for the closed-form intra-die PDF keyed by variance.
    #[test]
    fn intra_hit_bits_equal_fresh_recompute(variance in 1e-26..1e-21f64) {
        let tech = Technology::cmos130();
        let s = fast_settings();
        let compute = || intra::intra_pdf(variance, s.vars.trunc_k, s.quality_intra);
        let cache = AnalysisCache::new(&tech, &s);
        let first = cache.intra_pdf(variance, compute).unwrap();
        let hit = cache
            .intra_pdf(variance, || panic!("hit must not recompute"))
            .unwrap();
        let fresh = compute().unwrap();
        assert_bits_identical(&hit, &first, "hit vs first");
        assert_bits_identical(&hit, &fresh, "hit vs fresh");
    }
}

fn run_c499(cache: bool) -> SstaReport {
    run_c499_capped(cache, None)
}

fn run_c499_capped(cache: bool, capacity: Option<usize>) -> SstaReport {
    let circuit = iscas85::generate(Benchmark::C499);
    let placement = Placement::generate(&circuit, PlacementStyle::Levelized);
    // A wide window pulls in hundreds of structurally similar paths
    // (where the cache earns its keep); reduced QUALITY keeps the dev
    // profile test fast without changing any cache-key collision.
    let mut config = SstaConfig::date05().with_confidence(10.0).with_cache(cache);
    config.quality_intra = 40;
    config.quality_inter = 20;
    config.cache_capacity = capacity;
    SstaEngine::new(config)
        .run(&circuit, &placement)
        .expect("SSTA flow")
}

#[test]
fn c499_cache_counters_sane() {
    let report = run_c499(true);
    let stats = report.profile.cache.expect("cache enabled by default");
    // Per-kernel and total accounting closes.
    assert_eq!(stats.hits() + stats.misses(), stats.lookups());
    // Every closed-form path analysis does exactly one lookup per
    // kernel, so the three kernels see the same traffic.
    let inter = stats.inter_hits + stats.inter_misses;
    let intra = stats.intra_hits + stats.intra_misses;
    let corner = stats.corner_hits + stats.corner_misses;
    assert_eq!(inter, intra);
    assert_eq!(inter, corner);
    assert!(inter >= report.num_paths as u64);
    // c499's near-critical paths share structure: the cache must
    // actually hit, and hold fewer PDFs than lookups it served.
    assert!(
        stats.hit_rate() > 0.0,
        "hit rate must be positive on c499, stats: {stats:?}"
    );
    assert!(stats.inter_hits > 0, "no inter hits on c499: {stats:?}");
    assert!(stats.entries > 0);
    assert!((stats.entries as u64) < stats.lookups());
    // The corner point is computed once per run.
    assert_eq!(stats.corner_misses, 1);
}

#[test]
fn c499_bounded_cache_evicts_but_stays_bit_identical() {
    let unbounded = run_c499(true);
    let bounded = run_c499_capped(true, Some(16));

    // The tiny cap forces real second-chance evictions on c499's
    // hundreds of distinct kernels...
    let stats = bounded.profile.cache.expect("cache enabled");
    assert!(stats.evictions > 0, "cap 16 must evict, stats: {stats:?}");
    // The cap is per kernel map (inter and intra each hold ≤ 16), plus
    // the one corner point per settings fingerprint.
    assert!(
        stats.entries <= 2 * 16 + 1,
        "entries must respect the cap, stats: {stats:?}"
    );
    assert_eq!(
        run_c499(true).profile.cache.expect("cache").evictions,
        0,
        "unbounded runs never evict"
    );

    // ...and eviction is invisible in the results: every ranked path is
    // bit-for-bit the unbounded run's.
    assert_eq!(unbounded.num_paths, bounded.num_paths);
    assert_eq!(unbounded.sigma_c.to_bits(), bounded.sigma_c.to_bits());
    for (a, b) in unbounded.paths.iter().zip(&bounded.paths) {
        assert_eq!(a.prob_rank, b.prob_rank);
        assert_eq!(
            a.analysis.confidence_point.to_bits(),
            b.analysis.confidence_point.to_bits()
        );
        assert_bits_identical(&a.analysis.total_pdf, &b.analysis.total_pdf, "total pdf");
    }
}

#[test]
fn zero_cache_capacity_is_a_config_error() {
    let circuit = iscas85::generate(Benchmark::C432);
    let placement = Placement::generate(&circuit, PlacementStyle::Levelized);
    let config = SstaConfig::date05().with_cache_capacity(Some(0));
    let err = SstaEngine::new(config)
        .run(&circuit, &placement)
        .expect_err("capacity 0 must be rejected");
    assert!(err.to_string().contains("cache"), "{err}");
}

#[test]
fn c499_report_identical_with_cache_off() {
    let on = run_c499(true);
    let off = run_c499(false);
    assert!(off.profile.cache.is_none());
    assert_eq!(on.num_paths, off.num_paths);
    assert_eq!(on.sigma_c.to_bits(), off.sigma_c.to_bits());
    assert_eq!(
        on.worst_case_delay.to_bits(),
        off.worst_case_delay.to_bits()
    );
    for (a, b) in on.paths.iter().zip(&off.paths) {
        assert_eq!(a.prob_rank, b.prob_rank);
        assert_eq!(a.det_rank, b.det_rank);
        assert_eq!(
            a.analysis.confidence_point.to_bits(),
            b.analysis.confidence_point.to_bits()
        );
        assert_bits_identical(&a.analysis.total_pdf, &b.analysis.total_pdf, "total pdf");
    }
}
