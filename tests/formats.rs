//! Cross-crate format tests: `.bench` and DEF-lite round trips must
//! preserve the statistical analysis bit for bit.

use statim::core::engine::{SstaConfig, SstaEngine};
use statim::netlist::generators::iscas85::{self, Benchmark};
use statim::netlist::{bench_format, def_lite, Placement, PlacementStyle};

#[test]
fn bench_and_def_round_trip_preserves_analysis() {
    let original = iscas85::generate(Benchmark::C432);
    let placement = Placement::generate(&original, PlacementStyle::Levelized);
    let bench_text = bench_format::write(&original);
    let def_text = def_lite::write(&original, &placement);

    let reread = bench_format::parse("c432", &bench_text).expect("parse .bench");
    let def = def_lite::parse(&def_text).expect("parse DEF");
    let replacement = def.placement_for(&reread).expect("placement");

    assert_eq!(reread.gate_count(), original.gate_count());
    assert_eq!(reread.input_count(), original.input_count());
    assert_eq!(reread.output_count(), original.output_count());

    let engine = SstaEngine::new(SstaConfig::date05());
    let a = engine.run(&original, &placement).expect("flow A");
    let b = engine.run(&reread, &replacement).expect("flow B");
    assert_eq!(a.num_paths, b.num_paths);
    // DEF stores coordinates in integer DBU (1 nm at 1000 dbu/µm), so
    // wire loads can shift delays at the sub-femtosecond level.
    let rel = (a.critical().analysis.confidence_point - b.critical().analysis.confidence_point)
        .abs()
        / a.critical().analysis.confidence_point;
    assert!(rel < 1e-6, "round trip drift {rel}");
}

#[test]
fn every_benchmark_round_trips_structurally() {
    for bench in [Benchmark::C499, Benchmark::C1355, Benchmark::C6288] {
        let original = iscas85::generate(bench);
        let text = bench_format::write(&original);
        let reread = bench_format::parse(bench.name(), &text).expect("parse");
        assert_eq!(reread.gate_count(), original.gate_count(), "{bench}");
        assert_eq!(reread.depth(), original.depth(), "{bench}");
        assert_eq!(reread.path_count(), original.path_count(), "{bench}");
    }
}

#[test]
fn real_iscas_c17_parses_and_analyzes() {
    // The genuine c17 netlist, verbatim from the ISCAS85 distribution.
    let c17 = "\
# c17 iscas example
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
";
    let circuit = bench_format::parse("c17", c17).expect("parse c17");
    let placement = Placement::generate(&circuit, PlacementStyle::Levelized);
    let report = SstaEngine::new(SstaConfig::date05().with_confidence(1.0))
        .run(&circuit, &placement)
        .expect("flow");
    // c17 has 11 PI→PO paths, all within one σ_C of the critical delay
    // at C = 1 except possibly the shortest few.
    assert!(report.num_paths >= 2);
    assert!(report.det_critical_delay > 10e-12);
    assert_eq!(report.critical().analysis.gate_count(), 3);
}
