//! End-to-end integration tests across all workspace crates: generator →
//! placement → characterization → deterministic analysis → probabilistic
//! analysis → ranking, asserting the *shape* of the paper's findings.

use statim::core::engine::{SstaConfig, SstaEngine, SstaReport};
use statim::core::LayerModel;
use statim::netlist::generators::iscas85::{self, Benchmark};
use statim::netlist::{Placement, PlacementStyle};

fn run(bench: Benchmark, config: SstaConfig) -> SstaReport {
    let circuit = iscas85::generate(bench);
    let placement = Placement::generate(&circuit, PlacementStyle::Levelized);
    SstaEngine::new(config)
        .run(&circuit, &placement)
        .expect("SSTA flow")
}

/// The paper's headline: worst-case analysis overestimates the 3σ point
/// of the probabilistic critical delay by roughly 50% on every circuit
/// (48–62% in Table 2, 55% average).
#[test]
fn worst_case_overestimates_by_about_half() {
    let mut total = 0.0;
    let benches = [
        Benchmark::C432,
        Benchmark::C499,
        Benchmark::C880,
        Benchmark::C1908,
    ];
    for bench in benches {
        let report = run(bench, SstaConfig::date05());
        let over = report.overestimation_pct;
        assert!(
            (38.0..72.0).contains(&over),
            "{bench}: overestimation {over}% outside the paper's neighbourhood"
        );
        total += over;
    }
    let avg = total / benches.len() as f64;
    assert!((45.0..60.0).contains(&avg), "average overestimation {avg}%");
}

/// Table 2 consistency invariants that must hold for any circuit.
#[test]
fn report_internal_consistency() {
    let report = run(Benchmark::C432, SstaConfig::date05());
    let crit = report.critical();
    // Worst case dominates the 3σ point dominates the mean.
    assert!(report.worst_case_delay > crit.analysis.confidence_point);
    assert!(crit.analysis.confidence_point > crit.analysis.mean);
    // The deterministic critical delay equals the det-rank-1 path delay.
    let det1 = report
        .paths
        .iter()
        .find(|p| p.det_rank == 1)
        .expect("det rank 1");
    assert!(
        (det1.analysis.det_delay - report.det_critical_delay).abs()
            < 1e-12 * report.det_critical_delay
    );
    // σ decomposition: total² ≈ inter² + intra².
    let a = &crit.analysis;
    let rebuilt = (a.inter_sigma.powi(2) + a.intra_sigma.powi(2)).sqrt();
    assert!((a.sigma - rebuilt).abs() / rebuilt < 0.05);
    // Mean differs from the deterministic delay (non-linearity) but only
    // slightly.
    assert!(a.mean != a.det_delay);
    assert!((a.mean - a.det_delay).abs() / a.det_delay < 0.02);
}

/// The paper's Table 3: more inter-die share ⇒ larger total σ, smaller
/// intra σ, at the same total variability.
#[test]
fn inter_share_scenarios_match_table3_shape() {
    let shares = [0.0, 0.5, 0.75];
    let mut prev_total = 0.0;
    let mut prev_intra = f64::INFINITY;
    for &share in &shares {
        let report = run(
            Benchmark::C432,
            SstaConfig::date05().with_layers(LayerModel::with_inter_share(share)),
        );
        let a = &report.critical().analysis;
        assert!(a.sigma > prev_total, "total σ must grow with inter share");
        assert!(
            a.intra_sigma < prev_intra,
            "intra σ must shrink with inter share"
        );
        if share == 0.0 {
            assert!(a.inter_sigma < 1e-15, "0% inter ⇒ no inter σ");
        }
        prev_total = a.sigma;
        prev_intra = a.intra_sigma;
    }
}

/// Figs. 5/6: the bushy c1355 reorders heavily under statistical
/// ranking, the well-separated c7552 does not.
#[test]
fn rank_migration_contrast() {
    let mut config = SstaConfig::date05().with_confidence(0.3);
    config.max_paths = 20_000;
    let bushy = run(Benchmark::C1355, config.clone());
    let separated = run(Benchmark::C7552, config);
    let shift = |r: &SstaReport| statim::core::rank::mean_rank_shift(&r.paths, 100);
    let (s_bushy, s_sep) = (shift(&bushy), shift(&separated));
    assert!(
        s_bushy > 5.0 * s_sep.max(0.5),
        "c1355 shift {s_bushy} must dwarf c7552 shift {s_sep}"
    );
    // And c1355 admits far more near-critical paths.
    assert!(bushy.num_paths > 2 * separated.num_paths);
}

/// Placement feeds the spatial-correlation model: random vs. levelized
/// placement must change the intra-die variance (ablation 5).
#[test]
fn placement_style_changes_intra_sigma() {
    let circuit = iscas85::generate(Benchmark::C432);
    let engine = SstaEngine::new(SstaConfig::date05());
    let lev = engine
        .run(
            &circuit,
            &Placement::generate(&circuit, PlacementStyle::Levelized),
        )
        .expect("levelized");
    let rnd = engine
        .run(
            &circuit,
            &Placement::generate(&circuit, PlacementStyle::Random(1)),
        )
        .expect("random");
    let a = lev.critical().analysis.intra_sigma;
    let b = rnd.critical().analysis.intra_sigma;
    assert!(
        (a - b).abs() > 1e-4 * a,
        "placement must matter: {a} vs {b}"
    );
}

/// The whole flow is deterministic: identical runs, identical reports.
#[test]
fn flow_is_deterministic() {
    let a = run(Benchmark::C499, SstaConfig::date05());
    let b = run(Benchmark::C499, SstaConfig::date05());
    assert_eq!(a.num_paths, b.num_paths);
    assert_eq!(a.det_critical_delay, b.det_critical_delay);
    assert_eq!(
        a.critical().analysis.confidence_point,
        b.critical().analysis.confidence_point
    );
    assert_eq!(a.critical().analysis.gates, b.critical().analysis.gates);
}

/// Every benchmark generates, places and survives at least the
/// deterministic + critical-path probabilistic analysis.
#[test]
fn all_benchmarks_analyzable() {
    for bench in Benchmark::ALL {
        // A tiny confidence keeps even c6288 fast.
        let mut config = SstaConfig::date05().with_confidence(0.0);
        config.max_paths = 5_000;
        let report = run(bench, config);
        assert!(report.num_paths >= 1, "{bench}");
        assert!(report.det_critical_delay > 50e-12, "{bench}");
        assert!(report.overestimation_pct > 20.0, "{bench}");
    }
}
