//! Hardened-ingestion corpus: every file under `tests/corpus/` is a
//! deliberately malformed netlist or placement. Each must come back as
//! a **typed** error — classified `Parse` through the [`StatimError`]
//! taxonomy, with source line/column where the table says the parser
//! can know one — and must never panic.

use statim::core::{ErrorClass, StatimError};
use statim::netlist::{bench_format, def_lite, verilog, NetlistError};
use std::fs;
use std::path::Path;

#[derive(Clone, Copy)]
enum Format {
    Bench,
    Verilog,
    Def,
}

/// filename → (format, expects a source location, message fragment).
/// Errors raised while *resolving* names (undefined nets, cycles) have
/// no single offending character, so they carry no line/col.
const CORPUS: &[(&str, Format, bool, &str)] = &[
    ("bench_truncated_gate.bench", Format::Bench, true, ""),
    ("bench_unknown_gate.bench", Format::Bench, false, "MAJ"),
    ("bench_undefined_net.bench", Format::Bench, false, "ghost"),
    ("bench_duplicate_gate.bench", Format::Bench, false, "x"),
    ("bench_empty.bench", Format::Bench, true, "empty"),
    ("bench_cyclic.bench", Format::Bench, false, ""),
    ("bench_garbage_line.bench", Format::Bench, true, ""),
    ("bench_missing_rhs.bench", Format::Bench, true, ""),
    (
        "bench_bad_clock_period.bench",
        Format::Bench,
        true,
        "clock period",
    ),
    (
        "bench_unknown_clock_field.bench",
        Format::Bench,
        true,
        "frequency",
    ),
    (
        "bench_constraint_missing_value.bench",
        Format::Bench,
        true,
        "constraint hold needs a value",
    ),
    ("verilog_missing_paren.v", Format::Verilog, true, ""),
    ("verilog_unknown_prim.v", Format::Verilog, false, "majority"),
    ("verilog_empty_module.v", Format::Verilog, true, "empty"),
    ("verilog_undefined_net.v", Format::Verilog, false, "phantom"),
    ("def_missing_diearea.def", Format::Def, false, "DIEAREA"),
    ("def_unplaced_component.def", Format::Def, true, ""),
    ("def_bad_coordinate.def", Format::Def, true, ""),
];

fn corpus_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

fn parse_file(format: Format, name: &str, text: &str) -> Result<(), NetlistError> {
    match format {
        Format::Bench => bench_format::parse(name, text).map(|_| ()),
        Format::Verilog => verilog::parse(text).map(|_| ()),
        Format::Def => def_lite::parse(text).map(|_| ()),
    }
}

#[test]
fn every_corpus_file_fails_with_a_typed_parse_error() {
    for &(file, format, wants_location, fragment) in CORPUS {
        let path = corpus_dir().join(file);
        let text = fs::read_to_string(&path).unwrap_or_else(|e| panic!("{file}: {e}"));
        let err = parse_file(format, file, &text)
            .expect_err(&format!("{file}: malformed input must not parse"));
        let flat: StatimError = StatimError::from(err.clone()).with_file(file);
        assert_eq!(flat.class, ErrorClass::Parse, "{file}: {err:?}");
        if wants_location {
            let (line, col) = (flat.line, flat.col);
            assert!(
                line.is_some_and(|l| l >= 1),
                "{file}: expected a source line, got {err:?}"
            );
            assert!(
                col.is_some_and(|c| c >= 1),
                "{file}: expected a source column, got {err:?}"
            );
            // The rendered form points at file:line:col.
            let shown = flat.to_string();
            assert!(shown.contains(&format!("{file}:")), "{file}: {shown}");
        }
        if !fragment.is_empty() {
            assert!(
                err.to_string().contains(fragment),
                "{file}: `{err}` should name `{fragment}`"
            );
        }
    }
}

#[test]
fn corpus_and_table_stay_in_sync() {
    // Every corpus file is listed, and every listed file exists — a new
    // bad input can't silently skip classification.
    // Subdirectories hold other corpora (e.g. protocol/ for the wire
    // protocol); only the netlist files at the top level are ours.
    let mut on_disk: Vec<String> = fs::read_dir(corpus_dir())
        .expect("corpus dir")
        .map(|e| e.expect("entry"))
        .filter(|e| e.file_type().expect("file type").is_file())
        .map(|e| e.file_name().into_string().expect("utf-8"))
        .collect();
    on_disk.sort();
    let mut listed: Vec<String> = CORPUS.iter().map(|&(f, ..)| f.to_string()).collect();
    listed.sort();
    assert_eq!(on_disk, listed);
    assert!(listed.len() >= 15, "corpus shrank below 15 files");
}

#[test]
fn well_formed_inputs_still_parse() {
    // Control: the hardened parsers haven't become over-strict.
    let bench = "INPUT(a)\nINPUT(b)\nx = NAND(a, b)\nOUTPUT(x)\n";
    assert!(bench_format::parse("ok", bench).is_ok());
    let v = "module ok (a, x);\n  input a;\n  output x;\n  not g1 (x, a);\nendmodule\n";
    assert!(verilog::parse(v).is_ok());
    let def = "DESIGN ok ;\nDIEAREA ( 0 0 ) ( 1000 1000 ) ;\nCOMPONENTS 0 ;\nEND COMPONENTS\n";
    assert!(def_lite::parse(def).is_ok());
}
