//! Integration suite for the sequential timing subsystem.
//!
//! Pins the four contracts `statim seq` ships with:
//!
//! 1. **Determinism** — setup/hold reports are bit-identical for any
//!    thread count, with the kernel cache on or off, under both
//!    convolution backends (each backend against its own baseline), and
//!    the two backends agree to ~1e-9 relative on every moment.
//! 2. **Physics** — the analytic check distribution matches a seeded
//!    Monte-Carlo resimulation of the same model (shared inter-die
//!    operating point through the effective (α, β), independent
//!    intra-die Gaussian) to a few parts in a thousand of CDF mass.
//! 3. **Derates** — unity derates reduce bitwise to the underivated
//!    analysis; asymmetric derates strictly eat slack on both check
//!    kinds.
//! 4. **Typed rejection** — the corpus netlists under
//!    `tests/corpus/sequential/` parse cleanly but are refused with
//!    typed Config errors by the combinational analyze flow and the ECO
//!    editor, naming the offending register and line.

use rand::rngs::StdRng;
use rand::SeedableRng;
use statim::core::report::deterministic_sequential_report;
use statim::core::sequential::{hold_yield, min_period, setup_yield_at};
use statim::core::{
    apply_edits, CheckKind, ConvolveBackend, CoreError, Derates, EcoScript, ErrorClass,
    SequentialConfig, SequentialEngine, SequentialReport, SstaConfig, SstaEngine, StatimError,
};
use statim::netlist::generators::sequential::{pipeline, s27};
use statim::netlist::{bench_format, Circuit, Placement, PlacementStyle};
use statim::process::gate_delay;
use statim::process::param::PerParam;
use statim::process::OperatingPoint;
use statim::stats::sample::truncated_normal;
use std::path::Path;

/// Quality knobs small enough for a 12-run matrix, large enough that
/// yields are stable in the 6th decimal.
fn quick_config() -> SequentialConfig {
    let mut config = SequentialConfig::date05();
    config.ssta.quality_intra = 40;
    config.ssta.quality_inter = 20;
    config
}

fn run_seq(circuit: &Circuit, config: SequentialConfig) -> SequentialReport {
    let placement = Placement::generate(circuit, PlacementStyle::Levelized);
    SequentialEngine::new(config)
        .run(circuit, &placement)
        .expect("sequential flow succeeds")
}

/// Every numeric field of the report must match to the bit, including
/// the full density tables of the per-check kernels.
fn assert_seq_identical(a: &SequentialReport, b: &SequentialReport, label: &str) {
    assert_eq!(a.checks.len(), b.checks.len(), "{label}: check count");
    for (i, (ca, cb)) in a.checks.iter().zip(&b.checks).enumerate() {
        assert_eq!(ca.kind, cb.kind, "{label}: check {i} kind");
        assert_eq!(ca.capture, cb.capture, "{label}: check {i} capture");
        assert_eq!(ca.launch, cb.launch, "{label}: check {i} launch");
        assert_eq!(ca.data_gates, cb.data_gates, "{label}: check {i} path");
        for (name, x, y) in [
            ("var_eff", ca.var_eff, cb.var_eff),
            ("nominal_x", ca.nominal_x, cb.nominal_x),
            ("slack_mean", ca.slack_mean, cb.slack_mean),
            ("slack_sigma", ca.slack_sigma, cb.slack_sigma),
            ("yield", ca.yield_at_period, cb.yield_at_period),
        ] {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{label}: check {i} {name} ({x} vs {y})"
            );
        }
        let (da, db) = (ca.x_pdf.density(), cb.x_pdf.density());
        assert_eq!(da.len(), db.len(), "{label}: check {i} density length");
        for (j, (x, y)) in da.iter().zip(db).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{label}: check {i} density[{j}]");
        }
    }
    assert_eq!(
        a.setup_yield.to_bits(),
        b.setup_yield.to_bits(),
        "{label}: setup yield"
    );
    assert_eq!(
        a.hold_yield.to_bits(),
        b.hold_yield.to_bits(),
        "{label}: hold yield"
    );
    assert_eq!(
        a.min_period.map(f64::to_bits),
        b.min_period.map(f64::to_bits),
        "{label}: min period"
    );
    assert_eq!(
        deterministic_sequential_report(a, 20),
        deterministic_sequential_report(b, 20),
        "{label}: rendered report"
    );
}

#[test]
fn reports_are_bit_identical_across_threads_cache_and_within_backend() {
    for circuit in [s27(), pipeline(2, 4).expect("pipeline generator")] {
        for backend in [ConvolveBackend::Grid, ConvolveBackend::Fft] {
            let mut baseline = quick_config();
            baseline.ssta = baseline
                .ssta
                .with_threads(1)
                .with_cache(false)
                .with_backend(backend);
            let reference = run_seq(&circuit, baseline);
            assert!(!reference.checks.is_empty());
            for threads in [1usize, 2, 4] {
                for cache in [false, true] {
                    let mut config = quick_config();
                    config.ssta = config
                        .ssta
                        .with_threads(threads)
                        .with_cache(cache)
                        .with_backend(backend);
                    let report = run_seq(&circuit, config);
                    assert_seq_identical(
                        &reference,
                        &report,
                        &format!(
                            "{} {backend} threads={threads} cache={cache}",
                            circuit.name()
                        ),
                    );
                }
            }
        }
    }
}

#[test]
fn grid_and_fft_backends_agree_to_1e9() {
    let rel = |a: f64, b: f64| (a - b).abs() / b.abs().max(f64::MIN_POSITIVE);
    let circuit = s27();
    let mut grid_cfg = quick_config();
    grid_cfg.ssta = grid_cfg.ssta.with_backend(ConvolveBackend::Grid);
    let mut fft_cfg = quick_config();
    fft_cfg.ssta = fft_cfg.ssta.with_backend(ConvolveBackend::Fft);
    let grid = run_seq(&circuit, grid_cfg);
    let fft = run_seq(&circuit, fft_cfg);
    assert_eq!(grid.checks.len(), fft.checks.len());
    for (g, f) in grid.checks.iter().zip(&fft.checks) {
        assert!(rel(g.slack_mean, f.slack_mean) < 1e-9, "slack mean");
        assert!(rel(g.slack_sigma, f.slack_sigma) < 1e-9, "slack sigma");
        assert!(
            (g.yield_at_period - f.yield_at_period).abs() < 1e-9,
            "check yield"
        );
    }
    assert!((grid.setup_yield - fft.setup_yield).abs() < 1e-9);
    assert!((grid.hold_yield - fft.hold_yield).abs() < 1e-9);
    let (g, f) = (
        grid.min_period.expect("solvable"),
        fft.min_period.expect("solvable"),
    );
    assert!(rel(g, f) < 1e-8, "min period {g} vs {f}");
}

#[test]
fn monte_carlo_revalidates_the_setup_check_distribution() {
    // Resimulate the worst setup check's X variable from the same
    // layered model the analytic kernels integrate: one shared
    // inter-die operating point evaluated through the check's effective
    // (α, β) — delay is linear in the coefficients at a fixed point, so
    // the composite evaluates in one `gate_delay` call — plus an
    // independent truncated intra-die Gaussian of variance `var_eff`.
    let circuit = s27();
    let config = SequentialConfig::date05();
    let ssta = config.ssta.clone();
    let report = run_seq(&circuit, config);
    let check = report.worst(CheckKind::Setup).expect("setup checks exist");

    let weights = ssta.layers.weights().expect("layer weights");
    let w0 = weights[0];
    let trunc = ssta.vars.trunc_k;
    let sigma_intra = check.var_eff.sqrt();
    let mut rng = StdRng::seed_from_u64(0x5e9_5127);
    const N: usize = 30_000;
    let samples: Vec<f64> = (0..N)
        .map(|_| {
            let point = OperatingPoint {
                values: PerParam::from_fn(|p| {
                    let sigma = ssta.vars.sigma.get(p) * w0.sqrt();
                    if sigma > 0.0 {
                        truncated_normal(&mut rng, ssta.tech.nominal(p), sigma, trunc)
                    } else {
                        ssta.tech.nominal(p)
                    }
                }),
            };
            let inter = gate_delay(&ssta.tech, &check.ab_eff, &point);
            let intra = if sigma_intra > 0.0 {
                truncated_normal(&mut rng, 0.0, sigma_intra, trunc)
            } else {
                0.0
            };
            inter + intra
        })
        .collect();

    let mean_mc = samples.iter().sum::<f64>() / N as f64;
    let var_mc = samples.iter().map(|x| (x - mean_mc).powi(2)).sum::<f64>() / (N as f64 - 1.0);
    let mean_an = check.x_pdf.mean();
    let sigma_an = check.x_pdf.std_dev();
    assert!(
        (mean_mc - mean_an).abs() / mean_an < 0.01,
        "mean {mean_mc} vs analytic {mean_an}"
    );
    assert!(
        (var_mc.sqrt() - sigma_an).abs() / sigma_an < 0.08,
        "sigma {} vs analytic {sigma_an}",
        var_mc.sqrt()
    );

    // CDF agreement where it matters: the setup yield is the CDF at
    // (period − margin), and the distribution body must match too.
    for t in [
        mean_an - sigma_an,
        mean_an,
        mean_an + sigma_an,
        report.period - check.margin,
    ] {
        let empirical = samples.iter().filter(|&&x| x <= t).count() as f64 / N as f64;
        let analytic = check.x_pdf.cdf(t);
        assert!(
            (empirical - analytic).abs() < 0.02,
            "CDF({t}): empirical {empirical} vs analytic {analytic}"
        );
    }
    let empirical_yield = samples
        .iter()
        .filter(|&&x| x <= report.period - check.margin)
        .count() as f64
        / N as f64;
    assert!((empirical_yield - check.yield_at_period).abs() < 0.02);
}

#[test]
fn unity_derates_reduce_bitwise_and_asymmetric_derates_eat_slack() {
    let circuit = s27();
    let base = run_seq(&circuit, quick_config());
    let mut unity = quick_config();
    unity.derates = Derates {
        early: 1.0,
        late: 1.0,
    };
    assert_seq_identical(&base, &run_seq(&circuit, unity), "unity derates");

    let mut ocv = quick_config();
    ocv.derates = Derates {
        early: 0.95,
        late: 1.05,
    };
    let derated = run_seq(&circuit, ocv);
    for (b, d) in base.checks.iter().zip(&derated.checks) {
        assert!(
            d.slack_mean < b.slack_mean,
            "{} {}: derates must eat slack ({} vs {})",
            b.kind,
            b.capture_name,
            d.slack_mean,
            b.slack_mean
        );
    }
    assert!(derated.setup_yield <= base.setup_yield);
    assert!(derated.hold_yield <= base.hold_yield);
}

#[test]
fn min_period_brackets_cover_the_edge_cases() {
    let report = run_seq(&s27(), quick_config());
    let checks = &report.checks;

    // Invalid targets never solve.
    for target in [0.0, -1.0, 1.5, f64::NAN] {
        assert!(min_period(checks, target).is_none(), "target {target}");
    }
    // No checks, no period.
    assert!(min_period(&[], 0.9).is_none());

    // A lax target solves below the strict one; both meet their target.
    // The total yield is capped by the period-independent hold yield, so
    // the strict target sits just inside that cap.
    let strict_target = hold_yield(checks) * 0.999;
    let strict = min_period(checks, strict_target).expect("strict target solvable");
    let lax = min_period(checks, 0.5).expect("lax target solvable");
    assert!(lax < strict, "lax {lax} vs strict {strict}");
    for (target, period) in [(strict_target, strict), (0.5, lax)] {
        let achieved = setup_yield_at(checks, period) * hold_yield(checks);
        assert!(
            (achieved - target).abs() < 1e-6,
            "target {target}: bisection landed at yield {achieved}"
        );
    }

    // A target above what the (period-independent) hold yield admits is
    // typed unreachable, not an infinite bracket growth.
    let capped = hold_yield(checks) * (1.0 + 1e-9);
    if capped <= 1.0 {
        assert!(min_period(checks, capped).is_none());
    }
}

fn seq_corpus(name: &str) -> Circuit {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/corpus/sequential")
        .join(name);
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{name}: {e}"));
    bench_format::parse(
        Path::new(name)
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap(),
        &text,
    )
    .unwrap_or_else(|e| panic!("{name}: corpus netlist must parse: {e}"))
}

#[test]
fn combinational_flow_rejects_register_netlists_with_a_typed_error() {
    let circuit = seq_corpus("dff_in_combinational.bench");
    let placement = Placement::generate(&circuit, PlacementStyle::Levelized);
    let err = SstaEngine::new(SstaConfig::date05())
        .run(&circuit, &placement)
        .expect_err("registers must not pass the combinational flow");
    assert!(matches!(err, CoreError::InvalidConfig { .. }), "{err:?}");
    let flat = StatimError::from(err);
    assert_eq!(flat.class, ErrorClass::Config);
    // The error names the circuit, the first register and its source
    // line, and points at the sequential flow.
    for needle in ["dff_in_combinational", "q1", "line 7", "statim seq"] {
        assert!(flat.message.contains(needle), "`{needle}` in: {flat}");
    }
}

#[test]
fn eco_editor_rejects_register_netlists_with_a_typed_error() {
    let mut circuit = seq_corpus("eco_on_sequential.bench");
    let script = EcoScript::parse_compact("resize:y:2.0").expect("script parses");
    let err = apply_edits(&mut circuit, &script).expect_err("sequential ECO must be refused");
    assert!(matches!(err, CoreError::InvalidConfig { .. }), "{err:?}");
    let flat = StatimError::from(err);
    assert_eq!(flat.class, ErrorClass::Config);
    for needle in ["eco_on_sequential", "q", "combinational-only"] {
        assert!(flat.message.contains(needle), "`{needle}` in: {flat}");
    }
}
