//! Integration tests for the extension modules working together at the
//! facade level: baselines, bounds, attribution, yield and slack all
//! consuming one engine run.

use statim::core::attribution::attribute_variance;
use statim::core::block_based::block_based_sta;
use statim::core::bounds::delay_cdf_bounds;
use statim::core::characterize::characterize_placed;
use statim::core::engine::{SstaConfig, SstaEngine};
use statim::core::longest_path::topo_labels;
use statim::core::slack::slack_report;
use statim::core::timing_yield::{independent_yield, single_path_yield};
use statim::core::LayerModel;
use statim::netlist::generators::iscas85::{self, Benchmark};
use statim::netlist::{Placement, PlacementStyle};
use statim::process::{Param, Technology, Variations};

#[test]
fn one_run_feeds_every_downstream_analysis() {
    let circuit = iscas85::generate(Benchmark::C432);
    let placement = Placement::generate(&circuit, PlacementStyle::Levelized);
    let tech = Technology::cmos130();
    let vars = Variations::date05();
    let report = SstaEngine::new(SstaConfig::date05().with_confidence(0.5))
        .run(&circuit, &placement)
        .expect("engine");
    let timing = characterize_placed(&circuit, &tech, &placement).expect("characterize");

    // Slack at the worst-case period: everything meets timing (by a lot).
    let labels = topo_labels(&circuit, &timing).expect("labels");
    let slack = slack_report(&circuit, &timing, &labels, report.worst_case_delay).expect("slack");
    assert!(slack.meets_timing());
    // At the deterministic delay the critical gates are at zero slack.
    let at_d = slack_report(&circuit, &timing, &labels, report.det_critical_delay).expect("slack");
    assert!(at_d.worst().1.abs() < 1e-9 * report.det_critical_delay);

    // Yield: the 3σ point carries ≈Φ(3) single-path yield and the
    // independent bound is below it.
    let t3 = report.critical().analysis.confidence_point;
    let y_single = single_path_yield(&report, t3);
    let y_indep = independent_yield(&report.paths, t3);
    assert!(y_single > 0.99);
    assert!(y_indep <= y_single + 1e-12);

    // Bounds: at the 3σ point both bounds are high and ordered.
    let analyses: Vec<_> = report.paths.iter().map(|p| p.analysis.clone()).collect();
    let b = delay_cdf_bounds(&analyses, t3);
    assert!(b.lower <= b.upper);
    assert!(b.upper > 0.99);
    // And the independent yield equals neither bound in general but sits
    // within [lower, upper] too (independence is one admissible copula).
    assert!(y_indep >= b.lower - 1e-9 && y_indep <= b.upper + 1e-9);

    // Attribution: Leff dominates the critical path's variance, matching
    // the Table 1 story.
    let att = attribute_variance(
        &report.critical().analysis.gates,
        &timing,
        &placement,
        &LayerModel::date05(),
        &vars,
    )
    .expect("attribution");
    assert_eq!(att.dominant_param().0, Param::Leff);

    // Block-based baseline: underestimates the path-based σ.
    let block = block_based_sta(&circuit, &timing, &vars, 80).expect("block-based");
    assert!(block.circuit_pdf.std_dev() < report.critical().analysis.sigma);
}

#[test]
fn numerical_intra_and_marginals_through_the_engine() {
    use statim::core::analyze::IntraModel;
    use statim::stats::Marginal;
    let circuit = iscas85::generate(Benchmark::C499);
    let placement = Placement::generate(&circuit, PlacementStyle::Levelized);
    let gaussian = SstaEngine::new(SstaConfig::date05())
        .run(&circuit, &placement)
        .expect("gaussian run");
    let mut config = SstaConfig::date05();
    config.marginal = Marginal::Uniform;
    config.intra_model = IntraModel::Numerical;
    let uniform = SstaEngine::new(config)
        .run(&circuit, &placement)
        .expect("uniform run");
    let g = &gaussian.critical().analysis;
    let u = &uniform.critical().analysis;
    // Same variance budget ⇒ same σ scale; bounded-support inputs trim
    // the extreme tail slightly.
    assert!((g.sigma - u.sigma).abs() / g.sigma < 0.05);
    assert!((g.confidence_point - u.confidence_point).abs() / g.confidence_point < 0.02);
    // The uniform-input total PDF has lighter tails (negative excess
    // kurtosis contribution from the inter part).
    assert!(u.total_pdf.excess_kurtosis() < g.total_pdf.excess_kurtosis() + 0.05);
}

#[test]
fn stage_times_and_report_rendering() {
    let circuit = iscas85::generate(Benchmark::C880);
    let placement = Placement::generate(&circuit, PlacementStyle::Levelized);
    let report = SstaEngine::new(SstaConfig::date05().with_confidence(0.3))
        .run(&circuit, &placement)
        .expect("engine");
    let st = &report.profile;
    assert!(st.characterize.wall >= 0.0 && st.analyze.wall > 0.0);
    assert!(st.analyze.threads >= 1);
    assert!(st.analyze.utilization > 0.0 && st.analyze.utilization <= 1.0);
    let text = statim::core::report::summary(&report);
    assert!(text.contains("c880"));
    let csv = statim::core::report::to_csv(&report);
    assert_eq!(csv.lines().count(), report.num_paths + 1);
}
