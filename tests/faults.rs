//! Adversarial fault-injection harness (needs `--features fault-injection`).
//!
//! Each scenario installs a deterministic [`FaultPlan`] and asserts the
//! engine's graceful-degradation contract: the run completes, exactly
//! the planned paths land in [`SstaReport::degraded`], and every
//! surviving kernel is bit-identical to a fault-free run — at any
//! thread count.

#![cfg(feature = "fault-injection")]

use statim::core::engine::{SstaConfig, SstaEngine, SstaReport};
use statim::core::{CoreError, ErrorClass, FaultPlan};
use statim::netlist::generators::iscas85::{self, Benchmark};
use statim::netlist::{bench_format, GateId, Placement, PlacementStyle};
use std::collections::HashMap;
use std::sync::Arc;

/// Wide enough near-critical window that c432/c499 enumerate well over
/// the indices the plans below target.
const C: f64 = 0.5;

fn run_with_c(
    bench: Benchmark,
    confidence: f64,
    threads: usize,
    plan: Option<Arc<FaultPlan>>,
) -> Result<SstaReport, CoreError> {
    let circuit = iscas85::generate(bench);
    let placement = Placement::generate(&circuit, PlacementStyle::Levelized);
    let mut config = SstaConfig::date05()
        .with_confidence(confidence)
        .with_threads(threads);
    config.faults = plan;
    SstaEngine::new(config).run(&circuit, &placement)
}

fn run(
    bench: Benchmark,
    threads: usize,
    plan: Option<Arc<FaultPlan>>,
) -> Result<SstaReport, CoreError> {
    run_with_c(bench, C, threads, plan)
}

fn plan(spec: &str) -> Arc<FaultPlan> {
    Arc::new(spec.parse::<FaultPlan>().expect("valid plan spec"))
}

/// Kernel bits of every ranked path, keyed by the gate sequence.
fn kernel_bits(r: &SstaReport) -> HashMap<Vec<GateId>, [u64; 3]> {
    r.paths
        .iter()
        .map(|p| {
            (
                p.analysis.gates.clone(),
                [
                    p.analysis.mean.to_bits(),
                    p.analysis.sigma.to_bits(),
                    p.analysis.confidence_point.to_bits(),
                ],
            )
        })
        .collect()
}

/// Asserts every path surviving in `faulted` carries bits identical to
/// the same gate sequence in `free`.
fn assert_survivors_bit_identical(free: &SstaReport, faulted: &SstaReport, label: &str) {
    let free_bits = kernel_bits(free);
    for (gates, bits) in kernel_bits(faulted) {
        let expected = free_bits
            .get(&gates)
            .unwrap_or_else(|| panic!("{label}: surviving path missing from fault-free run"));
        assert_eq!(*expected, bits, "{label}: surviving kernel drifted");
    }
}

#[test]
fn nan_path_degrades_exactly_the_planned_three() {
    let free = run(Benchmark::C432, 1, None).expect("fault-free");
    assert!(
        free.num_paths >= 6,
        "need at least 6 paths to target index 5, got {}",
        free.num_paths
    );
    let faulted = run(Benchmark::C432, 1, Some(plan("nan-path@1,3,5"))).expect("degraded run");
    assert_eq!(faulted.degraded.len(), 3);
    assert_eq!(faulted.profile.degraded, 3);
    assert_eq!(faulted.num_paths, free.num_paths - 3);
    let mut indices: Vec<usize> = faulted.degraded.iter().map(|d| d.index).collect();
    indices.sort();
    assert_eq!(indices, vec![1, 3, 5]);
    for d in &faulted.degraded {
        assert_eq!(d.class, ErrorClass::Numeric);
        assert!(d.reason.contains("non-finite"), "{}", d.reason);
        assert!(!d.gates.is_empty());
    }
    assert_survivors_bit_identical(&free, &faulted, "nan-path");
}

#[test]
fn faulted_run_is_bit_identical_across_thread_counts() {
    let one = run(Benchmark::C432, 1, Some(plan("nan-path@1,3,5"))).expect("1 thread");
    let four = run(Benchmark::C432, 4, Some(plan("nan-path@1,3,5"))).expect("4 threads");
    assert_eq!(one.num_paths, four.num_paths);
    assert_eq!(one.degraded.len(), four.degraded.len());
    for (a, b) in one.degraded.iter().zip(&four.degraded) {
        assert_eq!(a.index, b.index);
        assert_eq!(a.gates, b.gates);
        assert_eq!(a.class, b.class);
        assert_eq!(a.reason, b.reason);
    }
    assert_eq!(kernel_bits(&one), kernel_bits(&four));
    assert_eq!(one.sigma_c.to_bits(), four.sigma_c.to_bits());
}

#[test]
fn zero_variance_is_a_real_numeric_kernel_error() {
    let free = run(Benchmark::C432, 1, None).expect("fault-free");
    let faulted = run(Benchmark::C432, 1, Some(plan("zero-variance@0"))).expect("degraded run");
    assert_eq!(faulted.degraded.len(), 1);
    assert_eq!(faulted.degraded[0].index, 0);
    assert_eq!(faulted.degraded[0].class, ErrorClass::Numeric);
    assert_eq!(faulted.num_paths, free.num_paths - 1);
    assert_survivors_bit_identical(&free, &faulted, "zero-variance");
}

#[test]
fn nan_cell_in_a_pdf_density_is_quarantined() {
    // The poisoned cell leaves every scalar moment finite; only the
    // density scan in kernel_is_finite catches it.
    // c499's near-critical set is narrow; C = 1.5 enumerates 4 paths.
    let free = run_with_c(Benchmark::C499, 1.5, 1, None).expect("fault-free");
    assert!(free.num_paths >= 3, "got {}", free.num_paths);
    let faulted =
        run_with_c(Benchmark::C499, 1.5, 1, Some(plan("nan-cell@2:17"))).expect("degraded run");
    assert_eq!(faulted.degraded.len(), 1);
    assert_eq!(faulted.degraded[0].index, 2);
    assert_eq!(faulted.degraded[0].class, ErrorClass::Numeric);
    assert_survivors_bit_identical(&free, &faulted, "nan-cell");
}

#[test]
fn random_nan_is_seeded_and_thread_stable() {
    let spec = "seed=42;nan-path-random@50";
    let one = run(Benchmark::C432, 1, Some(plan(spec))).expect("1 thread");
    let four = run(Benchmark::C432, 4, Some(plan(spec))).expect("4 threads");
    assert!(!one.degraded.is_empty(), "50% of many paths should hit");
    assert!(one.num_paths > 0, "50% of many paths should miss");
    let idx = |r: &SstaReport| r.degraded.iter().map(|d| d.index).collect::<Vec<_>>();
    assert_eq!(idx(&one), idx(&four));
    assert_eq!(kernel_bits(&one), kernel_bits(&four));
    // A different seed reshuffles the faulted set.
    let reseeded =
        run(Benchmark::C432, 1, Some(plan("seed=43;nan-path-random@50"))).expect("reseeded");
    assert_ne!(idx(&one), idx(&reseeded), "seed must drive the targeting");
}

#[test]
fn poisoned_cache_shard_degrades_but_run_completes() {
    let shard_count = statim::core::AnalysisCache::shard_count();
    let mut total_degraded = 0;
    for shard in 0..shard_count {
        let spec = format!("poison-cache-shard@{shard}");
        let r = run(Benchmark::C432, 1, Some(plan(&spec)))
            .unwrap_or_else(|e| panic!("shard {shard}: run must complete, got {e}"));
        for d in &r.degraded {
            assert_eq!(d.class, ErrorClass::Numeric);
            assert!(
                d.reason.contains("poisoned inter-PDF cache shard"),
                "{}",
                d.reason
            );
        }
        total_degraded += r.degraded.len();
    }
    // The near-critical inter keys hash somewhere: at least one shard
    // must have quarantined paths.
    assert!(total_degraded > 0, "no shard hit any inter-PDF key");
}

#[test]
fn truncated_bench_text_fails_with_a_typed_parse_error() {
    let circuit = iscas85::generate(Benchmark::C432);
    let text = bench_format::write(&circuit);
    // Cut just past the last '(' so the final statement is unterminated —
    // a fixed byte count could land on a clean statement boundary.
    let cut_at = text.rfind('(').expect("parenthesized statement") + 1;
    let plan: FaultPlan = format!("truncate-bench@{cut_at}").parse().expect("plan");
    let cut = plan.apply_to_text(&text);
    assert!(cut.len() <= cut_at);
    assert_eq!(plan.fired(), vec![1]);
    let err = bench_format::parse("c432", cut).expect_err("truncated text must not parse");
    let core: CoreError = err.into();
    assert_eq!(core.classify(), ErrorClass::Parse);
}

#[test]
fn malformed_plan_specs_are_typed_config_errors() {
    for spec in [
        "",
        "bogus@1",
        "nan-path",
        "nan-path-random@200",
        "nan-cell@5",
    ] {
        let err = spec.parse::<FaultPlan>().expect_err(spec);
        assert_eq!(err.classify(), ErrorClass::Config, "{spec}");
        assert!(err.to_string().contains("fault-plan"), "{spec}: {err}");
    }
}

#[test]
fn untargeted_plan_leaves_the_report_bit_identical() {
    let free = run(Benchmark::C432, 1, None).expect("fault-free");
    // Index far beyond the enumeration: the plan is armed but never fires.
    let noop = run(Benchmark::C432, 1, Some(plan("nan-path@999999"))).expect("no-op plan");
    assert!(noop.degraded.is_empty());
    assert_eq!(noop.num_paths, free.num_paths);
    assert_eq!(kernel_bits(&free), kernel_bits(&noop));
    assert_eq!(free.sigma_c.to_bits(), noop.sigma_c.to_bits());
}

#[test]
fn fire_counters_record_each_injection() {
    let p = plan("nan-path@1,3");
    let _ = run(Benchmark::C432, 1, Some(Arc::clone(&p))).expect("degraded run");
    // One fault clause, fired once per targeted path.
    assert_eq!(p.fired(), vec![2]);
}
