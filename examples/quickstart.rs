//! Quickstart: run the full DATE'05 statistical timing flow on a built-in
//! benchmark and print the headline numbers.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```

use statim::core::engine::{SstaConfig, SstaEngine};
use statim::netlist::generators::iscas85::{self, Benchmark};
use statim::netlist::{Placement, PlacementStyle};

fn main() {
    // 1. A circuit: the c432-equivalent interrupt controller (160 gates).
    let circuit = iscas85::generate(Benchmark::C432);

    // 2. A placement: the spatial-correlation model needs (x, y) per gate.
    let placement = Placement::generate(&circuit, PlacementStyle::Levelized);

    // 3. The engine, configured exactly as the paper's evaluation:
    //    five Gaussian RVs truncated at ±6σ, a 4-layer + random-layer
    //    correlation model with equal variance split, QUALITYintra = 100,
    //    QUALITYinter = 50, C = 0.05, ranking by the 3σ point.
    let engine = SstaEngine::new(SstaConfig::date05());
    let report = engine.run(&circuit, &placement).expect("SSTA flow");

    let ps = |s: f64| s * 1e12;
    println!("circuit {}: {} gates", report.circuit, report.gate_count);
    println!(
        "deterministic critical delay: {:8.3} ps",
        ps(report.det_critical_delay)
    );
    println!(
        "worst-case (3σ corner) delay: {:8.3} ps",
        ps(report.worst_case_delay)
    );

    let crit = report.critical();
    println!();
    println!(
        "probabilistic critical path ({} gates):",
        crit.analysis.gate_count()
    );
    println!("  mean      {:8.3} ps", ps(crit.analysis.mean));
    println!("  sigma     {:8.3} ps", ps(crit.analysis.sigma));
    println!("  3σ point  {:8.3} ps", ps(crit.analysis.confidence_point));
    println!("  det. rank {:8}", crit.det_rank);
    println!();
    println!(
        "worst-case analysis overestimates the 3σ point by {:.1}% — \
         the paper's headline finding.",
        report.overestimation_pct
    );
}
