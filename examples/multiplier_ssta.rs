//! Statistical timing of a 16×16 array multiplier (the c6288-equivalent):
//! the hardest benchmark in the paper — a ~90-gate-deep carry-save array
//! whose near-critical path count explodes unless the confidence window
//! is kept tiny (the paper uses C = 0.001 here, against 0.05 elsewhere).
//!
//! ```text
//! cargo run --example multiplier_ssta --release
//! ```

use statim::core::engine::{SstaConfig, SstaEngine};
use statim::core::CoreError;
use statim::netlist::generators::iscas85::{self, Benchmark};
use statim::netlist::stats;
use statim::netlist::{Placement, PlacementStyle};

fn main() {
    let circuit = iscas85::generate(Benchmark::C6288);
    let s = stats::analyze(&circuit);
    println!(
        "c6288-equivalent multiplier: {} gates, depth {}, ~{:e} input-output paths",
        s.gates, s.depth, s.paths as f64
    );

    let placement = Placement::generate(&circuit, PlacementStyle::Levelized);

    // Demonstrate the path blow-up the paper describes: a window of
    // C = 0.05 admits far more paths than anyone can analyze...
    let mut greedy = SstaConfig::date05().with_confidence(0.05);
    greedy.max_paths = 20_000;
    match SstaEngine::new(greedy).run(&circuit, &placement) {
        Err(CoreError::PathBudgetExceeded { budget }) => {
            println!("C = 0.05 exceeds the {budget}-path budget, as the paper found;");
        }
        other => println!("unexpected: {other:?}"),
    }

    // ...so drop to the paper's C = 0.001.
    let report = SstaEngine::new(SstaConfig::date05().with_confidence(0.001))
        .run(&circuit, &placement)
        .expect("SSTA flow at C = 0.001");
    let ps = |x: f64| x * 1e12;
    println!(
        "C = 0.001: {} near-critical paths analyzed in {:.2} s",
        report.num_paths, report.runtime
    );
    let crit = report.critical();
    println!(
        "probabilistic critical path: {} gates, mean {:.1} ps, 3σ point {:.1} ps (det rank {})",
        crit.analysis.gate_count(),
        ps(crit.analysis.mean),
        ps(crit.analysis.confidence_point),
        crit.det_rank
    );
    println!(
        "worst-case delay {:.1} ps — {:.1}% over the 3σ point",
        ps(report.worst_case_delay),
        report.overestimation_pct
    );
}
