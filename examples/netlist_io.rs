//! Netlist I/O round trip: generate a benchmark, write it as `.bench` +
//! DEF-lite (as the paper's tooling consumed), read both back, and verify
//! the statistical analysis is identical — the workflow for users with
//! real ISCAS85 files.
//!
//! ```text
//! cargo run --example netlist_io --release
//! ```

use statim::core::engine::{SstaConfig, SstaEngine};
use statim::netlist::generators::iscas85::{self, Benchmark};
use statim::netlist::{bench_format, def_lite, Placement, PlacementStyle};

fn main() {
    let original = iscas85::generate(Benchmark::C499);
    let placement = Placement::generate(&original, PlacementStyle::Levelized);

    // Serialize to the two on-disk formats.
    let bench_text = bench_format::write(&original);
    let def_text = def_lite::write(&original, &placement);
    println!(
        ".bench: {} lines, DEF-lite: {} lines",
        bench_text.lines().count(),
        def_text.lines().count()
    );

    // Read back.
    let reread = bench_format::parse("c499", &bench_text).expect("parse .bench");
    let def = def_lite::parse(&def_text).expect("parse DEF");
    let replacement = def.placement_for(&reread).expect("match placement");
    println!(
        "reread: {} gates, {} inputs, {} outputs, die {:.0} um",
        reread.gate_count(),
        reread.input_count(),
        reread.output_count(),
        replacement.die_side()
    );

    // Analyses agree exactly.
    let engine = SstaEngine::new(SstaConfig::date05());
    let a = engine.run(&original, &placement).expect("flow A");
    let b = engine.run(&reread, &replacement).expect("flow B");
    let pa = a.critical().analysis.confidence_point * 1e12;
    let pb = b.critical().analysis.confidence_point * 1e12;
    println!("3σ point original: {pa:.3} ps, after round trip: {pb:.3} ps");
    assert!(
        (pa - pb).abs() < 0.01,
        "round trip must not change the analysis"
    );
    println!("round trip OK");
}
