//! Rank migration: why a path's probabilistic rank can differ wildly from
//! its deterministic rank (the paper's Figs. 5/6).
//!
//! Compares a "bushy" circuit (c1355: error-correction trees with
//! near-equal path delays) against a well-separated one (c7552: a single
//! dominant adder carry chain) and prints the deterministic→probabilistic
//! rank table for the top paths of each.
//!
//! ```text
//! cargo run --example rank_migration --release
//! ```

use statim::core::engine::{SstaConfig, SstaEngine};
use statim::core::rank::mean_rank_shift;
use statim::netlist::generators::iscas85::{self, Benchmark};
use statim::netlist::{Placement, PlacementStyle};

fn main() {
    for bench in [Benchmark::C1355, Benchmark::C7552] {
        let circuit = iscas85::generate(bench);
        let placement = Placement::generate(&circuit, PlacementStyle::Levelized);
        // A generous window so both circuits yield a few hundred paths.
        let mut config = SstaConfig::date05().with_confidence(0.3);
        config.max_paths = 20_000;
        let report = match SstaEngine::new(config).run(&circuit, &placement) {
            Ok(r) => r,
            Err(e) => {
                println!("{bench}: {e}");
                continue;
            }
        };
        println!(
            "== {} — {} near-critical paths, mean |rank shift| of top 100: {:.1} ==",
            bench.name(),
            report.num_paths,
            mean_rank_shift(&report.paths, 100)
        );
        println!("prob rank | det rank | 3σ point (ps) | det delay (ps)");
        for r in report.paths.iter().take(12) {
            println!(
                "{:>9} | {:>8} | {:>13.3} | {:>13.3}",
                r.prob_rank,
                r.det_rank,
                r.analysis.confidence_point * 1e12,
                r.analysis.det_delay * 1e12
            );
        }
        println!();
    }
    println!("bushy topology (c1355) reorders heavily; separated delays (c7552) barely move.");
}
