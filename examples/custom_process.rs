//! Using a custom technology and variation setup: a hypothetical 90 nm
//! process with tighter supply control, plus a variability sweep showing
//! how the worst-case overestimation grows with σ.
//!
//! ```text
//! cargo run --example custom_process --release
//! ```

use statim::core::engine::{SstaConfig, SstaEngine};
use statim::netlist::generators::iscas85::{self, Benchmark};
use statim::netlist::{Placement, PlacementStyle};
use statim::process::{Param, Technology, Variations};

fn main() {
    let circuit = iscas85::generate(Benchmark::C880);
    let placement = Placement::generate(&circuit, PlacementStyle::Levelized);

    // A scaled technology: shorter channel, thinner oxide, lower supply.
    let mut tech = Technology::cmos130();
    tech.leff = 65e-9;
    tech.tox = 2.2e-9;
    tech.vdd = 1.2;
    tech.vtn = 0.32;
    tech.vtp = 0.34;

    // Tighter Vdd regulation, proportionally scaled geometry sigmas.
    let mut vars = Variations::date05();
    vars.sigma.set(Param::Leff, 9e-9);
    vars.sigma.set(Param::Tox, 0.11e-9);
    vars.sigma.set(Param::Vdd, 20e-3);

    let mut config = SstaConfig::date05();
    config.tech = tech;
    config.vars = vars;
    let report = SstaEngine::new(config)
        .run(&circuit, &placement)
        .expect("flow");
    println!(
        "scaled process: critical mean {:.1} ps, 3σ point {:.1} ps, overestimation {:.1}%",
        report.critical().analysis.mean * 1e12,
        report.critical().analysis.confidence_point * 1e12,
        report.overestimation_pct
    );

    // Variability sweep on the stock 130 nm process.
    println!();
    println!("variability sweep (c880, all sigmas scaled together):");
    println!("scale | sigma_C (ps) | #paths | overestimation %");
    for scale in [0.25, 0.5, 1.0, 1.5, 2.0] {
        let mut config = SstaConfig::date05();
        config.vars = Variations::date05().scaled(scale);
        let report = SstaEngine::new(config)
            .run(&circuit, &placement)
            .expect("flow");
        println!(
            "{scale:>5} | {:>12.3} | {:>6} | {:>7.2}",
            report.sigma_c * 1e12,
            report.num_paths,
            report.overestimation_pct
        );
    }
    println!("more variability -> wider PDFs, more near-critical paths, worse corners.");
}
