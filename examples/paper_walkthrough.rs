//! A guided walkthrough of the DATE'05 methodology, step by step, on a
//! small hand-made circuit — every intermediate quantity of the paper's
//! Fig. 1 flowchart printed as it is computed.
//!
//! ```text
//! cargo run --example paper_walkthrough --release
//! ```

use statim::core::analyze::{analyze_path, AnalysisSettings};
use statim::core::characterize::characterize_placed;
use statim::core::enumerate::near_critical_paths;
use statim::core::longest_path::{bellman_ford, critical_path};
use statim::core::rank::rank_paths;
use statim::core::report;
use statim::core::slack::slack_report;
use statim::netlist::generators::blocks::Builder;
use statim::netlist::{Placement, PlacementStyle};
use statim::process::{to_ps, Technology};

fn main() {
    // A small datapath: two 4-bit ripple adders sharing operands, a
    // comparator, and a parity tree — enough structure for several
    // near-critical paths.
    let mut b = Builder::new("walkthrough");
    let a = b.inputs("a", 4);
    let x = b.inputs("b", 4);
    let cin = b.input("cin");
    let (s1, c1) = b.ripple_adder(&a, &x, cin);
    let rot: Vec<_> = (0..4).map(|i| x[(i + 1) % 4]).collect();
    let (s2, c2) = b.ripple_adder(&s1, &rot, c1);
    let eq = b.equality(&s2, &a);
    let par = b.xor_tree(&s2, false);
    for (i, s) in s2.iter().enumerate() {
        b.output(format!("s{i}"), *s);
    }
    b.output("cout", c2);
    b.output("eq", eq);
    b.output("par", par);
    let circuit = b.finish();
    println!(
        "STEP 0 — the circuit: {} gates, depth {}",
        circuit.gate_count(),
        circuit.depth()
    );

    // Placement: the correlation model needs coordinates.
    let placement = Placement::generate(&circuit, PlacementStyle::Levelized);
    println!(
        "         placed on a {:.0}×{:.0} µm die\n",
        placement.die_side(),
        placement.die_side()
    );

    // STEP 1 — one-time characterization (nominal delays + gradients).
    let tech = Technology::cmos130();
    let timing = characterize_placed(&circuit, &tech, &placement).expect("characterize");
    let slowest = timing
        .gates()
        .iter()
        .map(|g| g.nominal)
        .fold(0.0f64, f64::max);
    println!(
        "STEP 1 — characterized {} gates; slowest nominal gate delay {:.2} ps",
        timing.gates().len(),
        to_ps(slowest)
    );

    // STEP 2 — Bellman-Ford labels and the deterministic critical path.
    let labels = bellman_ford(&circuit, &timing).expect("labels");
    let d = labels.critical_delay(&circuit).expect("critical delay");
    let det_path = critical_path(&circuit, &timing, &labels).expect("path");
    println!(
        "STEP 2 — Bellman-Ford converged in {} sweeps; deterministic critical delay {:.3} ps over {} gates",
        labels.sweeps,
        to_ps(d),
        det_path.len()
    );
    let slack = slack_report(&circuit, &timing, &labels, d).expect("slack");
    println!(
        "         {} gates sit at zero slack",
        slack.critical_gates(1e-15).len()
    );

    // STEP 3 — probabilistic analysis of that path gives σ_C.
    let settings = AnalysisSettings::date05();
    let det_analysis =
        analyze_path(&det_path, &timing, &placement, &tech, &settings).expect("analyze");
    println!(
        "STEP 3 — critical path PDF: mean {:.3} ps (≠ {:.3} ps deterministic — Jensen), intra σ {:.2} ps ⊛ inter σ {:.2} ps → total σ_C {:.2} ps",
        to_ps(det_analysis.mean),
        to_ps(det_analysis.det_delay),
        to_ps(det_analysis.intra_sigma),
        to_ps(det_analysis.inter_sigma),
        to_ps(det_analysis.sigma)
    );

    // STEP 4 — enumerate every path within C·σ_C.
    let c_const = 2.5;
    let threshold = d - c_const * det_analysis.sigma;
    let set = near_critical_paths(&circuit, &timing, &labels, threshold, 10_000).expect("paths");
    println!(
        "STEP 4 — C = {c_const}: every path slower than {:.3} ps qualifies → {} near-critical paths",
        to_ps(threshold),
        set.paths.len()
    );

    // STEP 5 — analyze and rank all of them by the 3σ point.
    let analyses: Vec<_> = set
        .paths
        .iter()
        .map(|p| analyze_path(p, &timing, &placement, &tech, &settings).expect("analyze"))
        .collect();
    let ranked = rank_paths(analyses);
    println!("STEP 5 — ranked by the 3σ confidence point:");
    for r in ranked.iter().take(5) {
        println!(
            "         prob #{:<2} (det #{:<2}): det {:.3} ps, 3σ point {:.3} ps",
            r.prob_rank,
            r.det_rank,
            to_ps(r.analysis.det_delay),
            to_ps(r.analysis.confidence_point)
        );
    }

    // STEP 6 — the verdict the paper draws.
    let crit = &ranked[0].analysis;
    println!(
        "\nSTEP 6 — worst-case corner delay {:.3} ps vs statistical 3σ point {:.3} ps: {:.1}% overdesign",
        to_ps(crit.worst_case),
        to_ps(crit.confidence_point),
        crit.overestimation_pct()
    );
    println!("\n(see `report::summary` for the packaged view)");
    // The same figures via the report module, on a full engine run.
    let report =
        statim::core::SstaEngine::new(statim::core::SstaConfig::date05().with_confidence(c_const))
            .run(&circuit, &placement)
            .expect("engine");
    print!("{}", report::summary(&report));
    print!("{}", report::path_table(&report, 5));
}
